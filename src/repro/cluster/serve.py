"""Multi-node serving: sticky tenant routing and node-failure recovery.

A :class:`ClusterServer` runs one :class:`~repro.serve.server.PipelineServer`
per cluster node and load-balances tenants across them with *sticky*
routing: a tenant is pinned to one node (by its dataset shard when a
manifest is loaded, by stable hash otherwise), so every
:class:`~repro.serve.tenancy.TenantRegistry` reference it is ever minted
stays node-local — requests never dereference across the wire.

The drain loop interleaves nodes round-robin, one request per living
node per round, and consults the armed fault plan's node-failure hook
between dispatches.  When a node dies mid-drain its undispatched
requests are evicted from its admission queue, the shards it owned are
re-placed onto survivors (re-written from the durable dataset — the
simulated analogue of re-reading object storage), affected tenants are
re-routed, and the evicted requests are resubmitted — degraded-but-
bounded goodput, never silent loss.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.gateway import ApiCall
from repro.core.runtime import FreePartConfig
from repro.errors import ClusterError
from repro.serve.server import PipelineServer, ServeRequest, ServeResponse

from repro.cluster.kernel import ClusterKernel
from repro.cluster.sharding import ShardManifest, stable_hash


class ClusterServer:
    """Per-node pipeline servers behind one sticky-routing front door."""

    def __init__(
        self,
        cluster: Optional[ClusterKernel] = None,
        nodes: int = 2,
        config: Optional[FreePartConfig] = None,
        pool_size: int = 2,
        batching: bool = True,
        queue_capacity: int = 64,
        per_tenant_limit: Optional[int] = None,
        max_retries: int = 1,
    ) -> None:
        self.cluster = (
            cluster if cluster is not None else ClusterKernel(nodes=nodes)
        )
        self.config = config if config is not None else FreePartConfig()
        self.servers: Dict[int, PipelineServer] = {
            node.index: PipelineServer(
                kernel=node.kernel,
                config=self.config,
                pool_size=pool_size,
                batching=batching,
                queue_capacity=queue_capacity,
                per_tenant_limit=per_tenant_limit,
                max_retries=max_retries,
            )
            for node in self.cluster.nodes
        }
        for index, server in self.servers.items():
            # Request events from every node carry a stable node label so
            # cluster-wide SLO evaluation can slice per node.
            server.node_label = f"node{index}"
        self.manifest: Optional[ShardManifest] = None
        self.shard_assignment: Dict[int, int] = {}
        self._durable: Dict[str, Any] = {}
        self._tenant_node: Dict[str, int] = {}
        self._tenant_shard: Dict[str, int] = {}
        self.responses: List[ServeResponse] = []
        self.submitted = 0
        self.resubmissions = 0
        self.shards_replaced = 0

    # ------------------------------------------------------------------
    # Dataset sharding
    # ------------------------------------------------------------------

    def load_dataset(
        self, manifest: ShardManifest, payloads: Dict[str, Any]
    ) -> Dict[int, int]:
        """Shard the dataset across nodes; keep a durable copy.

        The durable copy is what shard re-placement re-writes after a
        node failure — the cluster's object-storage analogue, outside
        any single machine's blast radius.
        """
        self.manifest = manifest
        self._durable = dict(payloads)
        self.shard_assignment = {}
        for shard in manifest.shards:
            node_index = shard.index % self.cluster.node_count
            self.shard_assignment[shard.index] = node_index
            node = self.cluster.node(node_index)
            for item in shard.items:
                if item in payloads:
                    node.kernel.fs.write_file(item, payloads[item])
        return dict(self.shard_assignment)

    def pin_tenant_to_item(self, tenant_id: str, item: str) -> int:
        """Sticky-route a tenant to the node owning its dataset item."""
        if self.manifest is None:
            raise ClusterError("no shard manifest loaded")
        shard = self.manifest.shard_of(item)
        self._tenant_shard[tenant_id] = shard.index
        self._tenant_node.pop(tenant_id, None)
        return self.route(tenant_id)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, tenant_id: str) -> int:
        """The tenant's home node (sticky; re-placed when it died)."""
        node_index = self._tenant_node.get(tenant_id)
        if node_index is not None and self.cluster.nodes[node_index].alive:
            return node_index
        shard_index = self._tenant_shard.get(tenant_id)
        if shard_index is not None:
            node_index = self.shard_assignment[shard_index]
        else:
            living = [node.index for node in self.cluster.living()]
            if not living:
                raise ClusterError("every node in the cluster is down")
            node_index = living[stable_hash(tenant_id) % len(living)]
        self._tenant_node[tenant_id] = node_index
        return node_index

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------

    def submit(
        self,
        tenant_id: str,
        calls: Sequence[ApiCall],
        deadline_ns: Optional[int] = None,
        priority: int = 0,
    ) -> ServeRequest:
        """Admit a request on the tenant's home node."""
        node_index = self.route(tenant_id)
        request = self.servers[node_index].submit(
            tenant_id, calls, deadline_ns, priority=priority
        )
        self.submitted += 1
        return request

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def step(self) -> List[ServeResponse]:
        """One round-robin pass: at most one dispatch per living node.

        Consults the node-failure fault hook after every dispatch, like
        :meth:`drain` always did; open-loop drivers call this between
        arrival admissions so traffic and failures interleave.  Returns
        the responses this pass produced (empty = every queue idle).
        """
        served: List[ServeResponse] = []
        for node in self.cluster.nodes:
            if not node.alive:
                continue
            response = self.servers[node.index].serve_one()
            if response is not None:
                served.append(response)
            victim = self.cluster.maybe_fail_node()
            if victim is not None:
                self._handle_node_failure(victim)
        self.responses.extend(served)
        return served

    def drain(self) -> List[ServeResponse]:
        """Serve everything queued, interleaving nodes round-robin.

        Consults the node-failure fault hook between dispatches; a
        failed node's pending work is re-placed and the loop continues
        until every surviving queue is empty.
        """
        served: List[ServeResponse] = []
        while True:
            pass_served = self.step()
            if not pass_served and not any(
                self.servers[node.index].queue.pending
                for node in self.cluster.nodes if node.alive
            ):
                break
            served.extend(pass_served)
        return served

    def _handle_node_failure(self, victim: int) -> None:
        """Re-place a dead node's shards and undispatched requests."""
        evicted = self.servers[victim].queue.evict_pending()
        living = [node.index for node in self.cluster.living()]
        if not living:
            raise ClusterError("every node in the cluster is down")
        if self.manifest is not None:
            for shard in self.manifest.shards:
                if self.shard_assignment.get(shard.index) != victim:
                    continue
                new_node = living[stable_hash(shard.key) % len(living)]
                self.shard_assignment[shard.index] = new_node
                node = self.cluster.node(new_node)
                for item in shard.items:
                    payload = self._durable.get(item)
                    if payload is not None:
                        node.kernel.fs.write_file(item, payload)
                self.shards_replaced += 1
        for tenant_id, node_index in list(self._tenant_node.items()):
            if node_index == victim:
                del self._tenant_node[tenant_id]
        for request in evicted:
            self.resubmissions += 1
            self.submit(
                request.tenant_id, request.calls, request.deadline_ns,
                priority=request.priority,
            )

    # ------------------------------------------------------------------
    # Reporting / teardown
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Cluster-wide rollup: node stats + parallel-makespan throughput."""
        per_node: Dict[int, Dict[str, Any]] = {}
        requests = 0
        makespan_seconds = 0.0
        for index, server in sorted(self.servers.items()):
            node_stats = server.stats()
            per_node[index] = node_stats
            requests += node_stats["requests"]
            makespan_seconds = max(
                makespan_seconds, node_stats["makespan_seconds"]
            )
        ok = sum(1 for response in self.responses if response.ok)
        failed = len(self.responses) - ok
        # A resubmission is the same client request re-placed on a new
        # node, so goodput is measured against unique client requests:
        # 1.0 means every admitted request eventually got an ok answer.
        client_requests = self.submitted - self.resubmissions
        return {
            "nodes": self.cluster.node_count,
            "living_nodes": len(self.cluster.living()),
            "requests": requests,
            "submitted": self.submitted,
            "client_requests": client_requests,
            "ok": ok,
            "failed": failed,
            "goodput": (ok / client_requests) if client_requests else 0.0,
            "makespan_seconds": makespan_seconds,
            "requests_per_second": (
                requests / makespan_seconds if makespan_seconds > 0 else 0.0
            ),
            "makespan_ns": self.cluster.makespan_ns,
            "node_failures": self.cluster.node_failures,
            "resubmissions": self.resubmissions,
            "shards_replaced": self.shards_replaced,
            "inter_node": self.cluster.accounting.summary(),
            "per_node": per_node,
        }

    def shutdown(self) -> None:
        for index, server in sorted(self.servers.items()):
            if self.cluster.nodes[index].alive:
                server.shutdown()
