"""Dataset sharding: split a file list into shards ahead of the pipeline.

Modeled on grid-control's splitter family (``splitter_basic.py`` /
``splitter_meta.py``): a *partitioner* assigns every dataset item a
shard key, and the resulting :class:`ShardManifest` — the full, ordered
shard table — is the deterministic artifact everything downstream
(placement, tenant routing, re-placement after a node failure) derives
from.  Four partitioners are provided:

* :class:`DirectoryPartitioner` — one shard per containing directory
  (the natural fit for per-tenant directory trees);
* :class:`ObjectPartitioner` — fixed-size groups of consecutive items
  (grid-control's "N files per job");
* :class:`HashPartitioner` — sha256-stable hash of the item path modulo
  a shard count (Python's builtin ``hash`` is salted per process, which
  would break byte-identical reruns);
* :class:`LambdaPartitioner` — a user-supplied key function, the
  custom-lambda splitter shape.

Manifests serialize to canonical JSON (sorted keys, stable ordering) so
``digest()`` is byte-stable across runs and machines.
"""

from __future__ import annotations

import hashlib
import json
import posixpath
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def stable_hash(text: str) -> int:
    """A process-independent 64-bit hash (builtin ``hash`` is salted)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Shard:
    """One shard: an ordered group of dataset items under one key."""

    index: int
    key: str
    items: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "items": list(self.items),
        }


@dataclass(frozen=True)
class ShardManifest:
    """The deterministic shard table one partitioner produced."""

    partitioner: str
    shards: Tuple[Shard, ...]

    @property
    def item_count(self) -> int:
        return sum(len(shard.items) for shard in self.shards)

    def shard_of(self, item: str) -> Shard:
        """The shard holding ``item`` (ValueError when absent)."""
        for shard in self.shards:
            if item in shard.items:
                return shard
        raise ValueError(f"item {item!r} is in no shard of this manifest")

    def node_of(self, item: str, node_count: int) -> int:
        """Round-robin shard-to-node assignment for ``item``."""
        if node_count < 1:
            raise ValueError(f"node count must be >= 1, got {node_count}")
        return self.shard_of(item).index % node_count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "partitioner": self.partitioner,
            "shards": [shard.to_dict() for shard in self.shards],
            "items": self.item_count,
        }

    def json(self) -> str:
        """Canonical JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def digest(self) -> str:
        """Byte-stable sha256 fingerprint of the whole manifest."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class Partitioner:
    """Base partitioner: key items, group them, emit a manifest.

    Subclasses either implement :meth:`shard_key` (keyed grouping, keys
    sorted for determinism) or override :meth:`split` outright (the
    object partitioner groups by position, not key).
    """

    name = "partitioner"

    def shard_key(self, item: str) -> str:
        raise NotImplementedError

    def describe(self) -> str:
        """The manifest's ``partitioner`` string (part of the digest)."""
        return self.name

    def split(self, items: Sequence[str]) -> ShardManifest:
        groups: Dict[str, List[str]] = {}
        for item in items:
            groups.setdefault(self.shard_key(item), []).append(item)
        shards = tuple(
            Shard(index=index, key=key, items=tuple(groups[key]))
            for index, key in enumerate(sorted(groups))
        )
        return ShardManifest(partitioner=self.describe(), shards=shards)


class DirectoryPartitioner(Partitioner):
    """One shard per containing directory (grid-control's basic split)."""

    name = "directory"

    def shard_key(self, item: str) -> str:
        return posixpath.dirname(item) or "/"


class ObjectPartitioner(Partitioner):
    """Fixed-size groups of consecutive items ("N objects per shard")."""

    name = "object"

    def __init__(self, objects_per_shard: int = 1) -> None:
        if objects_per_shard < 1:
            raise ValueError(
                f"objects per shard must be >= 1, got {objects_per_shard}"
            )
        self.objects_per_shard = objects_per_shard

    def describe(self) -> str:
        return f"object:{self.objects_per_shard}"

    def split(self, items: Sequence[str]) -> ShardManifest:
        size = self.objects_per_shard
        shards = []
        for index, start in enumerate(range(0, len(items), size)):
            group = tuple(items[start:start + size])
            shards.append(Shard(
                index=index,
                key=f"objects[{start}:{start + len(group)}]",
                items=group,
            ))
        return ShardManifest(
            partitioner=self.describe(), shards=tuple(shards)
        )


class HashPartitioner(Partitioner):
    """Stable-hash bucketing into a fixed shard count.

    Buckets that receive no items are omitted from the manifest (a
    manifest only describes data that exists).
    """

    name = "hash"

    def __init__(self, shards: int = 8) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards

    def describe(self) -> str:
        return f"hash:{self.shards}"

    def shard_key(self, item: str) -> str:
        return f"bucket-{stable_hash(item) % self.shards:04d}"


class LambdaPartitioner(Partitioner):
    """Custom key function (grid-control's user-lambda splitter shape).

    The label is part of the manifest digest, so callers should pick
    one that identifies the lambda's logic, not its memory address.
    """

    name = "lambda"

    def __init__(
        self, key_fn: Callable[[str], Any], label: str = "lambda"
    ) -> None:
        self.key_fn = key_fn
        self.label = label

    def describe(self) -> str:
        return self.label

    def shard_key(self, item: str) -> str:
        return str(self.key_fn(item))


def make_partitioner(
    spec: str, default_shards: int = 8
) -> Partitioner:
    """Parse a CLI partitioner spec: ``directory``, ``object[:N]``,
    ``hash[:K]``.  Raises ValueError on anything else (lambda
    partitioners are code, not strings)."""
    name, _, arg = spec.partition(":")
    if name == "directory":
        if arg:
            raise ValueError("directory partitioner takes no argument")
        return DirectoryPartitioner()
    if name == "object":
        return ObjectPartitioner(int(arg) if arg else 1)
    if name == "hash":
        return HashPartitioner(int(arg) if arg else default_shards)
    raise ValueError(
        f"unknown partitioner {spec!r} "
        "(expected directory, object[:N], or hash[:K])"
    )


def shard_dataset(
    cluster: Any,
    manifest: ShardManifest,
    payloads: Dict[str, Any],
) -> Dict[int, int]:
    """Write every item's payload into its owning node's filesystem.

    Returns the shard-to-node assignment used (``shard index -> node``).
    Items in the manifest but absent from ``payloads`` are skipped —
    the manifest may describe a larger dataset than this run loads.
    """
    assignment: Dict[int, int] = {}
    for shard in manifest.shards:
        node_index = shard.index % cluster.node_count
        assignment[shard.index] = node_index
        node = cluster.node(node_index)
        for item in shard.items:
            if item in payloads:
                node.kernel.fs.write_file(item, payloads[item])
    return assignment
