"""Placement-aware pipeline dispatch across cluster nodes.

A :class:`ClusterGateway` runs one offline analysis, then routes every
API call to the node its partition is placed on (one lazily deployed
:class:`~repro.core.runtime.FreePartGateway` per node).  PREV chains
that stay on one node remain ordinary LDC references — zero-copy remap
and all; a chain that crosses nodes cannot share pages between
machines, so the gateway *transparently falls back*: it resolves the
reference on the owning node, ships the bytes framed over the inter-node
link (the ``inter_node`` accounting lane, ``deref=True``), and re-enters
the destination node's LDC machinery as a local object.  Every such
crossing is counted — ``cross_node_derefs`` in the cluster accounting,
an ``inter_node`` span pair in the per-node traces — which is exactly
what the placement-affinity tests assert against.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.gateway import ApiCall
from repro.core.hybrid import HybridAnalyzer
from repro.core.partitioner import four_way_plan
from repro.core.rpc import RemoteHandle
from repro.core.runtime import FreePartConfig, FreePartGateway
from repro.errors import ClusterError
from repro.frameworks.registry import get_api, iter_apis
from repro.serve.batching import PREV

from repro.cluster.kernel import ClusterKernel
from repro.cluster.placement import Placement, affinity_placement


class ClusterGateway:
    """Routes one pipeline's calls across placed per-node runtimes."""

    def __init__(
        self,
        cluster: ClusterKernel,
        placement: Optional[Placement] = None,
        config: Optional[FreePartConfig] = None,
        used_apis: Optional[Sequence[Any]] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config if config is not None else FreePartConfig()
        # Offline phase once, shared by every node's runtime (the
        # categorization is kernel-independent and deterministic).
        self.categorization = HybridAnalyzer().categorize(
            used_apis if used_apis is not None else iter_apis()
        )
        self.plan = four_way_plan(self.categorization)
        self.placement = (
            placement if placement is not None
            else affinity_placement(self.plan)
        )
        for node_index in self.placement.nodes_used():
            cluster.node(node_index)  # bounds check up front
        self._gateways: Dict[int, FreePartGateway] = {}
        self.calls = 0

    # ------------------------------------------------------------------
    # Per-node runtimes
    # ------------------------------------------------------------------

    def gateway_on(self, node_index: int) -> FreePartGateway:
        """The (lazily deployed) runtime of one node."""
        gateway = self._gateways.get(node_index)
        if gateway is None:
            node = self.cluster.node(node_index)
            node.require_alive()
            host = node.kernel.spawn(
                f"cluster-host:{node_index}", role="host", charge=False
            )
            gateway = FreePartGateway(
                kernel=node.kernel,
                host=host,
                plan=self.plan,
                categorization=self.categorization,
                config=self.config,
            )
            self._gateways[node_index] = gateway
        return gateway

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def node_for_call(self, framework: str, name: str) -> int:
        """Which node a call executes on, per the placement."""
        qualname = get_api(framework, name).spec.qualname
        entry = self.categorization.get(qualname)
        partition = None
        if entry is not None and not entry.neutral:
            partition = self.plan.partition_of(qualname)
            if partition is None and entry.api_type.is_concrete:
                partition = self.plan.partition_for_type(entry.api_type)
        if partition is None:
            # Neutral/unknown APIs follow the processing partition, like
            # the single-node runtime's default agent.
            from repro.core.apitypes import APIType

            partition = self.plan.partition_for_type(APIType.PROCESSING)
        if partition is None:
            raise ClusterError(
                f"no partition routes {framework}.{name}"
            )
        return self.placement.node_for(partition.label)

    # ------------------------------------------------------------------
    # Pipeline execution
    # ------------------------------------------------------------------

    def run(self, calls: Sequence[ApiCall]) -> List[Any]:
        """Dispatch a pipeline, resolving PREV across node boundaries."""
        results: List[Any] = []
        prev_node: Optional[int] = None
        for index, call in enumerate(calls):
            node_index = self.node_for_call(call.framework, call.name)
            gateway = self.gateway_on(node_index)

            def resolve(value: Any) -> Any:
                if value is not PREV:
                    return value
                if index == 0:
                    raise ValueError("PREV used in the first call")
                previous = results[index - 1]
                if prev_node is None or prev_node == node_index:
                    return previous
                return self._ship(previous, prev_node, node_index)

            results.append(gateway.call(
                call.framework, call.name,
                *tuple(resolve(value) for value in call.args),
                **{key: resolve(value) for key, value in call.kwargs},
            ))
            self.calls += 1
            prev_node = node_index
        return results

    def _ship(self, value: Any, src: int, dst: int) -> Any:
        """Move a PREV result across nodes as framed bytes.

        A RemoteHandle is a cross-node LDC dereference: the owning
        node's runtime resolves it locally, the payload crosses the wire
        (zero-copy remap cannot span machines), and the destination
        re-registers it as a local object — deref counted.
        """
        deref = isinstance(value, RemoteHandle)
        if deref:
            payload = self._gateways[src]._resolve_ref(value.ref)
        else:
            payload = value
        self.cluster.transfer(
            src, dst, payload,
            kind="ldc-deref" if deref else "data",
            tag="prev-chain",
            deref=deref,
        )
        if deref:
            self.cluster.node(dst).kernel.metrics.counter(
                "cluster.cross_node_derefs"
            ).inc()
        return payload

    def materialize(self, value: Any, node_index: int) -> Any:
        """Materialize a result on the node that produced it."""
        return self.gateway_on(node_index).materialize(value)

    def shutdown(self) -> None:
        for node_index, gateway in sorted(self._gateways.items()):
            if self.cluster.node(node_index).alive:
                gateway.shutdown()
