"""Cluster topology: how many nodes and what their links cost.

Inter-node links are deliberately *not* IPC channels: a message between
two nodes pays a fixed per-message cost (NIC + protocol framing), a
propagation latency, and a per-byte serialization/transmission cost —
all an order of magnitude above the intra-node shared-memory numbers in
:class:`~repro.sim.clock.CostModel`.  That gap is what makes placement a
policy decision instead of a no-op: a co-located partition pair derefs
through LDC for nanoseconds, a split pair pays the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class InterNodeLink:
    """Cost model of one directed node-to-node link.

    Defaults model a datacenter network: ~50 µs one-way latency, ~10
    GB/s effective bandwidth, and a per-message cost well above the
    intra-node ``ipc_message_ns`` (the whole point of sticky placement).
    """

    latency_ns: int = 50_000
    bandwidth_ns_per_byte: float = 0.1
    per_message_ns: int = 12_000

    def transmit_ns(self, nbytes: int) -> int:
        """Time on the wire for a payload of ``nbytes``."""
        return int(nbytes * self.bandwidth_ns_per_byte)


@dataclass(frozen=True)
class ClusterTopology:
    """N nodes joined all-to-all by one default link (plus overrides).

    ``overrides`` maps a directed ``(src, dst)`` pair to a different
    link — e.g. to model one slow rack uplink — without changing the
    default everyone else uses.
    """

    nodes: int
    link: InterNodeLink = InterNodeLink()
    overrides: Dict[Tuple[int, int], InterNodeLink] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"topology needs >= 1 node, got {self.nodes}")
        for src, dst in self.overrides:
            for index in (src, dst):
                if not 0 <= index < self.nodes:
                    raise ValueError(
                        f"override ({src}, {dst}) names node {index}, "
                        f"but the topology has {self.nodes} nodes"
                    )

    def link_between(self, src: int, dst: int) -> InterNodeLink:
        """The link a ``src -> dst`` message travels."""
        return self.overrides.get((src, dst), self.link)
