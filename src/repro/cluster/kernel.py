"""The simulated cluster: N machines joined by costed inter-node links.

A :class:`ClusterKernel` owns N independent :class:`~repro.sim.kernel.SimKernel`
nodes.  Each node keeps its *own* virtual clock — nodes genuinely run in
parallel, so the cluster-wide makespan is the maximum over node clocks,
not their sum; a shared clock would serialize the simulation and make
multi-node scaling definitionally impossible.

Inter-node data movement goes through :meth:`ClusterKernel.transfer`:
the sender's clock pays serialization plus the link's per-message cost,
the payload arrives at ``sender now + latency + bytes/bandwidth``, and
the receiver's clock advances to the arrival time if it is behind (the
receive itself is a cooperative hand-off, like the intra-node futex
model).  Every crossing lands in the cluster-wide ``inter_node``
accounting lane, which :meth:`verify_accounting` reconciles exactly
against the per-link counters and the per-node
:class:`~repro.sim.ipc.IpcAccounting` totals — any drift raises
:class:`~repro.errors.AccountingError` naming the off-by lane.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ClusterError, NodeDown
from repro.faults.injector import FaultInjector
from repro.sim.ipc import reconcile_lanes
from repro.sim.kernel import SimKernel
from repro.sim.memory import payload_nbytes

from repro.cluster.topology import ClusterTopology


@dataclass
class ClusterAccounting:
    """Cluster-wide counters for the ``inter_node`` lane."""

    inter_node_messages: int = 0
    inter_node_bytes: int = 0
    #: Cross-node LDC dereferences: a PREV/ref chain that crossed a node
    #: boundary and fell back from zero-copy remap to framed byte-copy.
    cross_node_derefs: int = 0
    cross_node_deref_bytes: int = 0
    #: Directed per-link counters: (src, dst) -> [messages, bytes].
    per_link: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)

    def record_message(self, src: int, dst: int, nbytes: int) -> None:
        self.inter_node_messages += 1
        self.inter_node_bytes += nbytes
        entry = self.per_link.setdefault((src, dst), [0, 0])
        entry[0] += 1
        entry[1] += nbytes

    def record_deref(self, nbytes: int) -> None:
        self.cross_node_derefs += 1
        self.cross_node_deref_bytes += nbytes

    def lanes(self) -> Dict[str, int]:
        return {
            "inter_node.messages": self.inter_node_messages,
            "inter_node.bytes": self.inter_node_bytes,
            "inter_node.cross_node_derefs": self.cross_node_derefs,
            "inter_node.cross_node_deref_bytes": self.cross_node_deref_bytes,
        }

    def summary(self) -> Dict[str, Any]:
        report = dict(self.lanes())
        report["inter_node.links"] = len(self.per_link)
        return report


class ClusterNode:
    """One machine in the cluster plus its liveness state."""

    def __init__(self, index: int, kernel: SimKernel) -> None:
        self.index = index
        self.kernel = kernel
        self.alive = True
        self.failed_at_ns = 0
        self.failure_reason = ""

    def fail(self, reason: str) -> None:
        self.alive = False
        self.failed_at_ns = self.kernel.clock.now_ns
        self.failure_reason = reason

    def require_alive(self) -> None:
        if not self.alive:
            raise NodeDown(self.index, self.failure_reason)


class ClusterKernel:
    """N simulated machines and the links between them."""

    def __init__(
        self,
        nodes: int = 2,
        topology: Optional[ClusterTopology] = None,
        cost_model: Optional[Any] = None,
    ) -> None:
        if nodes < 1:
            raise ClusterError(f"cluster needs >= 1 node, got {nodes}")
        if topology is None:
            topology = ClusterTopology(nodes=nodes)
        if topology.nodes != nodes:
            raise ClusterError(
                f"topology is for {topology.nodes} nodes, cluster has {nodes}"
            )
        self.topology = topology
        self.nodes: Tuple[ClusterNode, ...] = tuple(
            ClusterNode(index, SimKernel(cost_model=cost_model))
            for index in range(nodes)
        )
        self.accounting = ClusterAccounting()
        self.node_failures = 0
        #: Per-node fault injectors (armed by :meth:`inject_faults`);
        #: they share one plan and one fault-id counter so fault ids are
        #: unique cluster-wide.
        self.injectors: Dict[int, FaultInjector] = {}

    # ------------------------------------------------------------------
    # Node access
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> ClusterNode:
        if not 0 <= index < len(self.nodes):
            raise ClusterError(
                f"no node {index} in a {len(self.nodes)}-node cluster"
            )
        return self.nodes[index]

    def living(self) -> List[ClusterNode]:
        return [node for node in self.nodes if node.alive]

    @property
    def makespan_ns(self) -> int:
        """Cluster wall time: nodes run in parallel, so the max clock."""
        return max(node.kernel.clock.now_ns for node in self.nodes)

    # ------------------------------------------------------------------
    # Observability / fault injection (fan out to every node)
    # ------------------------------------------------------------------

    def enable_tracing(self) -> None:
        """Install a span tracer on every node (per-node trace rows)."""
        for node in self.nodes:
            node.kernel.enable_tracing()

    def inject_faults(self, plan: Any) -> Dict[int, FaultInjector]:
        """Arm one shared fault plan across every node.

        The injectors share the plan's RNG *and* one fault-id counter,
        so the cluster-wide schedule stays a pure function of (seed,
        workload) and fault ids never collide across nodes — the chaos
        "observed" invariant matches ids 1:1 over all node tracers.
        """
        shared_ids = itertools.count(1)
        for node in self.nodes:
            injector = FaultInjector(plan, ids=shared_ids)
            node.kernel.inject_faults(injector)
            self.injectors[node.index] = injector
        return self.injectors

    # ------------------------------------------------------------------
    # Node failure
    # ------------------------------------------------------------------

    def fail_node(self, index: int, reason: str = "node-failure") -> None:
        """Take a node down: every process on it crashes, its clock
        stops, and future transfers to or from it raise NodeDown."""
        node = self.node(index)
        node.require_alive()
        tracer = node.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "node_failure", category="cluster",
                node=index, reason=reason,
            )
        for process in node.kernel.living():
            process.crash(reason)
        node.fail(reason)
        self.node_failures += 1

    def maybe_fail_node(self) -> Optional[int]:
        """Consult the armed fault plan for a node failure.

        One decision point per call (the serving loop consults between
        dispatches).  At most ``nodes - 1`` failures ever fire — the
        last living node is never taken down, so every campaign run
        retains a quorum of one.  Returns the failed node's index.
        """
        if not self.injectors:
            return None
        living = [node.index for node in self.nodes if node.alive]
        if len(living) <= 1:
            return None
        injector = self.injectors[living[0]]
        victim = injector.node_failure(living)
        if victim is None:
            return None
        self.fail_node(victim)
        return victim

    # ------------------------------------------------------------------
    # Inter-node data movement
    # ------------------------------------------------------------------

    def transfer(
        self,
        src: int,
        dst: int,
        payload: Any,
        kind: str = "data",
        tag: str = "",
        deref: bool = False,
    ) -> int:
        """Ship a payload across the wire from node ``src`` to ``dst``.

        The sender's clock pays serialization + the link's per-message
        cost; the payload arrives ``latency + transmit`` later, and the
        receiver's clock catches up to the arrival time if it is behind
        (it may already be past it — the message landed in its past and
        the receive is free, like any cooperative hand-off).

        ``deref=True`` marks a cross-node LDC dereference: zero-copy
        remap cannot cross address spaces on different machines, so the
        bytes go framed over the wire and into the deref lane.  Returns
        the payload size in bytes.
        """
        if src == dst:
            raise ClusterError(
                f"transfer within node {src} must use SimKernel.transfer"
            )
        source, destination = self.node(src), self.node(dst)
        source.require_alive()
        destination.require_alive()
        nbytes = payload_nbytes(payload)
        link = self.topology.link_between(src, dst)
        cost = source.kernel.clock.cost_model
        send_ns = link.per_message_ns + cost.serialize_cost(nbytes)
        tracer = source.kernel.tracer
        if tracer.enabled:
            with tracer.span(
                "inter_node_send", category="inter_node",
                node=src, peer=dst, kind=kind, bytes=nbytes, tag=tag,
                deref=deref,
            ):
                source.kernel.clock.advance(send_ns)
        else:
            source.kernel.clock.advance(send_ns)
        arrival_ns = (
            source.kernel.clock.now_ns
            + link.latency_ns
            + link.transmit_ns(nbytes)
        )
        wait_ns = max(0, arrival_ns - destination.kernel.clock.now_ns)
        dst_tracer = destination.kernel.tracer
        if dst_tracer.enabled:
            with dst_tracer.span(
                "inter_node_recv", category="inter_node",
                node=dst, peer=src, kind=kind, bytes=nbytes, tag=tag,
                deref=deref,
            ):
                destination.kernel.clock.advance(wait_ns)
        else:
            destination.kernel.clock.advance(wait_ns)
        self.accounting.record_message(src, dst, nbytes)
        if deref:
            self.accounting.record_deref(nbytes)
        return nbytes

    # ------------------------------------------------------------------
    # Accounting / reporting
    # ------------------------------------------------------------------

    @property
    def data_transferred_bytes(self) -> int:
        """Every byte moved: per-node totals plus the inter-node lane."""
        return (
            sum(node.kernel.data_transferred_bytes for node in self.nodes)
            + self.accounting.inter_node_bytes
        )

    def verify_accounting(self) -> None:
        """Reconcile the inter_node lane against per-link counters and
        the cluster byte total against per-node lanes; raises
        :class:`~repro.errors.AccountingError` naming the off-by lane."""
        per_link_messages = sum(
            entry[0] for entry in self.accounting.per_link.values()
        )
        per_link_bytes = sum(
            entry[1] for entry in self.accounting.per_link.values()
        )
        node_bytes = 0
        for node in self.nodes:
            lanes = node.kernel.ipc.lanes()
            node_bytes += (
                lanes["message_bytes"]
                + lanes["lazy_copy_bytes"]
                + lanes["zero_copy_bytes"]
            )
        reconcile_lanes(
            "cluster accounting",
            recorded={
                "inter_node.messages": self.accounting.inter_node_messages,
                "inter_node.bytes": self.accounting.inter_node_bytes,
                "total.data_bytes": self.data_transferred_bytes,
            },
            expected={
                "inter_node.messages": per_link_messages,
                "inter_node.bytes": per_link_bytes,
                "total.data_bytes": node_bytes + per_link_bytes,
            },
        )

    def summary(self) -> Dict[str, Any]:
        """Cluster-wide counters (per-node summaries + inter-node lane)."""
        self.verify_accounting()
        return {
            "nodes": len(self.nodes),
            "living_nodes": len(self.living()),
            "node_failures": self.node_failures,
            "makespan_ns": self.makespan_ns,
            "data_transferred_bytes": self.data_transferred_bytes,
            "inter_node": self.accounting.summary(),
            "per_node": [
                {
                    "node": node.index,
                    "alive": node.alive,
                    **node.kernel.summary(),
                }
                for node in self.nodes
            ],
        }
