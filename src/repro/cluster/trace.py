"""Cluster-wide observability: merged traces and the cross-node lane.

Every node traces independently against its own virtual clock; this
module merges the per-node views into cluster artifacts:

* :func:`cluster_chrome_trace` — one Chrome trace with a *row per node
  process* (pids are namespaced by node so node 0's pid 104 and node
  2's pid 104 stay distinct rows, track names get a ``nodeK:`` prefix);
* :func:`cluster_rollup` — the mechanism self-time table summed across
  nodes, which is where the ``inter_node`` lane (send + receive spans
  of cross-node transfers) shows up next to ipc/copy/compute.

Both are deterministic: merged events sort by ``(timestamp, node,
span id)`` and rows by ``(-self time, category)``, so byte-identical
inputs produce byte-identical exports.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.export import NODE_PID_STRIDE, RollupRow, mechanism_rollup

from repro.cluster.kernel import ClusterKernel

__all__ = [
    "NODE_PID_STRIDE",
    "cluster_pid",
    "cluster_chrome_trace",
    "render_cluster_trace",
    "cluster_rollup",
]


def cluster_pid(node_index: int, pid: int) -> int:
    """The merged-trace pid of one node-local process."""
    return node_index * NODE_PID_STRIDE + pid


def cluster_chrome_trace(cluster: ClusterKernel) -> Dict[str, Any]:
    """Merge every node's spans into one Chrome trace payload."""
    events: List[Dict[str, Any]] = []
    records = []
    for node in cluster.nodes:
        tracer = node.kernel.tracer
        if not tracer.enabled:
            continue
        spans = tracer.closed_spans()
        for pid in sorted({span.pid for span in spans}):
            name = tracer.track_names.get(pid, f"pid {pid}")
            events.append({
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": cluster_pid(node.index, pid),
                "tid": cluster_pid(node.index, pid),
                "args": {"name": f"node{node.index}:{name}"},
            })
        records.extend((span, node.index) for span in spans)
    for span, node_index in sorted(
        records, key=lambda pair: (pair[0].start_ns, pair[1], pair[0].span_id)
    ):
        args = {key: span.attrs[key] for key in sorted(span.attrs)}
        if span.out_of_band:
            args["out_of_band"] = True
        args["node"] = node_index
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "ph": "i" if span.kind == "instant" else "X",
            "ts": span.start_ns / 1000,
            "pid": cluster_pid(node_index, span.pid),
            "tid": cluster_pid(node_index, span.pid),
            "args": args,
        }
        if span.kind == "instant":
            event["s"] = "t"
        else:
            event["dur"] = span.duration_ns / 1000
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def render_cluster_trace(cluster: ClusterKernel) -> str:
    """Canonical JSON text of the merged trace (byte-stable)."""
    return json.dumps(
        cluster_chrome_trace(cluster), indent=2, sort_keys=True
    ) + "\n"


def cluster_rollup(cluster: ClusterKernel) -> List[RollupRow]:
    """Per-mechanism self time summed across nodes.

    Each node's rollup partitions that node's clock exactly; the merged
    table partitions the *sum* of node clocks (total machine-time, not
    wall time — nodes overlap).  The ``inter_node`` category collects
    the send/receive halves of every cross-node transfer.
    """
    per_category: Dict[str, List[int]] = {}
    untraced_ns = 0
    total_ns = 0
    for node in cluster.nodes:
        tracer = node.kernel.tracer
        if not tracer.enabled:
            untraced_ns += node.kernel.clock.now_ns
            total_ns += node.kernel.clock.now_ns
            continue
        node_total = node.kernel.clock.now_ns
        total_ns += node_total
        for row in mechanism_rollup(tracer, node_total):
            if row.category == "untraced":
                untraced_ns += row.self_ns
                continue
            bucket = per_category.setdefault(row.category, [0, 0])
            bucket[0] += row.spans
            bucket[1] += row.self_ns

    def row(category: str, spans: int, self_ns: int) -> RollupRow:
        percent = 100.0 * self_ns / total_ns if total_ns else 0.0
        return RollupRow(category, spans, self_ns, percent)

    rows = [
        row(category, spans, self_ns)
        for category, (spans, self_ns) in per_category.items()
    ]
    rows.sort(key=lambda r: (-r.self_ns, r.category))
    rows.append(row("untraced", 0, untraced_ns))
    return rows
