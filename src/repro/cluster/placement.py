"""Partition-aware placement: which node runs which agent partition.

A :class:`Placement` maps partition labels (``loading``, ``processing``,
...) to node indices.  The policy input is *affinity*: partitions a host
function uses together exchange object references, and a reference that
crosses a node boundary cannot be remapped zero-copy — it falls back to
a framed byte-copy over the wire.  :func:`affinity_groups` derives the
must-co-locate sets from ``staticcheck``'s inferred per-function plans
(:meth:`~repro.staticcheck.inference.FunctionReport.agents_used`), and
:func:`check_placement` rejects any placement that splits a group,
unless the caller explicitly opts into paying the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.partitioner import PartitionPlan
from repro.errors import PlacementError

try:  # pragma: no cover - import cycle guard for type checkers only
    from repro.staticcheck.privileges import AgentPrivilege
except ImportError:  # pragma: no cover
    AgentPrivilege = None  # type: ignore[assignment, misc]


@dataclass(frozen=True)
class Placement:
    """An immutable partition-label -> node-index assignment."""

    assignments: Tuple[Tuple[str, int], ...]

    @classmethod
    def of(cls, mapping: Dict[str, int]) -> "Placement":
        return cls(tuple(sorted(mapping.items())))

    def node_for(self, label: str) -> int:
        for name, node in self.assignments:
            if name == label:
                return node
        raise PlacementError(f"partition {label!r} is not placed")

    def labels_on(self, node: int) -> List[str]:
        return [name for name, where in self.assignments if where == node]

    def nodes_used(self) -> List[int]:
        return sorted({node for _, node in self.assignments})

    def to_dict(self) -> Dict[str, int]:
        return dict(self.assignments)


def affinity_placement(plan: PartitionPlan, node: int = 0) -> Placement:
    """Co-locate every partition on one node (zero cross-node derefs)."""
    return Placement.of(
        {partition.label: node for partition in plan.partitions}
    )


def spread_placement(plan: PartitionPlan, node_count: int) -> Placement:
    """Round-robin partitions across nodes — deliberately ignores
    affinity, the worst case the placement tests measure against."""
    if node_count < 1:
        raise PlacementError(f"node count must be >= 1, got {node_count}")
    return Placement.of({
        partition.label: partition.index % node_count
        for partition in plan.partitions
    })


def affinity_groups(
    reports: Iterable,
) -> List[FrozenSet[str]]:
    """Must-co-locate partition sets from staticcheck function reports.

    Each function's :meth:`agents_used` set is one co-location
    constraint (its call chain passes references between exactly those
    agents); overlapping constraints merge transitively (union-find).
    Returns deterministically sorted frozensets.
    """
    parent: Dict[str, str] = {}

    def find(label: str) -> str:
        parent.setdefault(label, label)
        while parent[label] != label:
            parent[label] = parent[parent[label]]
            label = parent[label]
        return label

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            # Deterministic representative: the lexicographically least.
            low, high = sorted((root_a, root_b))
            parent[high] = low

    for report in reports:
        used = sorted(report.agents_used())
        for label in used[1:]:
            union(used[0], label)
        for label in used[:1]:
            find(label)

    groups: Dict[str, List[str]] = {}
    for label in parent:
        groups.setdefault(find(label), []).append(label)
    return sorted(
        (frozenset(members) for members in groups.values()),
        key=lambda group: sorted(group),
    )


def inferred_affinity_groups(paths: Sequence[str]) -> List[FrozenSet[str]]:
    """Affinity groups inferred from real host-program sources.

    Runs the staticcheck callgraph builder + partition inferencer over
    each file and merges every function's agent set — the bridge from
    "what the lint sees" to "what placement must respect".
    """
    from repro.staticcheck.callgraph import build_module
    from repro.staticcheck.inference import PartitionInferencer

    reports = []
    for path in paths:
        summary = build_module(path)
        reports.extend(PartitionInferencer(summary).infer().values())
    return affinity_groups(reports)


def placement_violations(
    placement: Placement, groups: Iterable[FrozenSet[str]]
) -> List[str]:
    """Human-readable description of every split affinity group."""
    violations = []
    for group in groups:
        placed = sorted(
            label for label in group
            if any(name == label for name, _ in placement.assignments)
        )
        if len(placed) < 2:
            continue
        nodes = sorted({placement.node_for(label) for label in placed})
        if len(nodes) > 1:
            violations.append(
                f"affinity group {{{', '.join(sorted(group))}}} is split "
                f"across nodes {nodes} — every LDC deref between them "
                "becomes a framed inter-node byte copy"
            )
    return violations


def check_placement(
    placement: Placement,
    groups: Iterable[FrozenSet[str]],
    allow_split: bool = False,
) -> None:
    """Raise :class:`~repro.errors.PlacementError` on split affinity
    groups (unless the caller opted into paying the wire)."""
    violations = placement_violations(placement, groups)
    if violations and not allow_split:
        raise PlacementError("; ".join(violations))


def exposure_by_node(
    placement: Placement, privileges: Dict[str, "AgentPrivilege"]
) -> Dict[int, int]:
    """Syscall attack surface per node: |union of co-located budgets|.

    Two partitions on one node share a kernel; a compromise of either
    agent can attempt every syscall any co-located filter allows, so the
    node's exposure is the size of the *union* of the minimal budgets
    (allowed + init-only) of everything placed there.
    """
    unions: Dict[int, set] = {}
    for label, node in placement.assignments:
        privilege = privileges.get(label)
        if privilege is None:
            continue
        budget = unions.setdefault(node, set())
        budget.update(privilege.minimal_allowed())
        budget.update(privilege.minimal_init_only())
    return {node: len(budget) for node, budget in sorted(unions.items())}


def privilege_placement(
    privileges: Dict[str, "AgentPrivilege"],
    node_count: int,
    groups: Iterable[FrozenSet[str]] = (),
) -> Placement:
    """Place partitions to minimize worst-node syscall exposure.

    Affinity groups stay whole (each is one placement unit; splitting a
    group pays the inter-node byte-copy wire, which dominates any
    security score).  Units are placed greedily in descending privilege
    weight, each onto the node whose budget union grows the least —
    heavy, overlapping privilege sets gravitate together while disjoint
    ones spread, bounding what one kernel compromise can reach.
    Deterministic: ties break on lowest node index, units of equal
    weight on label order.
    """
    if node_count < 1:
        raise PlacementError(f"node count must be >= 1, got {node_count}")

    def budget_of(label: str) -> FrozenSet[str]:
        privilege = privileges.get(label)
        if privilege is None:
            return frozenset()
        return privilege.minimal_allowed() | privilege.minimal_init_only()

    # Fold each label into its (merged) affinity unit.
    unit_of: Dict[str, FrozenSet[str]] = {}
    for group in affinity_groups(
        [_FakeReport(group) for group in groups]
    ) if groups else []:
        for label in group:
            unit_of[label] = group
    for label in privileges:
        unit_of.setdefault(label, frozenset({label}))

    units: List[Tuple[FrozenSet[str], FrozenSet[str]]] = []
    for unit in sorted(set(unit_of.values()), key=lambda u: sorted(u)):
        combined: set = set()
        for label in unit:
            combined |= budget_of(label)
        units.append((unit, frozenset(combined)))
    units.sort(key=lambda item: (-len(item[1]), sorted(item[0])))

    node_budgets: List[set] = [set() for _ in range(node_count)]
    assignment: Dict[str, int] = {}
    for unit, budget in units:
        best, best_score = 0, None
        for node in range(node_count):
            resulting = [len(existing) for existing in node_budgets]
            resulting[node] = len(node_budgets[node] | budget)
            # Minimize the worst node's exposure after this placement;
            # on ties, the smallest union growth, then the lowest index.
            score = (
                max(resulting),
                len(budget - node_budgets[node]),
                node,
            )
            if best_score is None or score < best_score:
                best, best_score = node, score
        node_budgets[best].update(budget)
        for label in sorted(unit):
            assignment[label] = best
    return Placement.of(assignment)


class _FakeReport:
    """Adapter: a raw label set quacking like a FunctionReport."""

    def __init__(self, labels: FrozenSet[str]) -> None:
        self._labels = set(labels)

    def agents_used(self) -> set:
        """The co-location constraint this pseudo-report carries."""
        return set(self._labels)
