"""Partition-aware placement: which node runs which agent partition.

A :class:`Placement` maps partition labels (``loading``, ``processing``,
...) to node indices.  The policy input is *affinity*: partitions a host
function uses together exchange object references, and a reference that
crosses a node boundary cannot be remapped zero-copy — it falls back to
a framed byte-copy over the wire.  :func:`affinity_groups` derives the
must-co-locate sets from ``staticcheck``'s inferred per-function plans
(:meth:`~repro.staticcheck.inference.FunctionReport.agents_used`), and
:func:`check_placement` rejects any placement that splits a group,
unless the caller explicitly opts into paying the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.partitioner import PartitionPlan
from repro.errors import PlacementError


@dataclass(frozen=True)
class Placement:
    """An immutable partition-label -> node-index assignment."""

    assignments: Tuple[Tuple[str, int], ...]

    @classmethod
    def of(cls, mapping: Dict[str, int]) -> "Placement":
        return cls(tuple(sorted(mapping.items())))

    def node_for(self, label: str) -> int:
        for name, node in self.assignments:
            if name == label:
                return node
        raise PlacementError(f"partition {label!r} is not placed")

    def labels_on(self, node: int) -> List[str]:
        return [name for name, where in self.assignments if where == node]

    def nodes_used(self) -> List[int]:
        return sorted({node for _, node in self.assignments})

    def to_dict(self) -> Dict[str, int]:
        return dict(self.assignments)


def affinity_placement(plan: PartitionPlan, node: int = 0) -> Placement:
    """Co-locate every partition on one node (zero cross-node derefs)."""
    return Placement.of(
        {partition.label: node for partition in plan.partitions}
    )


def spread_placement(plan: PartitionPlan, node_count: int) -> Placement:
    """Round-robin partitions across nodes — deliberately ignores
    affinity, the worst case the placement tests measure against."""
    if node_count < 1:
        raise PlacementError(f"node count must be >= 1, got {node_count}")
    return Placement.of({
        partition.label: partition.index % node_count
        for partition in plan.partitions
    })


def affinity_groups(
    reports: Iterable,
) -> List[FrozenSet[str]]:
    """Must-co-locate partition sets from staticcheck function reports.

    Each function's :meth:`agents_used` set is one co-location
    constraint (its call chain passes references between exactly those
    agents); overlapping constraints merge transitively (union-find).
    Returns deterministically sorted frozensets.
    """
    parent: Dict[str, str] = {}

    def find(label: str) -> str:
        parent.setdefault(label, label)
        while parent[label] != label:
            parent[label] = parent[parent[label]]
            label = parent[label]
        return label

    def union(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            # Deterministic representative: the lexicographically least.
            low, high = sorted((root_a, root_b))
            parent[high] = low

    for report in reports:
        used = sorted(report.agents_used())
        for label in used[1:]:
            union(used[0], label)
        for label in used[:1]:
            find(label)

    groups: Dict[str, List[str]] = {}
    for label in parent:
        groups.setdefault(find(label), []).append(label)
    return sorted(
        (frozenset(members) for members in groups.values()),
        key=lambda group: sorted(group),
    )


def inferred_affinity_groups(paths: Sequence[str]) -> List[FrozenSet[str]]:
    """Affinity groups inferred from real host-program sources.

    Runs the staticcheck callgraph builder + partition inferencer over
    each file and merges every function's agent set — the bridge from
    "what the lint sees" to "what placement must respect".
    """
    from repro.staticcheck.callgraph import build_module
    from repro.staticcheck.inference import PartitionInferencer

    reports = []
    for path in paths:
        summary = build_module(path)
        reports.extend(PartitionInferencer(summary).infer().values())
    return affinity_groups(reports)


def placement_violations(
    placement: Placement, groups: Iterable[FrozenSet[str]]
) -> List[str]:
    """Human-readable description of every split affinity group."""
    violations = []
    for group in groups:
        placed = sorted(
            label for label in group
            if any(name == label for name, _ in placement.assignments)
        )
        if len(placed) < 2:
            continue
        nodes = sorted({placement.node_for(label) for label in placed})
        if len(nodes) > 1:
            violations.append(
                f"affinity group {{{', '.join(sorted(group))}}} is split "
                f"across nodes {nodes} — every LDC deref between them "
                "becomes a framed inter-node byte copy"
            )
    return violations


def check_placement(
    placement: Placement,
    groups: Iterable[FrozenSet[str]],
    allow_split: bool = False,
) -> None:
    """Raise :class:`~repro.errors.PlacementError` on split affinity
    groups (unless the caller opted into paying the wire)."""
    violations = placement_violations(placement, groups)
    if violations and not allow_split:
        raise PlacementError("; ".join(violations))
