"""Cluster scaling benchmark: sharded serving at N nodes vs one.

Runs the serving workload (the same 4-call pipeline the single-node
serve bench uses) three ways on identical data:

1. ``--nodes 1``: the whole dataset and every tenant on one node — the
   scaling baseline;
2. ``--nodes N``: dataset sharded by the chosen partitioner, tenants
   sticky-routed to their shard's node — the scaling headline;
3. ``--nodes N`` + one scripted node failure mid-drain — shard
   re-placement and request resubmission must keep goodput bounded.

Everything is a pure function of the arguments (virtual clocks, seeded
payloads, deterministic manifests), so the result dict renders to
byte-identical JSON across runs and machines.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import NoFaultPlan
from repro.serve.bench import standard_pipeline

from repro.cluster.kernel import ClusterKernel
from repro.cluster.serve import ClusterServer
from repro.cluster.sharding import ShardManifest, make_partitioner


class SingleNodeFailurePlan(NoFaultPlan):
    """Scripted chaos: kill one node at the Kth failure decision point."""

    def __init__(self, victim: int = 1, after: int = 3) -> None:
        self.victim = victim
        self.after = after
        self.consults = 0
        self.fired = False

    def node_failure(self, candidates) -> Optional[int]:
        self.consults += 1
        if (
            not self.fired
            and self.consults >= self.after
            and self.victim in candidates
        ):
            self.fired = True
            return self.victim
        return None


def _workload(
    tenants: int, requests_per_tenant: int, image_size: int
) -> Tuple[List[str], Dict[str, Any]]:
    """Deterministic input paths and payloads (one rng, fixed order)."""
    rng = np.random.default_rng(0)
    paths: List[str] = []
    payloads: Dict[str, Any] = {}
    for tenant in range(tenants):
        for request in range(requests_per_tenant):
            path = f"/data/tenant-{tenant}/in-{request}.png"
            paths.append(path)
            payloads[path] = rng.normal(size=(image_size, image_size))
    return paths, payloads


def run_cluster_config(
    nodes: int,
    tenants: int,
    requests_per_tenant: int,
    pool_size: int,
    image_size: int,
    partitioner: str,
    fault_plan: Optional[NoFaultPlan] = None,
) -> Tuple[ShardManifest, Dict[str, Any]]:
    """One full serving run at a node count; returns (manifest, stats)."""
    paths, payloads = _workload(tenants, requests_per_tenant, image_size)
    manifest = make_partitioner(
        partitioner, default_shards=tenants
    ).split(paths)
    cluster = ClusterKernel(nodes=nodes)
    if fault_plan is not None:
        cluster.inject_faults(fault_plan)
    server = ClusterServer(
        cluster=cluster, pool_size=pool_size, batching=True
    )
    server.load_dataset(manifest, payloads)
    for tenant in range(tenants):
        server.pin_tenant_to_item(
            f"tenant-{tenant}", f"/data/tenant-{tenant}/in-0.png"
        )
    for tenant in range(tenants):
        for request in range(requests_per_tenant):
            path = f"/data/tenant-{tenant}/in-{request}.png"
            server.submit(
                f"tenant-{tenant}",
                standard_pipeline(
                    path, f"/out/tenant-{tenant}/out-{request}.png"
                ),
            )
    responses = server.drain()
    stats = server.stats()
    stats["responses"] = len(responses)
    cluster.verify_accounting()
    server.shutdown()
    return manifest, stats


def _row(name: str, stats: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "name": name,
        "nodes": stats["nodes"],
        "living_nodes": stats["living_nodes"],
        "requests": stats["requests"],
        "ok": stats["ok"],
        "goodput": round(stats["goodput"], 6),
        "requests_per_second": round(stats["requests_per_second"], 2),
        "makespan_seconds": round(stats["makespan_seconds"], 6),
        "node_failures": stats["node_failures"],
        "resubmissions": stats["resubmissions"],
        "shards_replaced": stats["shards_replaced"],
        "cross_node_derefs": stats["inter_node"][
            "inter_node.cross_node_derefs"
        ],
    }


def run_cluster_benchmark(
    nodes: int = 4,
    tenants: int = 8,
    requests_per_tenant: int = 2,
    pool_size: int = 2,
    partitioner: str = "directory",
    image_size: int = 16,
    failure: bool = True,
) -> Dict[str, Any]:
    """The scaling sweep: 1 node, N nodes, N nodes + one node failure."""
    manifest, single = run_cluster_config(
        1, tenants, requests_per_tenant, pool_size, image_size, partitioner
    )
    _, multi = run_cluster_config(
        nodes, tenants, requests_per_tenant, pool_size, image_size,
        partitioner,
    )
    configs = [
        _row("1 node", single),
        _row(f"{nodes} nodes", multi),
    ]
    result: Dict[str, Any] = {
        "workload": {
            "tenants": tenants,
            "requests_per_tenant": requests_per_tenant,
            "total_requests": tenants * requests_per_tenant,
            "image_size": image_size,
            "pool_size": pool_size,
            "partitioner": manifest.partitioner,
            "shards": len(manifest.shards),
            "manifest_digest": manifest.digest(),
        },
        "configs": configs,
        "scaling": round(
            multi["requests_per_second"] / single["requests_per_second"], 2
        ) if single["requests_per_second"] else 0.0,
    }
    if failure and nodes > 1:
        _, chaos = run_cluster_config(
            nodes, tenants, requests_per_tenant, pool_size, image_size,
            partitioner,
            fault_plan=SingleNodeFailurePlan(victim=1, after=3),
        )
        configs.append(_row(f"{nodes} nodes, 1 failure", chaos))
        result["failure_goodput"] = round(chaos["goodput"], 6)
    return result
