"""Multi-node simulated cluster: sharding, placement, serving, chaos.

``repro.cluster`` lifts the reproduction from one
:class:`~repro.sim.kernel.SimKernel` machine to a simulated cluster:

* :mod:`~repro.cluster.kernel` — N nodes with independent virtual
  clocks, costed inter-node links, and an ``inter_node`` accounting
  lane that reconciles exactly (AccountingError on drift);
* :mod:`~repro.cluster.sharding` — directory / object / hash / lambda
  dataset partitioners and the deterministic shard manifest;
* :mod:`~repro.cluster.placement` — partition-to-node assignment that
  respects staticcheck-inferred affinity (co-located partitions keep
  zero-copy LDC; split ones pay framed inter-node byte copies);
* :mod:`~repro.cluster.gateway` — placement-aware pipeline dispatch
  with the transparent cross-node LDC fallback;
* :mod:`~repro.cluster.serve` — sticky per-tenant routing across nodes
  plus node-failure recovery (shard re-placement, resubmission);
* :mod:`~repro.cluster.trace` — merged Chrome traces (a row per node
  process) and the cluster mechanism rollup;
* :mod:`~repro.cluster.bench` — the scaling benchmark behind
  ``repro cluster-bench`` and ``BENCH_cluster.json``.

Everything is byte-identically deterministic from the virtual clocks.
"""

from repro.cluster.kernel import ClusterAccounting, ClusterKernel, ClusterNode
from repro.cluster.placement import (
    Placement,
    affinity_groups,
    affinity_placement,
    check_placement,
    inferred_affinity_groups,
    placement_violations,
    spread_placement,
)
from repro.cluster.sharding import (
    DirectoryPartitioner,
    HashPartitioner,
    LambdaPartitioner,
    ObjectPartitioner,
    Partitioner,
    Shard,
    ShardManifest,
    make_partitioner,
    shard_dataset,
    stable_hash,
)
from repro.cluster.topology import ClusterTopology, InterNodeLink

__all__ = [
    "ClusterAccounting",
    "ClusterKernel",
    "ClusterNode",
    "ClusterTopology",
    "DirectoryPartitioner",
    "HashPartitioner",
    "InterNodeLink",
    "LambdaPartitioner",
    "ObjectPartitioner",
    "Partitioner",
    "Placement",
    "Shard",
    "ShardManifest",
    "affinity_groups",
    "affinity_placement",
    "check_placement",
    "inferred_affinity_groups",
    "make_partitioner",
    "placement_violations",
    "shard_dataset",
    "spread_placement",
    "stable_hash",
]
