"""Serving-throughput measurement: naive baseline vs pooled configurations.

Drives identical multi-tenant workloads through :class:`NaiveServer`
(one fresh runtime per request — the seed's deployment model) and
:class:`PipelineServer` at several ``(pool_size, batching)`` points, and
reports requests/sec and p50/p99 latency from the deterministic virtual
clock.  Both the ``repro serve-bench`` CLI subcommand and
``benchmarks/bench_serve_throughput.py`` are thin wrappers around
:func:`run_serving_benchmark`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gateway import ApiCall
from repro.serve.batching import PREV
from repro.serve.server import NaiveServer, PipelineServer


def standard_pipeline(path: str, out: str) -> List[ApiCall]:
    """The benchmark's 4-call pipeline: load → blur → threshold → store."""
    return [
        ApiCall("opencv", "imread", (path,)),
        ApiCall("opencv", "GaussianBlur", (PREV,)),
        ApiCall("opencv", "threshold", (PREV,)),
        ApiCall("opencv", "imwrite", (out, PREV)),
    ]


def _load(server, tenants: int, requests: int, image_size: int) -> None:
    rng = np.random.default_rng(0)
    for t in range(tenants):
        for r in range(requests):
            path = f"/data/tenant-{t}/in-{r}.png"
            server.kernel.fs.write_file(
                path, rng.normal(size=(image_size, image_size))
            )
            server.submit(
                f"tenant-{t}",
                standard_pipeline(path, f"/out/tenant-{t}/out-{r}.png"),
            )


def _measure(server, tenants: int, requests: int, image_size: int
             ) -> Dict[str, Any]:
    _load(server, tenants, requests, image_size)
    responses = server.drain()
    failed = [r for r in responses if not r.ok]
    if failed:
        raise RuntimeError(
            f"benchmark request failed: {failed[0].error}"
        )
    return server.stats()


def run_serving_benchmark(
    tenants: int = 8,
    requests_per_tenant: int = 2,
    pool_sizes: Sequence[int] = (1, 4),
    batching_modes: Sequence[bool] = (False, True),
    image_size: int = 16,
) -> Dict[str, Any]:
    """Measure every configuration on the same workload; return JSON-able.

    The result's ``configs`` list always starts with the naive
    one-runtime-per-request baseline; each pooled entry carries
    ``speedup_vs_naive`` (requests/sec ratio).
    """
    naive = _measure(
        NaiveServer(), tenants, requests_per_tenant, image_size
    )
    configs: List[Dict[str, Any]] = [{
        "name": "naive (runtime per request)",
        "pool_size": 0,
        "batching": False,
        **_row(naive),
        "speedup_vs_naive": 1.0,
    }]
    naive_rps = naive["requests_per_second"]

    for pool_size in pool_sizes:
        for batching in batching_modes:
            server = PipelineServer(pool_size=pool_size, batching=batching)
            stats = _measure(server, tenants, requests_per_tenant, image_size)
            server.shutdown()
            configs.append({
                "name": (
                    f"pooled x{pool_size}, batching "
                    + ("on" if batching else "off")
                ),
                "pool_size": pool_size,
                "batching": batching,
                **_row(stats),
                "speedup_vs_naive": round(
                    stats["requests_per_second"] / naive_rps, 2
                ),
                "ipc_messages_saved": stats["batching_stats"][
                    "messages_saved"
                ],
                "fused_bytes_saved": stats["batching_stats"][
                    "fused_bytes_saved"
                ],
            })

    return {
        "workload": {
            "tenants": tenants,
            "requests_per_tenant": requests_per_tenant,
            "total_requests": tenants * requests_per_tenant,
            "pipeline_calls": len(standard_pipeline("x", "y")),
            "image_size": image_size,
        },
        "configs": configs,
    }


def _row(stats: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "requests_per_second": round(stats["requests_per_second"], 2),
        "p50_latency_ms": round(stats["p50_latency_ms"], 4),
        "p99_latency_ms": round(stats["p99_latency_ms"], 4),
        "makespan_seconds": round(stats["makespan_seconds"], 6),
    }


def best_pooled(result: Dict[str, Any]) -> Dict[str, Any]:
    """The highest-throughput pooled configuration in a result."""
    pooled = [c for c in result["configs"] if c["pool_size"] > 0]
    return max(pooled, key=lambda c: c["requests_per_second"])
