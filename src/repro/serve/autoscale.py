"""SLO-driven pool autoscaling and brownout-mode graceful degradation.

PR 9's burn-rate SLO engine produces the control signal; this module
closes the loop:

* :class:`BurnMonitor` — an *incremental* fast-window burn detector.
  It mirrors :func:`repro.obs.slo._evaluate_window`'s cell math (cell
  ``k`` of window ``W`` covers ``[k*W, (k+1)*W)``; a cell burns when
  ``errors > 0`` and ``(errors/requests)/budget >=
  window.burn_threshold(period)``) but evaluates cells as the request
  stream closes them, so policies can act mid-run instead of
  post-mortem.  Timeline finish times are not strictly monotone across
  lanes, so an event landing in an already-closed cell folds into the
  *current* cell — a deliberately conservative divergence from the
  offline evaluator, which stays the source of truth for reports.
* :class:`PoolAutoscaler` — scales a server's agent pools up on burning
  cells and down after a calm streak, under an up/down cooldown pair
  (hysteresis) and a finite spawn budget (scaling up costs real spawn
  time; the budget is the restart-storm guard).  Every decision is an
  ordered :class:`ScaleEvent` and an ``autoscale.pool_size`` series
  point.
* :class:`BrownoutController` — the degraded tier between "healthy" and
  "circuit-open".  A priority *floor* starts above every class (nothing
  shed); each burning cell lowers it one class (bronze sheds first),
  each sufficiently long calm streak raises it one (silver recovers
  before bronze... i.e. higher priority re-admits first).  Gold
  (priority 0) is never shed: ``min_floor`` is 1.

Everything is driven by the deterministic event stream, so autoscaling
decisions — like everything else in the simulation — replay
byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.slo import FAST_WINDOW, BurnWindow, RequestEvent, SLOSpec
from repro.sim.clock import NS_PER_SEC

__all__ = [
    "BurnMonitor",
    "AutoscaleConfig",
    "ScaleEvent",
    "PoolAutoscaler",
    "BrownoutConfig",
    "BrownoutEvent",
    "BrownoutController",
    "control_slo",
]


def control_slo(budget_ns: int) -> SLOSpec:
    """The goodput objective the control loop burns against.

    ``budget_ns`` is the per-request latency budget the run is judged
    at; a request is an error to the controller iff it failed or blew
    that budget.
    """
    return SLOSpec(
        "autoscale-goodput", "goodput", objective=0.99,
        threshold_ns=budget_ns, period_ns=NS_PER_SEC,
    )


class BurnMonitor:
    """Incremental single-cell burn-rate evaluation of one window."""

    def __init__(
        self, spec: SLOSpec, window: BurnWindow = FAST_WINDOW
    ) -> None:
        self.spec = spec
        self.window = window
        self.threshold = window.burn_threshold(spec.period_ns)
        self._cell: Optional[int] = None
        self._requests = 0
        self._errors = 0
        self.cells_closed = 0
        self.burning_cells = 0

    def observe(self, event: RequestEvent) -> Optional[bool]:
        """Feed one event; when it closes a cell, return its verdict.

        Returns ``True`` (the closed cell was burning), ``False``
        (calm), or ``None`` (no cell boundary crossed yet).
        """
        cell = event.at_ns // self.window.window_ns
        verdict: Optional[bool] = None
        if self._cell is not None and cell > self._cell:
            verdict = self._close()
            self._cell = cell
        elif self._cell is None:
            self._cell = cell
        self._requests += 1
        if not self.spec.is_good(event):
            self._errors += 1
        return verdict

    def _close(self) -> bool:
        burning = False
        if self._requests and self._errors:
            burn_rate = (
                self._errors / self._requests
            ) / self.spec.error_budget
            burning = burn_rate >= self.threshold
        self.cells_closed += 1
        if burning:
            self.burning_cells += 1
        self._requests = 0
        self._errors = 0
        return burning


@dataclass(frozen=True)
class AutoscaleConfig:
    """The autoscaler's policy knobs (validated eagerly)."""

    min_size: int = 1
    max_size: int = 8
    scale_up_step: int = 2
    scale_down_step: int = 1
    #: Virtual time between consecutive scale-ups / scale-downs.
    up_cooldown_ns: int = 2_000_000
    down_cooldown_ns: int = 20_000_000
    #: Consecutive calm cells before a scale-down is considered — the
    #: hysteresis half of the loop (one quiet millisecond is noise).
    calm_cells_for_down: int = 10
    #: Member sets the autoscaler may ever spawn (its restart budget).
    scale_budget: int = 16

    def validate(self) -> None:
        if self.min_size < 1:
            raise ValueError(
                f"autoscale min_size must be >= 1, got {self.min_size}"
            )
        if self.max_size < self.min_size:
            raise ValueError(
                f"autoscale max_size ({self.max_size}) must be >= "
                f"min_size ({self.min_size})"
            )
        if self.scale_up_step < 1 or self.scale_down_step < 1:
            raise ValueError(
                "autoscale steps must be >= 1, got "
                f"up={self.scale_up_step} down={self.scale_down_step}"
            )
        if self.scale_budget < 0:
            raise ValueError(
                f"autoscale scale_budget must be >= 0, "
                f"got {self.scale_budget}"
            )


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaling decision, stamped from the event stream."""

    at_ns: int
    direction: str  # "up" | "down"
    from_size: int
    to_size: int
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_ns": self.at_ns,
            "direction": self.direction,
            "from_size": self.from_size,
            "to_size": self.to_size,
            "reason": self.reason,
        }


class PoolAutoscaler:
    """Burn-rate-driven scale-up/down of one server's agent pools."""

    def __init__(
        self,
        server,
        config: Optional[AutoscaleConfig] = None,
        spec: Optional[SLOSpec] = None,
        window: BurnWindow = FAST_WINDOW,
    ) -> None:
        self.server = server
        self.config = config if config is not None else AutoscaleConfig()
        self.config.validate()
        self.monitor = BurnMonitor(
            spec if spec is not None else control_slo(10_000_000), window
        )
        self.events: List[ScaleEvent] = []
        self.spawned = 0
        self._last_up_ns: Optional[int] = None
        self._last_down_ns: Optional[int] = None
        self._calm_streak = 0

    @property
    def scale_ups(self) -> int:
        return sum(1 for event in self.events if event.direction == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for event in self.events if event.direction == "down")

    def on_request(self, event: RequestEvent) -> None:
        """The server calls this once per finished request."""
        verdict = self.monitor.observe(event)
        if verdict is None:
            return
        if verdict:
            self._calm_streak = 0
            self._scale_up(event.at_ns)
        else:
            self._calm_streak += 1
            if self._calm_streak >= self.config.calm_cells_for_down:
                self._scale_down(event.at_ns)

    def _scale_up(self, at_ns: int) -> None:
        config = self.config
        if (
            self._last_up_ns is not None
            and at_ns - self._last_up_ns < config.up_cooldown_ns
        ):
            return
        size = self.server.pools.size
        step = min(
            config.scale_up_step,
            config.max_size - size,
            config.scale_budget - self.spawned,
        )
        if step <= 0:
            return
        actual = self.server.scale_to(
            size + step, reason="fast-window burn", at_ns=at_ns
        )
        if actual == size:
            return
        self.spawned += actual - size
        self._last_up_ns = at_ns
        self.events.append(ScaleEvent(
            at_ns=at_ns, direction="up", from_size=size, to_size=actual,
            reason="fast-window burn",
        ))

    def _scale_down(self, at_ns: int) -> None:
        config = self.config
        if (
            self._last_down_ns is not None
            and at_ns - self._last_down_ns < config.down_cooldown_ns
        ):
            return
        size = self.server.pools.size
        target = max(config.min_size, size - config.scale_down_step)
        if target >= size:
            return
        actual = self.server.scale_to(
            target, reason="calm streak", at_ns=at_ns
        )
        if actual == size:
            return
        self._last_down_ns = at_ns
        self._calm_streak = 0
        self.events.append(ScaleEvent(
            at_ns=at_ns, direction="down", from_size=size,
            to_size=actual, reason="calm streak",
        ))

    def snapshot(self) -> Dict[str, Any]:
        return {
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "spawned": self.spawned,
            "final_pool_size": self.server.pools.size,
            "cells_closed": self.monitor.cells_closed,
            "burning_cells": self.monitor.burning_cells,
            "events": [event.to_dict() for event in self.events],
        }


@dataclass(frozen=True)
class BrownoutConfig:
    """The brownout state machine's knobs."""

    #: Number of priority classes (0 = highest).
    classes: int = 3
    #: The floor never drops below this: priorities < min_floor are
    #: always served (gold is sacred).
    min_floor: int = 1
    #: Consecutive burning cells before the floor drops a class —
    #: brownout is the *last-resort* tier, so one bad millisecond
    #: (which the autoscaler already reacts to) must not shed anyone.
    trip_cells: int = 2
    #: Consecutive calm cells before one class is re-admitted.
    recover_cells: int = 5

    def validate(self) -> None:
        if self.classes < 1:
            raise ValueError(
                f"brownout needs >= 1 class, got {self.classes}"
            )
        if not 1 <= self.min_floor <= self.classes:
            raise ValueError(
                f"brownout min_floor must be in [1, {self.classes}], "
                f"got {self.min_floor}"
            )
        if self.trip_cells < 1 or self.recover_cells < 1:
            raise ValueError(
                "brownout trip_cells and recover_cells must be >= 1, "
                f"got trip={self.trip_cells} recover={self.recover_cells}"
            )


@dataclass(frozen=True)
class BrownoutEvent:
    """One floor transition (a brownout deepening or a recovery)."""

    at_ns: int
    direction: str  # "brownout" | "recover"
    floor_before: int
    floor_after: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_ns": self.at_ns,
            "direction": self.direction,
            "floor_before": self.floor_before,
            "floor_after": self.floor_after,
        }


class BrownoutController:
    """Priority-floor load shedding between healthy and circuit-open.

    The *floor* is the first shed priority: requests with
    ``priority >= floor`` are refused at admission.  Healthy state is
    ``floor == classes`` (nobody shed); each burning cell lowers the
    floor by one (sheds the lowest class still admitted); each
    ``recover_cells``-long calm streak raises it by one, so classes
    recover strictly in priority order.
    """

    def __init__(
        self,
        config: Optional[BrownoutConfig] = None,
        spec: Optional[SLOSpec] = None,
        window: BurnWindow = FAST_WINDOW,
    ) -> None:
        self.config = config if config is not None else BrownoutConfig()
        self.config.validate()
        self.monitor = BurnMonitor(
            spec if spec is not None else control_slo(10_000_000), window
        )
        self.floor = self.config.classes
        self.events: List[BrownoutEvent] = []
        self.shed_requests = 0
        self.sheds_by_priority: Dict[int, int] = {}
        self._calm_streak = 0
        self._burn_streak = 0

    def sheds(self, priority: int) -> bool:
        """Whether a request of ``priority`` is refused right now."""
        return priority >= self.floor

    def record_shed(self, priority: int) -> None:
        self.shed_requests += 1
        self.sheds_by_priority[priority] = (
            self.sheds_by_priority.get(priority, 0) + 1
        )

    def observe(self, event: RequestEvent) -> None:
        """The server calls this once per finished request."""
        verdict = self.monitor.observe(event)
        if verdict is None:
            return
        if verdict:
            self._calm_streak = 0
            self._burn_streak += 1
            if (
                self._burn_streak >= self.config.trip_cells
                and self.floor > self.config.min_floor
            ):
                self.events.append(BrownoutEvent(
                    at_ns=event.at_ns, direction="brownout",
                    floor_before=self.floor, floor_after=self.floor - 1,
                ))
                self.floor -= 1
        else:
            self._burn_streak = 0
            self._calm_streak += 1
            if (
                self._calm_streak >= self.config.recover_cells
                and self.floor < self.config.classes
            ):
                self.events.append(BrownoutEvent(
                    at_ns=event.at_ns, direction="recover",
                    floor_before=self.floor, floor_after=self.floor + 1,
                ))
                self.floor += 1
                self._calm_streak = 0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "floor": self.floor,
            "classes": self.config.classes,
            "shed_requests": self.shed_requests,
            "sheds_by_priority": {
                str(priority): count
                for priority, count in sorted(
                    self.sheds_by_priority.items()
                )
            },
            "transitions": [event.to_dict() for event in self.events],
        }
