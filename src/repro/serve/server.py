"""The pipeline server: FreePart as a multi-tenant service.

One :class:`PipelineServer` owns a simulated machine, runs the offline
analysis ONCE, stocks shared per-API-type agent pools ONCE, and then
serves pipeline requests from many tenants:

* requests enter through the :class:`~repro.serve.admission.AdmissionQueue`
  (bounded, per-tenant fair share, virtual-clock deadlines);
* a dispatched request leases one agent per API type from the pools,
  runs its call sequence through a tenant-scoped
  :class:`~repro.serve.gateway.ServeGateway` (batched IPC when enabled),
  and returns the lease;
* a crash costs one in-place restart and an at-least-once retry of the
  victim request — the pool, and every other tenant's work, is
  untouched.

:class:`NaiveServer` is the contrast baseline: the seed's
one-runtime-per-request model (fresh host + four fresh agents, torn down
after every request) behind the same interface, which is what the
serving-throughput benchmark measures the pools against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.gateway import ApiCall
from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import (
    AdmissionRejected,
    BrownoutShed,
    FrameworkCrash,
    RequestTimeout,
    TenantIsolationError,
)
from repro.frameworks.base import FrameworkAPI
from repro.frameworks.registry import get_api
from repro.obs.slo import RequestEvent
from repro.serve.admission import AdmissionQueue
from repro.serve.batching import BatchingStats
from repro.serve.breaker import CircuitBreaker
from repro.serve.gateway import ServeGateway
from repro.serve.metrics import ServingTimeline
from repro.serve.pool import PoolSet
from repro.serve.tenancy import Tenant, TenantRegistry
from repro.sim.kernel import SimKernel


def run_pipeline(gateway, calls: Sequence[ApiCall]) -> List[Any]:
    """Dispatch a call sequence per-call, resolving PREV to prior results.

    Used by gateways without native pipeline support (the naive baseline
    and the unprotected reference path); :class:`ServeGateway` has its own
    batched implementation.
    """
    from repro.serve.batching import PREV

    results: List[Any] = []
    for index, call in enumerate(calls):
        def resolve(value: Any) -> Any:
            if value is PREV:
                if index == 0:
                    raise ValueError("PREV used in the first call")
                return results[index - 1]
            return value

        results.append(gateway.call(
            call.framework, call.name,
            *tuple(resolve(v) for v in call.args),
            **{key: resolve(v) for key, v in call.kwargs},
        ))
    return results


@dataclass
class ServeRequest:
    """One tenant's pipeline: an ordered sequence of API calls."""

    request_id: int
    tenant_id: str
    calls: Tuple[ApiCall, ...]
    deadline_ns: Optional[int] = None
    enqueued_at_ns: int = 0
    timed_out: bool = False
    #: Tenant class: 0 = gold, 1 = silver, 2 = bronze.  The brownout
    #: controller sheds the highest numbers first.
    priority: int = 0


@dataclass
class ServeResponse:
    """The outcome of one served request."""

    request_id: int
    tenant_id: str
    ok: bool
    values: Optional[List[Any]] = None
    error: str = ""
    timed_out: bool = False
    retries: int = 0
    service_ns: int = 0
    latency_ns: int = 0
    #: True when the request was shed by an open circuit breaker: no
    #: agent touched it, no output was produced — degraded but correct.
    degraded: bool = False


class PipelineServer:
    """Shared-pool, admission-controlled, batching pipeline service."""

    def __init__(
        self,
        kernel: Optional[SimKernel] = None,
        config: Optional[FreePartConfig] = None,
        pool_size: int = 2,
        batching: bool = True,
        queue_capacity: int = 64,
        per_tenant_limit: Optional[int] = None,
        max_retries: int = 1,
        used_apis: Optional[Sequence[FrameworkAPI]] = None,
    ) -> None:
        self.kernel = kernel if kernel is not None else SimKernel()
        self.config = config if config is not None else FreePartConfig()
        self.batching = batching
        self.max_retries = max_retries
        # Offline phase, once for every future request.
        freepart = FreePart(kernel=self.kernel, config=self.config)
        self.categorization = freepart.analyze(used_apis)
        self.plan = freepart.build_plan(self.categorization)
        # Online substrate, spawned once and shared.
        self.pools = PoolSet(
            self.kernel, self.plan, self.categorization, self.config,
            size=pool_size,
        )
        self.queue = AdmissionQueue(
            self.kernel.clock,
            capacity=queue_capacity,
            per_tenant_limit=per_tenant_limit,
            series=self.kernel.series,
        )
        self.registry = TenantRegistry()
        #: The ``node`` label stamped on this server's request events
        #: and time-series points; the cluster front door sets it to the
        #: owning node's name, single-machine servers leave it empty.
        self.node_label = ""
        #: Per-request SLO facts (one per finished dispatch), the input
        #: stream for ``repro.obs.slo`` evaluation and run reports.
        self.events: List[RequestEvent] = []
        self.batch_stats = BatchingStats()
        self.timeline = ServingTimeline(
            lanes=pool_size, registry=self.kernel.metrics
        )
        self.tenants: Dict[str, Tenant] = {}
        self._request_ids = itertools.count(1)
        self.responses: List[ServeResponse] = []
        #: One circuit breaker per partition: a partition whose agents
        #: keep crashing is fenced off for a cooldown and its requests
        #: shed to degraded responses instead of thrashing the pool.
        self.breakers: Dict[str, CircuitBreaker] = {
            partition.label: CircuitBreaker(
                partition.label, self.kernel.clock
            )
            for partition in self.plan.partitions
        }
        self.degraded_responses = 0
        #: Optional control loops, attached via :meth:`enable_autoscale`
        #: / :meth:`enable_brownout` (None = the fixed-pool server every
        #: earlier PR built).
        self.autoscaler = None
        self.brownout = None
        #: Ordered scale decisions (mirrors ``autoscaler.events``).
        self.scale_events: List = []
        #: Transient-ChannelFull send retries absorbed across every
        #: request's gateway (overload made visible, not silent).
        self.send_backoff_retries = 0

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------

    def register_tenant(self, tenant_id: str) -> Tenant:
        """Create (or fetch) a tenant and its persistent host process."""
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            host = self.kernel.spawn(
                f"tenant:{tenant_id}", role="host", charge=False
            )
            tenant = Tenant(tenant_id=tenant_id, host=host)
            self.tenants[tenant_id] = tenant
        return tenant

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------

    def submit(
        self,
        tenant_id: str,
        calls: Sequence[ApiCall],
        deadline_ns: Optional[int] = None,
        priority: int = 0,
    ) -> ServeRequest:
        """Admit a request (raises AdmissionRejected on backpressure).

        A brownout-shed request (``priority`` at or below the current
        floor) raises :class:`BrownoutShed` *before* taking a queue
        slot — the cheapest possible refusal.
        """
        if self.brownout is not None and self.brownout.sheds(priority):
            self.brownout.record_shed(priority)
            self.queue.stats.shed += 1
            labels = {"tenant": tenant_id}
            if self.node_label:
                labels["node"] = self.node_label
            self.kernel.series.observe(
                "admission.shed", labels, 1,
                t_ns=self.kernel.clock.now_ns,
            )
            raise BrownoutShed(
                f"brownout floor {self.brownout.floor}: priority "
                f"{priority} request from tenant {tenant_id!r} shed"
            )
        tenant = self.register_tenant(tenant_id)
        request = ServeRequest(
            request_id=next(self._request_ids),
            tenant_id=tenant_id,
            calls=tuple(calls),
            deadline_ns=deadline_ns,
            priority=priority,
        )
        self.queue.submit(request)  # stamps enqueued_at_ns
        tenant.requests_submitted += 1
        return request

    # ------------------------------------------------------------------
    # Elastic capacity
    # ------------------------------------------------------------------

    def enable_autoscale(self, config=None, spec=None):
        """Attach a :class:`~repro.serve.autoscale.PoolAutoscaler`."""
        from repro.serve.autoscale import PoolAutoscaler

        self.autoscaler = PoolAutoscaler(self, config=config, spec=spec)
        self.scale_events = self.autoscaler.events
        return self.autoscaler

    def enable_brownout(self, config=None, spec=None):
        """Attach a :class:`~repro.serve.autoscale.BrownoutController`."""
        from repro.serve.autoscale import BrownoutController

        self.brownout = BrownoutController(config=config, spec=spec)
        return self.brownout

    def scale_to(
        self, size: int, reason: str = "", at_ns: Optional[int] = None
    ) -> int:
        """Resize the agent pools (and the latency model's lanes).

        Growing spawns fresh member sets — charging the virtual clock
        their full spawn cost — and adds timeline lanes that become free
        only at ``at_ns`` (the decision's own event time) *plus* that
        measured spawn cost: new capacity arrives late, like real
        capacity.  The decision time matters because the serial drive
        clock and the lane-replay timeline are different timebases;
        lanes must be stamped in timeline time or elastic capacity would
        land long after the overload it was bought for.  Shrinking
        retires idle member sets (never below one) and the idlest lanes.
        Returns the size actually reached.
        """
        size = max(1, size)
        before = self.pools.size
        spawn_started_ns = self.kernel.clock.now_ns
        if size > before:
            self.pools.grow(size - before)
        elif size < before:
            self.pools.shrink(before - size)
        actual = self.pools.size
        if actual != before:
            spawn_cost_ns = self.kernel.clock.now_ns - spawn_started_ns
            decided_ns = at_ns if at_ns is not None else spawn_started_ns
            lane_at_ns = decided_ns + spawn_cost_ns
            self.timeline.set_lanes(actual, at_ns=lane_at_ns)
            labels = {"node": self.node_label} if self.node_label else {}
            self.kernel.series.observe(
                "autoscale.pool_size", labels, actual, t_ns=lane_at_ns
            )
        return actual

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------

    def drain(self) -> List[ServeResponse]:
        """Serve every queued request (fair-share order); return results."""
        served: List[ServeResponse] = []
        while True:
            response = self.serve_one()
            if response is None:
                break
            served.append(response)
        return served

    def serve_one(self) -> Optional[ServeResponse]:
        """Dispatch exactly one queued request (None when idle).

        The cluster's round-robin drain interleaves nodes one request at
        a time — and checks the node-failure fault hook between
        dispatches — so it needs a single-step entry point rather than
        the run-to-empty :meth:`drain`.
        """
        request = self.queue.next_request()
        if request is None:
            return None
        response = self._dispatch(request)
        self.responses.append(response)
        return response

    def _dispatch(self, request: ServeRequest) -> ServeResponse:
        tracer = self.kernel.tracer
        if not tracer.enabled:
            return self._dispatch_request(request)
        tenant = self.tenants[request.tenant_id]
        tracer.name_track(tenant.host.pid, f"tenant:{request.tenant_id}")
        # The queue wait already elapsed (it overlaps other requests'
        # service), so it is recorded retrospectively and out-of-band.
        tracer.add_span(
            "admission_wait", category="admission",
            start_ns=request.enqueued_at_ns,
            end_ns=self.kernel.clock.now_ns,
            pid=tenant.host.pid, tenant=request.tenant_id,
            request_id=request.request_id,
        )
        with tracer.span("serve_request", category="serve",
                         pid=tenant.host.pid, tenant=request.tenant_id,
                         request_id=request.request_id) as span:
            response = self._dispatch_request(request)
            span.annotate(ok=response.ok, retries=response.retries,
                          timed_out=response.timed_out)
            return response

    def _dispatch_request(self, request: ServeRequest) -> ServeResponse:
        tenant = self.tenants[request.tenant_id]
        if request.timed_out:
            tenant.requests_failed += 1
            return ServeResponse(
                request_id=request.request_id,
                tenant_id=request.tenant_id,
                ok=False,
                timed_out=True,
                error=(
                    f"{RequestTimeout.__name__}: deadline "
                    f"{request.deadline_ns} ns passed in queue"
                ),
            )

        breaker_labels = self._breaker_labels(request)
        retries = 0
        while True:
            shed = self._acquire_breakers(request, breaker_labels, retries)
            if shed is not None:
                tenant.requests_failed += 1
                tenant.requests_degraded += 1
                self.degraded_responses += 1
                return shed
            leased = self.pools.lease_set(
                request.tenant_id, slot_hint=request.request_id
            )
            agents = {index: member.agent for index, member in leased.items()}
            gateway = ServeGateway(
                kernel=self.kernel,
                tenant=tenant,
                plan=self.plan,
                categorization=self.categorization,
                config=self.config,
                agents=agents,
                registry=self.registry,
                batching=self.batching,
                batch_stats=self.batch_stats,
            )
            started_ns = self.kernel.clock.now_ns
            try:
                values = gateway.call_many(list(request.calls))
            except FrameworkCrash as exc:
                # The pool repaired the agent in place (restart); retry
                # the whole request — at-least-once, like the one-shot
                # runtime's post-restart re-execution.
                self.send_backoff_retries += gateway.send_backoff_retries
                self.pools.restore_set(leased)
                self._settle_breakers(
                    breaker_labels, crashed=gateway.last_crash_partition
                )
                if retries < self.max_retries:
                    retries += 1
                    continue
                tenant.requests_failed += 1
                return self._finish(
                    request, started_ns, retries,
                    ok=False, error=f"{type(exc).__name__}: {exc}",
                )
            except TenantIsolationError as exc:
                self.send_backoff_retries += gateway.send_backoff_retries
                self.pools.restore_set(leased)
                self._settle_breakers(breaker_labels, crashed=None)
                tenant.isolation_violations += 1
                tenant.requests_failed += 1
                return self._finish(
                    request, started_ns, retries,
                    ok=False, error=f"{type(exc).__name__}: {exc}",
                )
            except Exception as exc:  # application-level failure
                self.send_backoff_retries += gateway.send_backoff_retries
                self.pools.restore_set(leased)
                self._settle_breakers(breaker_labels, crashed=None)
                tenant.requests_failed += 1
                return self._finish(
                    request, started_ns, retries,
                    ok=False, error=f"{type(exc).__name__}: {exc}",
                )
            self.send_backoff_retries += gateway.send_backoff_retries
            self.pools.restore_set(leased)
            self._settle_breakers(breaker_labels, crashed=None)
            tenant.requests_completed += 1
            return self._finish(
                request, started_ns, retries, ok=True, values=values
            )

    # ------------------------------------------------------------------
    # Circuit breaking
    # ------------------------------------------------------------------

    def _breaker_labels(self, request: ServeRequest) -> List[str]:
        """Partition labels this request's calls are expected to touch.

        Type-neutral and unknown APIs are skipped (they follow the
        framework state, which is not known before dispatch); the set is
        sorted so breaker acquisition order is deterministic.
        """
        labels = set()
        for call in request.calls:
            try:
                qualname = get_api(call.framework, call.name).spec.qualname
            except Exception:
                continue
            if qualname not in self.categorization:
                continue
            entry = self.categorization.get(qualname)
            if entry.neutral:
                continue
            partition = self.plan.partition_of(qualname)
            if partition is None:
                partition = self.plan.partition_for_type(entry.api_type)
            if partition is not None:
                labels.add(partition.label)
        return sorted(labels)

    def _acquire_breakers(
        self, request: ServeRequest, labels: List[str], retries: int
    ) -> Optional[ServeResponse]:
        """Ask every involved breaker for passage.

        Returns None when the request may dispatch; otherwise a shed
        (degraded) response.  Probes granted by earlier breakers are
        released if a later one sheds, so a half-open slot is never
        leaked on a request that did not run.
        """
        granted: List[CircuitBreaker] = []
        for label in labels:
            breaker = self.breakers[label]
            if breaker.allow():
                granted.append(breaker)
                continue
            for earlier in granted:
                earlier.release_probe()
            breaker.record_shed()
            started_ns = self.kernel.clock.now_ns
            response = self._finish(
                request, started_ns, retries,
                ok=False,
                error=(
                    f"CircuitOpen: partition {label!r} is shedding load "
                    "(degraded response, no agent dispatched)"
                ),
            )
            response.degraded = True
            return response
        return None

    def _settle_breakers(
        self, labels: List[str], crashed: Optional[str]
    ) -> None:
        """Record the dispatch outcome with every involved breaker."""
        for label in labels:
            breaker = self.breakers[label]
            if crashed is None:
                breaker.record_success()
            elif label == crashed:
                breaker.record_failure()
            else:
                # Not implicated in the crash: return any probe slot
                # without resetting its failure history.
                breaker.release_probe()
        if crashed is not None and crashed not in labels:
            # A neutral API crashed in a partition the pre-dispatch
            # estimate missed; its breaker still learns about it.
            breaker = self.breakers.get(crashed)
            if breaker is not None:
                breaker.record_failure()

    def _finish(
        self,
        request: ServeRequest,
        started_ns: int,
        retries: int,
        ok: bool,
        values: Optional[List[Any]] = None,
        error: str = "",
    ) -> ServeResponse:
        service_ns = self.kernel.clock.now_ns - started_ns
        timing = self.timeline.observe(
            request.request_id, request.tenant_id,
            arrival_ns=request.enqueued_at_ns, service_ns=service_ns,
        )
        event = RequestEvent(
            at_ns=timing.finish_ns,
            node=self.node_label,
            tenant=request.tenant_id,
            latency_ns=timing.latency_ns,
            ok=ok,
        )
        self.events.append(event)
        # Close the control loops on the same stream the reports read.
        if self.autoscaler is not None:
            self.autoscaler.on_request(event)
        if self.brownout is not None:
            self.brownout.observe(event)
        labels = {"tenant": request.tenant_id}
        if self.node_label:
            labels["node"] = self.node_label
        self.kernel.series.observe(
            "serve.latency_ns", labels, timing.latency_ns,
            t_ns=timing.finish_ns,
        )
        self.kernel.series.observe(
            "serve.service_ns", labels, service_ns, t_ns=timing.finish_ns,
        )
        return ServeResponse(
            request_id=request.request_id,
            tenant_id=request.tenant_id,
            ok=ok,
            values=values,
            error=error,
            retries=retries,
            service_ns=service_ns,
            latency_ns=timing.latency_ns,
        )

    # ------------------------------------------------------------------
    # Reporting / teardown
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        summary = self.timeline.summary()
        summary.update({
            "pool_size": self.pools.size,
            "batching": self.batching,
            "pool_restarts": self.pools.total_restarts(),
            "admission": {
                "admitted": self.queue.stats.admitted,
                "rejected_capacity": self.queue.stats.rejected_capacity,
                "rejected_tenant_budget":
                    self.queue.stats.rejected_tenant_budget,
                "dispatched": self.queue.stats.dispatched,
                "timed_out": self.queue.stats.timed_out,
                "shed": self.queue.stats.shed,
            },
            "send_backoff_retries": self.send_backoff_retries,
            "batching_stats": {
                "calls": self.batch_stats.calls,
                "batches": self.batch_stats.batches,
                "messages_saved": self.batch_stats.messages_saved,
                "chains_local": self.batch_stats.chains_local,
                "fused_bytes_saved": self.batch_stats.fused_bytes_saved,
            },
            "tenant_refs_minted": self.registry.minted,
            "isolation_checks": self.registry.checks,
            "isolation_violations": self.registry.violations,
            "degraded_responses": self.degraded_responses,
            "breakers": {
                label: breaker.snapshot()
                for label, breaker in sorted(self.breakers.items())
            },
        })
        if self.autoscaler is not None:
            summary["autoscale"] = self.autoscaler.snapshot()
        if self.brownout is not None:
            summary["brownout"] = self.brownout.snapshot()
        return summary

    def shutdown(self) -> None:
        self.pools.shutdown()


class NaiveServer:
    """The seed model behind the serving interface: one runtime per request.

    Every dispatch pays the full online-phase cost — a fresh host, four
    fresh agent spawns, teardown — exactly what
    :class:`~repro.core.runtime.FreePart.deploy` does today.  The
    serving benchmark's baseline.
    """

    def __init__(
        self,
        kernel: Optional[SimKernel] = None,
        config: Optional[FreePartConfig] = None,
        queue_capacity: int = 64,
        used_apis: Optional[Sequence[FrameworkAPI]] = None,
    ) -> None:
        self.kernel = kernel if kernel is not None else SimKernel()
        self.config = config if config is not None else FreePartConfig()
        # The offline analysis is cacheable even naively; what the naive
        # model cannot amortize is the per-request process spawning.
        freepart = FreePart(kernel=self.kernel, config=self.config)
        self.categorization = freepart.analyze(used_apis)
        self.plan = freepart.build_plan(self.categorization)
        self._freepart = freepart
        self.queue = AdmissionQueue(self.kernel.clock, capacity=queue_capacity)
        self.timeline = ServingTimeline(
            lanes=1, registry=self.kernel.metrics
        )
        self.node_label = ""
        self.events: List[RequestEvent] = []
        self._request_ids = itertools.count(1)

    def submit(
        self,
        tenant_id: str,
        calls: Sequence[ApiCall],
        deadline_ns: Optional[int] = None,
    ) -> ServeRequest:
        request = ServeRequest(
            request_id=next(self._request_ids),
            tenant_id=tenant_id,
            calls=tuple(calls),
            deadline_ns=deadline_ns,
        )
        self.queue.submit(request)
        return request

    def drain(self) -> List[ServeResponse]:
        served: List[ServeResponse] = []
        while True:
            request = self.queue.next_request()
            if request is None:
                break
            served.append(self._dispatch(request))
        return served

    def _dispatch(self, request: ServeRequest) -> ServeResponse:
        tracer = self.kernel.tracer
        if not tracer.enabled:
            return self._dispatch_request(request)
        tracer.add_span(
            "admission_wait", category="admission",
            start_ns=request.enqueued_at_ns,
            end_ns=self.kernel.clock.now_ns,
            tenant=request.tenant_id, request_id=request.request_id,
        )
        with tracer.span("serve_request", category="serve",
                         tenant=request.tenant_id,
                         request_id=request.request_id) as span:
            response = self._dispatch_request(request)
            span.annotate(ok=response.ok)
            return response

    def _dispatch_request(self, request: ServeRequest) -> ServeResponse:
        started_ns = self.kernel.clock.now_ns
        gateway = self._freepart.deploy(plan=self.plan)
        ok, error, values = True, "", None
        try:
            values = run_pipeline(gateway, request.calls)
        except Exception as exc:
            ok, error = False, f"{type(exc).__name__}: {exc}"
        finally:
            gateway.shutdown()
        service_ns = self.kernel.clock.now_ns - started_ns
        timing = self.timeline.observe(
            request.request_id, request.tenant_id,
            arrival_ns=request.enqueued_at_ns, service_ns=service_ns,
        )
        self.events.append(RequestEvent(
            at_ns=timing.finish_ns,
            node=self.node_label,
            tenant=request.tenant_id,
            latency_ns=timing.latency_ns,
            ok=ok,
        ))
        return ServeResponse(
            request_id=request.request_id,
            tenant_id=request.tenant_id,
            ok=ok,
            values=values,
            error=error,
            service_ns=service_ns,
            latency_ns=timing.latency_ns,
        )

    def stats(self) -> Dict[str, Any]:
        summary = self.timeline.summary()
        summary.update({"pool_size": 0, "batching": False})
        return summary
