"""Shared per-API-type agent pools.

The one-shot runtime spawns four fresh agents per run and tears them down
afterwards; at serving scale that spawn cost (milliseconds of virtual
time per process) dominates small requests.  A pool spawns ``size``
agents per partition once, leases one agent of each type to a request,
and returns them afterwards — the paper's agents are stateless or
periodically checkpointed RPC servers (Sections 4.3–4.4), which is what
makes this reuse sound.

Crash handling: a leased agent that dies is restarted *in place* by the
pool (fresh process, fresh address space, sealed filter — the paper's
Section 4.4.2 restart), so the pool never shrinks and other members'
in-flight work is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.agent import AgentProcess
from repro.core.hybrid import Categorization
from repro.core.partitioner import PartitionPlan
from repro.core.runtime import FreePartConfig, build_agents
from repro.errors import AgentUnavailable
from repro.sim.kernel import SimKernel


@dataclass
class PoolStats:
    """Counters one partition's pool keeps across its lifetime."""

    leases: int = 0
    returns: int = 0
    restarts: int = 0
    crashes_repaired: int = 0
    #: Repairs abandoned because the member's restart budget ran out;
    #: the member stays dead and lease() skips it.
    budget_exhausted: int = 0


class PoolMember:
    """One pooled agent plus its lease bookkeeping."""

    __slots__ = ("agent", "slot", "leased_to", "busy_until_ns")

    def __init__(self, agent: AgentProcess, slot: int) -> None:
        self.agent = agent
        self.slot = slot
        self.leased_to: Optional[str] = None  # tenant id while leased
        #: Virtual time at which this member's current work completes —
        #: the serving timeline model uses it to compute queueing delay.
        self.busy_until_ns: int = 0

    @property
    def leased(self) -> bool:
        return self.leased_to is not None


class AgentPool:
    """A fixed-size pool of interchangeable agents for ONE partition."""

    def __init__(self, members: List[PoolMember]) -> None:
        if not members:
            raise ValueError("an agent pool needs at least one member")
        self.members = members
        self.stats = PoolStats()
        self._next = 0  # round-robin cursor over free members

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def partition(self):
        return self.members[0].agent.partition

    def lease(self, tenant_id: str) -> PoolMember:
        """Lease a free member (round-robin), repairing dead ones.

        Raises :class:`AgentUnavailable` when every member is leased —
        the admission controller sizes in-flight work so this is a bug,
        not an expected backpressure path.
        """
        for _ in range(self.size):
            member = self.members[self._next % self.size]
            self._next += 1
            if member.leased:
                continue
            repaired = False
            if not member.agent.alive:
                # Died between leases (e.g. a crash observed at return
                # time with repair deferred): repair before handing out.
                try:
                    member.agent.restart()
                except AgentUnavailable:
                    # Restart budget spent: this member is permanently
                    # down, but its pool siblings can still serve.
                    self.stats.budget_exhausted += 1
                    continue
                self.stats.restarts += 1
                self.stats.crashes_repaired += 1
                repaired = True
            member.leased_to = tenant_id
            self.stats.leases += 1
            tracer = member.agent.kernel.tracer
            if tracer.enabled:
                tracer.instant(
                    "pool_lease", category="pool",
                    pid=member.agent.process.pid, tenant=tenant_id,
                    slot=member.slot,
                    partition=self.partition.label, repaired=repaired,
                )
            return member
        raise AgentUnavailable(
            f"pool for partition {self.partition.label!r} has no free "
            f"member ({self.size} leased)"
        )

    def restore(self, member: PoolMember) -> None:
        """Return a member to the pool, repairing it if the request
        crashed it.  The pool never shrinks: a crash costs one restart,
        not a pool slot."""
        repaired = False
        if not member.agent.alive:
            try:
                member.agent.restart()
            except AgentUnavailable:
                # Out of restart budget: return the member dead; lease()
                # will skip it while its siblings carry the load.
                self.stats.budget_exhausted += 1
                member.leased_to = None
                self.stats.returns += 1
                return
            self.stats.restarts += 1
            self.stats.crashes_repaired += 1
            repaired = True
        tracer = member.agent.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "pool_restore", category="pool",
                pid=member.agent.process.pid, tenant=member.leased_to,
                slot=member.slot, repaired=repaired,
            )
        member.leased_to = None
        self.stats.returns += 1

    def free_count(self) -> int:
        return sum(1 for m in self.members if not m.leased)


class PoolSet:
    """One :class:`AgentPool` per partition of a plan."""

    def __init__(
        self,
        kernel: SimKernel,
        plan: PartitionPlan,
        categorization: Categorization,
        config: FreePartConfig,
        size: int = 2,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.kernel = kernel
        self.plan = plan
        self.categorization = categorization
        self.config = config
        self.size = size
        #: Member sets ever added after construction (autoscale grow);
        #: the autoscaler's spawn budget is charged against this.
        self.grown = 0
        #: Member sets retired by shrink.
        self.shrunk = 0
        columns: Dict[int, List[PoolMember]] = {
            partition.index: [] for partition in plan.partitions
        }
        # Spawn size × |partitions| agents up front; this is the one-time
        # cost the serving layer amortizes across every future request.
        for slot in range(size):
            agents = build_agents(
                kernel, plan, categorization, config,
                name_suffix=f"pool{slot}",
            )
            for index, agent in agents.items():
                columns[index].append(PoolMember(agent, slot))
        self.pools: Dict[int, AgentPool] = {
            index: AgentPool(members) for index, members in columns.items()
        }

    # ------------------------------------------------------------------
    # Elastic capacity (autoscaling)
    # ------------------------------------------------------------------

    def grow(self, count: int) -> int:
        """Spawn ``count`` additional member sets (one agent/partition).

        Each added set pays the same spawn + filter-install virtual time
        a pool slot costs at construction — scaling up is deliberately
        not free, which is why the autoscaler needs cooldowns and a
        budget.  Returns the new size.
        """
        if count < 0:
            raise ValueError(f"grow count must be >= 0, got {count}")
        for offset in range(count):
            slot = self.size + offset
            agents = build_agents(
                self.kernel, self.plan, self.categorization, self.config,
                name_suffix=f"pool{slot}",
            )
            for index, agent in agents.items():
                self.pools[index].members.append(PoolMember(agent, slot))
        self.size += count
        self.grown += count
        return self.size

    def shrink(self, count: int) -> int:
        """Retire up to ``count`` member sets, highest slots first.

        Only whole unleased sets are removed (a leased member stops the
        walk), and the pool never drops below one set.  Live slots stay
        the contiguous range ``0..size-1``, so a later :meth:`grow`
        numbers fresh slots without collision.  Returns the new size.
        """
        if count < 0:
            raise ValueError(f"shrink count must be >= 0, got {count}")
        target = max(1, self.size - count)
        while self.size > target:
            slot = self.size - 1
            doomed = []
            for pool in self.pools.values():
                member = next(
                    (m for m in pool.members if m.slot == slot), None
                )
                if member is None or member.leased:
                    doomed = None
                    break
                doomed.append((pool, member))
            if doomed is None:
                break
            for pool, member in doomed:
                pool.members.remove(member)
                member.agent.channel.close()
                if member.agent.process.alive:
                    member.agent.process.exit()
            self.size -= 1
            self.shrunk += 1
        return self.size

    def lease_set(self, tenant_id: str, slot_hint: Optional[int] = None
                  ) -> Dict[int, PoolMember]:
        """Lease one agent per partition (a full four-type set).

        ``slot_hint`` biases the round-robin so consecutive requests
        spread over distinct members, exercising the whole pool.
        """
        leased: Dict[int, PoolMember] = {}
        try:
            for index, pool in self.pools.items():
                if slot_hint is not None:
                    pool._next = slot_hint
                leased[index] = pool.lease(tenant_id)
                self.kernel.series.observe(
                    "pool.lease",
                    {"agent_pool": pool.partition.label},
                    1,
                    t_ns=self.kernel.clock.now_ns,
                )
        except AgentUnavailable:
            for index, member in leased.items():
                self.pools[index].restore(member)
            raise
        return leased

    def restore_set(self, leased: Dict[int, PoolMember]) -> None:
        for index, member in leased.items():
            self.pools[index].restore(member)

    def total_restarts(self) -> int:
        """Restarts across every pooled agent, however they were repaired
        (pool-side on lease/restore, or in place by a gateway's crash
        handler mid-request)."""
        return sum(
            member.agent.stats.restarts
            for pool in self.pools.values()
            for member in pool.members
        )

    def shutdown(self) -> None:
        """Exit every pooled agent and close its channels."""
        for pool in self.pools.values():
            for member in pool.members:
                member.agent.channel.close()
                if member.agent.process.alive:
                    member.agent.process.exit()
