"""Serving metrics: requests/sec and latency percentiles, all virtual.

The simulation executes requests one at a time on a global virtual
clock, so each request yields an exact *service time*.  Concurrency is
then modelled deterministically: the timeline assigns completed requests
to ``lanes`` parallel servers (one lane per pooled agent set) with an
earliest-free-lane discipline — the classic multi-server queue, replayed
rather than sampled, so p50/p99 and throughput are bit-identical across
machines.

Latency of a request = (queue wait until a lane frees) + (service time).
Throughput = completed requests / makespan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import NS_PER_SEC


@dataclass
class RequestTiming:
    """One completed request's point on the serving timeline."""

    request_id: int
    tenant_id: str
    arrival_ns: int
    start_ns: int
    finish_ns: int
    service_ns: int

    @property
    def latency_ns(self) -> int:
        return self.finish_ns - self.arrival_ns

    @property
    def wait_ns(self) -> int:
        return self.start_ns - self.arrival_ns


def percentile(sorted_values: List[int], fraction: float) -> int:
    """Nearest-rank percentile over a pre-sorted sample.

    Uses the ceil-rank definition ``rank = ceil(fraction * n) - 1``: the
    smallest value with at least ``fraction`` of the sample at or below
    it.  (The previous ``round(fraction * (n - 1))`` interpolation-index
    variant under-reported upper percentiles — p99 of a 10-element sample
    picked the 9th value, not the maximum.)
    """
    if not sorted_values:
        return 0
    n = len(sorted_values)
    rank = max(0, min(n - 1, math.ceil(fraction * n) - 1))
    return sorted_values[rank]


class ServingTimeline:
    """Earliest-free-lane replay of measured (arrival, service) pairs."""

    def __init__(
        self, lanes: int = 1, registry: Optional[MetricsRegistry] = None
    ) -> None:
        if lanes < 1:
            raise ValueError(f"timeline needs >= 1 lane, got {lanes}")
        self.lanes = lanes
        self._lane_free_ns = [0] * lanes
        self.timings: List[RequestTiming] = []
        #: Optional obs registry fed one counter + two histograms per
        #: observed request (serve.requests, serve.latency_ns,
        #: serve.service_ns).
        self.registry = registry

    def observe(
        self,
        request_id: int,
        tenant_id: str,
        arrival_ns: int,
        service_ns: int,
    ) -> RequestTiming:
        """Place one completed request on the earliest-free lane."""
        lane = min(range(self.lanes), key=lambda i: self._lane_free_ns[i])
        start_ns = max(arrival_ns, self._lane_free_ns[lane])
        finish_ns = start_ns + service_ns
        self._lane_free_ns[lane] = finish_ns
        timing = RequestTiming(
            request_id=request_id,
            tenant_id=tenant_id,
            arrival_ns=arrival_ns,
            start_ns=start_ns,
            finish_ns=finish_ns,
            service_ns=service_ns,
        )
        self.timings.append(timing)
        if self.registry is not None:
            self.registry.counter("serve.requests").inc()
            self.registry.histogram("serve.latency_ns").observe(
                timing.latency_ns
            )
            self.registry.histogram("serve.service_ns").observe(service_ns)
        return timing

    def set_lanes(self, lanes: int, at_ns: int = 0) -> None:
        """Resize the replay to ``lanes`` parallel servers mid-stream.

        The autoscaler's scale events map onto the timeline here: growing
        adds lanes that become free at ``at_ns`` (the virtual time the new
        agents finished spawning — capacity is not free), while shrinking
        retires the *idlest* lanes (smallest free time) so work already
        accepted on busy lanes keeps its backlog.  Deterministic either
        way.
        """
        if lanes < 1:
            raise ValueError(f"timeline needs >= 1 lane, got {lanes}")
        if lanes > self.lanes:
            self._lane_free_ns.extend([at_ns] * (lanes - self.lanes))
        elif lanes < self.lanes:
            self._lane_free_ns.sort()
            self._lane_free_ns = self._lane_free_ns[-lanes:]
        self.lanes = lanes

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def makespan_ns(self) -> int:
        if not self.timings:
            return 0
        first_arrival = min(t.arrival_ns for t in self.timings)
        last_finish = max(t.finish_ns for t in self.timings)
        return last_finish - first_arrival

    def requests_per_second(self) -> float:
        makespan = self.makespan_ns
        if makespan <= 0:
            return 0.0
        return len(self.timings) * NS_PER_SEC / makespan

    def latency_percentile_ns(self, fraction: float) -> int:
        return percentile(
            sorted(t.latency_ns for t in self.timings), fraction
        )

    def mean_service_ns(self) -> float:
        if not self.timings:
            return 0.0
        return sum(t.service_ns for t in self.timings) / len(self.timings)

    def per_tenant_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for timing in self.timings:
            counts[timing.tenant_id] = counts.get(timing.tenant_id, 0) + 1
        return counts

    def summary(self) -> Dict[str, Any]:
        """The JSON payload benchmark reports are built from."""
        return {
            "lanes": self.lanes,
            "requests": len(self.timings),
            "makespan_seconds": self.makespan_ns / NS_PER_SEC,
            "requests_per_second": self.requests_per_second(),
            "p50_latency_ms": self.latency_percentile_ns(0.50) / 1e6,
            "p99_latency_ms": self.latency_percentile_ns(0.99) / 1e6,
            "mean_service_ms": self.mean_service_ns() / 1e6,
            "per_tenant_requests": self.per_tenant_counts(),
        }
