"""RPC coalescing: plan which adjacent calls share one IPC round trip.

A pipeline request is a *sequence* of API calls, and consecutive calls
very often land in the same agent (the paper's Fig. 6 pipeline pattern:
a load, a run of processing calls, a store).  Each un-batched call pays
two ring-buffer messages (request + response) with a fixed per-message
latency; coalescing a run of same-agent calls into one
:class:`~repro.core.rpc.RpcBatchRequest` pays that fixed cost once per
*run* instead of once per call.

Chaining makes it stronger: a call whose argument is the previous call's
result (the :data:`PREV` sentinel) normally costs a reference round trip;
inside a batch it becomes a :class:`~repro.core.rpc.BatchChain`
placeholder the agent resolves locally — the intermediate never crosses
the IPC boundary at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from repro.core.gateway import ApiCall


class _Prev:
    """Sentinel: "the result of the previous call in this pipeline"."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "PREV"

    #: Wire size if it ever escapes onto a channel (it should not).
    nbytes = 8


#: Place in an ApiCall's args to reference the preceding call's result.
PREV = _Prev()


@dataclass(frozen=True)
class BatchGroup:
    """A run of adjacent calls that will share one IPC round trip."""

    partition_index: int
    start: int              # index of the first call in the pipeline
    calls: Tuple[ApiCall, ...]

    def __len__(self) -> int:
        return len(self.calls)


def plan_batches(
    calls: Sequence[ApiCall],
    partition_indices: Sequence[int],
    max_batch_calls: int = 16,
) -> List[BatchGroup]:
    """Split a routed pipeline into runs of adjacent same-agent calls.

    ``partition_indices[i]`` is the partition call ``i`` was routed to.
    Only *adjacent* calls coalesce — reordering across an agent boundary
    would break the temporal state machine's observation order.
    """
    if len(calls) != len(partition_indices):
        raise ValueError(
            f"{len(calls)} calls but {len(partition_indices)} routes"
        )
    groups: List[BatchGroup] = []
    run: List[ApiCall] = []
    run_start = 0
    run_partition = None
    for index, (call, partition) in enumerate(zip(calls, partition_indices)):
        boundary = (
            partition != run_partition or len(run) >= max_batch_calls
        )
        if run and boundary:
            groups.append(BatchGroup(run_partition, run_start, tuple(run)))
            run = []
        if not run:
            run_start = index
            run_partition = partition
        run.append(call)
    if run:
        groups.append(BatchGroup(run_partition, run_start, tuple(run)))
    return groups


@dataclass
class BatchingStats:
    """How much IPC the coalescer saved."""

    calls: int = 0
    batches: int = 0
    #: Request+response messages a per-call dispatch would have sent.
    messages_unbatched: int = 0
    #: Messages actually sent (2 per batch).
    messages_sent: int = 0
    #: PREV chains resolved inside an agent (zero-IPC intermediates).
    chains_local: int = 0
    #: Envelope bytes the fused batch framing (one offset table + reduced
    #: per-item headers) saved vs per-message envelopes.
    fused_bytes_saved: int = 0

    @property
    def messages_saved(self) -> int:
        return self.messages_unbatched - self.messages_sent

    def record_group(
        self, group_len: int, chains: int, fused_bytes_saved: int = 0
    ) -> None:
        self.calls += group_len
        self.batches += 1
        self.messages_unbatched += 2 * group_len
        self.messages_sent += 2
        self.chains_local += chains
        self.fused_bytes_saved += fused_bytes_saved
