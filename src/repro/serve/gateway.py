"""The per-request gateway of the serving layer.

A :class:`ServeGateway` is a :class:`~repro.core.runtime.FreePartGateway`
with three serving-specific behaviours layered on:

* it runs over **leased pool agents** instead of spawning its own (and
  therefore never tears them down — the pool owns their lifecycle);
* every ObjectRef crossing the tenant boundary is **namespaced**: refs a
  request produces are minted under its tenant, refs a request presents
  are checked, and a pooled agent's crash evicts the dead generation's
  refs for every tenant at once;
* :meth:`call_many` **coalesces adjacent same-agent calls** into batched
  IPC round trips, resolving :data:`~repro.serve.batching.PREV` chains
  inside the agent so intermediates never cross a channel.

Constructing one is cheap (no process spawns), so the server builds a
fresh gateway per request — which also gives each request its own
temporal state machine, exactly like a one-shot pipeline run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.agent import AgentProcess
from repro.core.gateway import ApiCall
from repro.core.hybrid import Categorization
from repro.core.partitioner import PartitionPlan
from repro.core.rpc import (
    BatchChain,
    ObjectRef,
    RemoteHandle,
    RpcBatchRequest,
    RpcRequest,
)
from repro.core.runtime import FreePartConfig, FreePartGateway
from repro.errors import (
    FrameworkCrash,
    ProcessCrashed,
    SegmentationFault,
    SyscallDenied,
)
from repro.frameworks.base import DataObject
from repro.serve.batching import PREV, BatchingStats, plan_batches
from repro.serve.tenancy import Tenant, TenantRegistry
from repro.sim.kernel import SimKernel


class ServeGateway(FreePartGateway):
    """Tenant-scoped dispatch over a leased set of pooled agents."""

    def __init__(
        self,
        kernel: SimKernel,
        tenant: Tenant,
        plan: PartitionPlan,
        categorization: Categorization,
        config: FreePartConfig,
        agents: Dict[int, AgentProcess],
        registry: TenantRegistry,
        batching: bool = True,
        max_batch_calls: int = 16,
        batch_stats: Optional[BatchingStats] = None,
    ) -> None:
        super().__init__(
            kernel, tenant.host, plan, categorization, config, agents=agents
        )
        self.tenant = tenant
        self.registry = registry
        self.batching = batching
        self.max_batch_calls = max_batch_calls
        self.batch_stats = batch_stats if batch_stats is not None else BatchingStats()

    # ------------------------------------------------------------------
    # Tenant namespacing
    # ------------------------------------------------------------------

    def _mint(self, value: Any) -> Any:
        if isinstance(value, RemoteHandle):
            self.registry.mint(self.tenant.tenant_id, value.ref)
        return value

    def _wrap_outbound(self, value: Any) -> Any:
        wrapped = super()._wrap_outbound(value)
        if isinstance(wrapped, ObjectRef) and isinstance(value, DataObject):
            # A host-minted ref (raw payload passed by the tenant's own
            # program) belongs to that tenant's namespace too.
            self.registry.mint(self.tenant.tenant_id, wrapped)
        return wrapped

    def _check_args(self, args: tuple, kwargs: dict) -> None:
        tenant_id = self.tenant.tenant_id
        for value in args:
            self.registry.check_value(tenant_id, value)
        for value in kwargs.values():
            self.registry.check_value(tenant_id, value)

    def call(self, framework: str, name: str, *args: Any, **kwargs: Any) -> Any:
        self._check_args(args, kwargs)
        return self._mint(super().call(framework, name, *args, **kwargs))

    def _handle_agent_crash(self, agent, qualname, exc) -> None:
        dead_pid = agent.process.pid
        dead_generation = agent.process.generation
        super()._handle_agent_crash(agent, qualname, exc)
        # The dead address space took every tenant's objects in it along;
        # their refs must stop resolving for everyone, owner included.
        self.registry.evict_generation(dead_pid, dead_generation)

    # ------------------------------------------------------------------
    # Pipeline dispatch (PREV chaining, optional batching)
    # ------------------------------------------------------------------

    def call_many(self, calls: List[ApiCall]) -> List[Any]:
        if not self.batching:
            return self._call_sequential(calls)
        return self._call_batched(calls)

    def _call_sequential(self, calls: List[ApiCall]) -> List[Any]:
        """Per-call dispatch, resolving PREV to the prior result."""
        results: List[Any] = []
        for index, call in enumerate(calls):
            args = tuple(
                self._resolve_prev(value, index, results)
                for value in call.args
            )
            kwargs = {
                key: self._resolve_prev(value, index, results)
                for key, value in call.kwargs
            }
            results.append(self.call(call.framework, call.name, *args, **kwargs))
        return results

    def _resolve_prev(self, value: Any, index: int, results: List[Any]) -> Any:
        if value is PREV:
            if index == 0:
                raise ValueError("PREV used in the first call of a pipeline")
            return results[index - 1]
        return value

    def _call_batched(self, calls: List[ApiCall]) -> List[Any]:
        """Coalesced dispatch: one IPC round trip per same-agent run."""
        # Route every call first (state machine advances in call order;
        # each call's request carries the state label at its routing
        # point, exactly as per-call dispatch would).
        apis, partitions, labels = [], [], []
        for call in calls:
            api, partition = self._route(call.framework, call.name)
            apis.append(api)
            partitions.append(partition)
            labels.append(self.machine.state_label)

        groups = plan_batches(
            calls, [p.index for p in partitions], self.max_batch_calls
        )
        results: List[Any] = [None] * len(calls)
        for group in groups:
            self._exchange_group(group, apis, partitions, labels, results)
        return results

    def _exchange_group(
        self, group, apis, partitions, labels, results: List[Any]
    ) -> None:
        tracer = self.kernel.tracer
        if tracer.enabled:
            with tracer.span("batch", category="batch", pid=self.host.pid,
                             size=len(group), tenant=self.tenant.tenant_id,
                             agent=partitions[group.start].label):
                self._exchange_group_body(
                    group, apis, partitions, labels, results
                )
            return
        self._exchange_group_body(group, apis, partitions, labels, results)

    def _exchange_group_body(
        self, group, apis, partitions, labels, results: List[Any]
    ) -> None:
        agent = self._ensure_agent(partitions[group.start])
        requests: List[RpcRequest] = []
        group_apis = []
        chains = 0
        for offset, call in enumerate(group.calls):
            index = group.start + offset
            chained_args: List[Any] = []
            for value in call.args:
                if value is PREV:
                    if index == 0:
                        raise ValueError(
                            "PREV used in the first call of a pipeline"
                        )
                    if offset > 0:
                        # Same batch: resolve inside the agent, zero IPC.
                        chained_args.append(BatchChain(1))
                        chains += 1
                        continue
                    value = results[index - 1]
                chained_args.append(value)
            kwargs = tuple(
                (key, self._resolve_prev(value, index, results))
                for key, value in call.kwargs
            )
            self._check_args(tuple(
                v for v in chained_args if not isinstance(v, BatchChain)
            ), dict(kwargs))
            requests.append(RpcRequest(
                seq=agent.sequence.next_seq(),
                api_qualname=apis[index].spec.qualname,
                args=tuple(
                    value if isinstance(value, BatchChain)
                    else self._wrap_outbound(value)
                    for value in chained_args
                ),
                kwargs=tuple(
                    (key, self._wrap_outbound(value)) for key, value in kwargs
                ),
                state_label=labels[index],
            ))
            group_apis.append(apis[index])

        batch = RpcBatchRequest(requests=tuple(requests))

        def execute():
            return agent.execute_batch(
                group_apis, batch, self._resolve_ref, ldc=self.config.ldc
            )

        try:
            # The hardened roundtrip retransmits lost batches and drains
            # duplicated deliveries; the agent's per-item reply cache
            # keeps re-delivered batch items exactly-once.
            response = self._rpc_roundtrip(
                agent, batch, execute,
                request_kind="batch-request",
                response_kind="batch-response",
                framed=self._frame_ready(agent),
            )
        except (ProcessCrashed, SyscallDenied, SegmentationFault) as exc:
            label = f"{group_apis[0].spec.qualname} (batch of {len(group)})"
            self._handle_agent_crash(agent, label, exc)
            raise FrameworkCrash(label, exc) from exc
        self._maybe_end_init(agent)
        self.batch_stats.record_group(
            len(group), chains,
            fused_bytes_saved=batch.fused_savings + response.fused_savings,
        )

        for offset, item in enumerate(response.responses):
            index = group.start + offset
            value = self._finish_value(agent, group_apis[offset].spec, item.value)
            results[index] = self._mint(value)
