"""Seeded open-loop traffic: load profiles, tenant populations, drivers.

Real traffic does not wait for the server — requests arrive on the
clients' schedule, pile up when the service slows, and follow heavy
tails in both *who* sends them and *how big* they are.  This module
generates that traffic deterministically and replays it against the
serving layer in virtual time:

* :class:`LoadProfile` — a rate curve over the run: ``diurnal`` (a
  raised-cosine day), ``burst`` (periodic storm windows at a multiple of
  the base rate), ``flash`` (a flash crowd: instant onset, exponential
  decay);
* :class:`TenantPopulation` — Zipf-weighted tenant popularity (a few
  tenants are most of the traffic) with priority classes derived from
  rank: the head of the popularity curve is ``gold`` (priority 0), then
  ``silver`` (1), the long tail ``bronze`` (2);
* :func:`generate_schedule` — tick-based Poisson thinning of the rate
  curve into an :class:`ArrivalSchedule`: a sorted, sha256-digestable
  list of :class:`Arrival`\\ s.  Same seed + profile ⇒ byte-identical
  schedule;
* :func:`run_open_loop` / :func:`run_open_loop_cluster` — drive a
  :class:`~repro.serve.server.PipelineServer` or
  :class:`~repro.cluster.serve.ClusterServer` open-loop: the virtual
  clock jumps to the next arrival when idle, due arrivals are admitted
  (or rejected/shed — the *client* remembers, even when the server never
  saw the request), and one request is dispatched per step.

Slow clients are modelled as payload inflation: a slow arrival carries a
``slow_multiplier``-times larger image, so its service time grows through
the same serialize/IPC cost model as everything else — no special-cased
sleep.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import AdmissionRejected, BrownoutShed
from repro.obs.slo import RequestEvent
from repro.sim.clock import NS_PER_SEC

__all__ = [
    "PROFILE_NAMES",
    "LoadProfile",
    "TenantPopulation",
    "Arrival",
    "ArrivalSchedule",
    "generate_schedule",
    "merge_schedules",
    "profile_by_name",
    "LoadgenResult",
    "run_open_loop",
    "run_open_loop_cluster",
]

PROFILE_NAMES = ("diurnal", "burst", "flash")

#: Priority classes, by Zipf rank: the head of the popularity curve pays
#: for the service, the tail rides along.
GOLD, SILVER, BRONZE = 0, 1, 2
PRIORITY_NAMES = {GOLD: "gold", SILVER: "silver", BRONZE: "bronze"}


@dataclass(frozen=True)
class LoadProfile:
    """A named arrival-rate curve: ``rate_at(t)`` in requests/second.

    All three shapes multiply ``base_rps``:

    ``diurnal``
        ``trough + (peak - trough) * (1 - cos(2*pi*t/period)) / 2`` —
        starts at the trough, peaks mid-period.
    ``burst``
        1.0 except inside storm windows (every ``storm_every_ns``, for
        ``storm_ns``), where it is ``storm_multiplier``.
    ``flash``
        1.0 until ``flash_onset_ns``; then
        ``1 + (flash_multiplier - 1) * exp(-(t-onset)/flash_decay_ns)``
        — the flash crowd arrives all at once and loses interest
        exponentially.
    """

    name: str
    base_rps: float
    duration_ns: int
    # diurnal
    diurnal_period_ns: int = 200_000_000
    diurnal_peak: float = 1.4
    diurnal_trough: float = 0.6
    # burst
    storm_every_ns: int = 100_000_000
    storm_ns: int = 25_000_000
    storm_offset_ns: int = 40_000_000
    storm_multiplier: float = 6.0
    # flash
    flash_onset_ns: int = 60_000_000
    flash_multiplier: float = 8.0
    flash_decay_ns: int = 25_000_000

    def __post_init__(self) -> None:
        if self.name not in PROFILE_NAMES:
            raise ValueError(
                f"unknown load profile {self.name!r} "
                f"(expected one of {PROFILE_NAMES})"
            )
        if self.base_rps <= 0:
            raise ValueError(f"base_rps must be > 0, got {self.base_rps}")
        if self.duration_ns <= 0:
            raise ValueError(
                f"duration_ns must be > 0, got {self.duration_ns}"
            )

    def multiplier_at(self, t_ns: int) -> float:
        """The rate multiplier at virtual time ``t_ns``."""
        if self.name == "diurnal":
            phase = (1 - math.cos(
                2 * math.pi * t_ns / self.diurnal_period_ns
            )) / 2
            return self.diurnal_trough + (
                self.diurnal_peak - self.diurnal_trough
            ) * phase
        if self.name == "burst":
            into = (t_ns - self.storm_offset_ns) % self.storm_every_ns
            if t_ns >= self.storm_offset_ns and into < self.storm_ns:
                return self.storm_multiplier
            return 1.0
        # flash
        if t_ns < self.flash_onset_ns:
            return 1.0
        return 1.0 + (self.flash_multiplier - 1.0) * math.exp(
            -(t_ns - self.flash_onset_ns) / self.flash_decay_ns
        )

    def rate_at(self, t_ns: int) -> float:
        """Requests per second at virtual time ``t_ns``."""
        return self.base_rps * self.multiplier_at(t_ns)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base_rps": self.base_rps,
            "duration_ns": self.duration_ns,
        }


def profile_by_name(
    name: str, base_rps: float = 600.0, duration_ns: int = 200_000_000,
    **overrides: Any,
) -> LoadProfile:
    """Build one of the three named profiles with shared defaults."""
    return LoadProfile(
        name=name, base_rps=base_rps, duration_ns=duration_ns, **overrides
    )


class TenantPopulation:
    """Zipf-weighted tenant popularity with rank-derived priority.

    Tenant rank ``r`` (0-based) has weight ``1 / (r + 1) ** alpha``; the
    top ``gold_fraction`` of ranks are priority 0, the next
    ``silver_fraction`` priority 1, the rest priority 2.
    """

    def __init__(
        self,
        tenants: int,
        zipf_alpha: float = 1.1,
        gold_fraction: float = 0.2,
        silver_fraction: float = 0.3,
        prefix: str = "tenant",
    ) -> None:
        if tenants < 1:
            raise ValueError(f"population needs >= 1 tenant, got {tenants}")
        self.tenants = tenants
        self.zipf_alpha = zipf_alpha
        self.prefix = prefix
        weights = [1.0 / (rank + 1) ** zipf_alpha for rank in range(tenants)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative
        gold_cut = max(1, math.ceil(gold_fraction * tenants))
        silver_cut = max(
            gold_cut, math.ceil((gold_fraction + silver_fraction) * tenants)
        )
        self._gold_cut = gold_cut
        self._silver_cut = silver_cut

    def draw(self, u: float) -> int:
        """Rank of the tenant at cumulative-probability point ``u``."""
        import bisect

        return min(
            bisect.bisect_left(self._cumulative, u), self.tenants - 1
        )

    def priority(self, rank: int) -> int:
        if rank < self._gold_cut:
            return GOLD
        if rank < self._silver_cut:
            return SILVER
        return BRONZE

    def tenant_id(self, rank: int) -> str:
        return f"{self.prefix}-{rank}"


@dataclass(frozen=True, order=True)
class Arrival:
    """One client request on the open-loop schedule."""

    at_ns: int
    tenant: str
    priority: int
    slow: bool
    image_size: int

    def line(self) -> str:
        """Canonical one-line encoding (the digest input)."""
        return (
            f"{self.at_ns} {self.tenant} {self.priority} "
            f"{int(self.slow)} {self.image_size}"
        )


@dataclass
class ArrivalSchedule:
    """A sorted, digestable arrival stream for one (profile, seed)."""

    profile: str
    seed: int
    arrivals: Tuple[Arrival, ...]

    def digest(self) -> str:
        """sha256 over the canonical encoding: the determinism anchor."""
        hasher = hashlib.sha256()
        hasher.update(f"{self.profile}/{self.seed}\n".encode())
        for arrival in self.arrivals:
            hasher.update(arrival.line().encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def counts(self) -> Dict[str, Any]:
        by_priority = {name: 0 for name in PRIORITY_NAMES.values()}
        tenants = set()
        slow = 0
        for arrival in self.arrivals:
            by_priority[PRIORITY_NAMES[arrival.priority]] += 1
            tenants.add(arrival.tenant)
            slow += int(arrival.slow)
        return {
            "arrivals": len(self.arrivals),
            "tenants": len(tenants),
            "slow_clients": slow,
            "by_priority": by_priority,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "profile": self.profile,
            "seed": self.seed,
            "digest": self.digest(),
            **self.counts(),
        }


def generate_schedule(
    profile: LoadProfile,
    seed: int,
    tenants: int = 20,
    zipf_alpha: float = 1.1,
    slow_fraction: float = 0.05,
    slow_multiplier: int = 4,
    image_size: int = 8,
    tick_ns: int = 1_000_000,
    tenant_prefix: str = "tenant",
) -> ArrivalSchedule:
    """Thin the rate curve into a concrete arrival schedule.

    Per ``tick_ns`` grid cell, the arrival count is Poisson with mean
    ``rate_at(t) * tick/1s``; each arrival gets a uniform offset inside
    the tick, a Zipf-drawn tenant, and a slow-client Bernoulli draw
    (payload inflated ``slow_multiplier`` x).  Everything comes from one
    ``numpy`` generator seeded with ``seed``, so the schedule is a pure
    function of its arguments.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    population = TenantPopulation(
        tenants, zipf_alpha=zipf_alpha, prefix=tenant_prefix
    )
    arrivals: List[Arrival] = []
    t = 0
    while t < profile.duration_ns:
        expected = profile.rate_at(t) * tick_ns / NS_PER_SEC
        count = int(rng.poisson(expected))
        for _ in range(count):
            offset = int(rng.integers(0, tick_ns))
            rank = population.draw(float(rng.random()))
            slow = bool(rng.random() < slow_fraction)
            arrivals.append(Arrival(
                at_ns=t + offset,
                tenant=population.tenant_id(rank),
                priority=population.priority(rank),
                slow=slow,
                image_size=image_size * (slow_multiplier if slow else 1),
            ))
        t += tick_ns
    arrivals.sort()
    return ArrivalSchedule(
        profile=profile.name, seed=seed, arrivals=tuple(arrivals)
    )


def merge_schedules(
    first: ArrivalSchedule, second: ArrivalSchedule
) -> ArrivalSchedule:
    """Stable two-pointer merge of two schedules on arrival time.

    Ties take from ``first``; because the merge only compares ``at_ns``
    and never reorders within an input, each tenant's arrivals keep
    their original relative order — the property the hypothesis suite
    proves.  Use distinct ``tenant_prefix``es to merge disjoint streams.
    """
    merged: List[Arrival] = []
    a, b = list(first.arrivals), list(second.arrivals)
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i].at_ns <= b[j].at_ns:
            merged.append(a[i])
            i += 1
        else:
            merged.append(b[j])
            j += 1
    merged.extend(a[i:])
    merged.extend(b[j:])
    return ArrivalSchedule(
        profile=f"{first.profile}+{second.profile}",
        seed=first.seed ^ second.seed,
        arrivals=tuple(merged),
    )


# ----------------------------------------------------------------------
# Open-loop drivers
# ----------------------------------------------------------------------


@dataclass
class LoadgenResult:
    """What one open-loop replay of a schedule produced.

    ``client_events`` is the *client's* view: one
    :class:`~repro.obs.slo.RequestEvent` per offered arrival, including
    the ones the server refused (admission rejections and brownout
    sheds are failures at the arrival's own timestamp with zero
    latency).  Goodput is judged on this stream — a shed request is not
    an excuse, it is a miss.
    """

    schedule_digest: str
    offered: int
    admitted: int
    rejected: int
    shed: int
    served_ok: int
    served_failed: int
    client_events: List[RequestEvent] = field(default_factory=list)
    sheds_by_priority: Dict[str, int] = field(default_factory=dict)

    def goodput(self, budget_ns: int) -> float:
        """Fraction of offered arrivals answered ok within ``budget_ns``."""
        if not self.offered:
            return 1.0
        good = sum(
            1 for event in self.client_events
            if event.ok and event.latency_ns <= budget_ns
        )
        return good / self.offered

    def p99_latency_ns(self) -> int:
        from repro.serve.metrics import percentile

        return percentile(
            sorted(e.latency_ns for e in self.client_events if e.ok), 0.99
        )

    def to_dict(self, budget_ns: int) -> Dict[str, Any]:
        return {
            "schedule_digest": self.schedule_digest,
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "served_ok": self.served_ok,
            "served_failed": self.served_failed,
            "goodput": round(self.goodput(budget_ns), 9),
            "p99_latency_ms": round(self.p99_latency_ns() / 1e6, 4),
            "sheds_by_priority": dict(sorted(
                self.sheds_by_priority.items()
            )),
        }


def _payload(image_size: int):
    import numpy as np

    return np.zeros((image_size, image_size))


def _refusal(arrival: Arrival, node: str) -> RequestEvent:
    """The client-side failure event for a refused arrival."""
    return RequestEvent(
        at_ns=arrival.at_ns, node=node, tenant=arrival.tenant,
        latency_ns=0, ok=False,
    )


def run_open_loop(
    server,
    schedule: ArrivalSchedule,
    deadline_ns: Optional[int] = None,
) -> LoadgenResult:
    """Replay a schedule against one :class:`PipelineServer` open-loop.

    Arrivals are admitted *one at a time, in schedule order*, each
    dispatched immediately (the request's ``enqueued_at_ns`` is rewound
    to the true arrival time, so latency is client-perceived).  Open-loop
    queueing is modelled entirely by the server's
    :class:`~repro.serve.metrics.ServingTimeline`: when arrivals outpace
    lane capacity the earliest-free-lane replay charges every request
    its wait — the admission queue is deliberately kept shallow, because
    its drain rate follows the *serial* drive clock (a different
    timebase from the lane replay) and deep fair-share rotation there
    would reorder dispatch against arrival order and corrupt the
    latency model.  Everything is a pure function of (server
    configuration, schedule), so re-runs are byte-identical.
    """
    from collections import deque

    from repro.serve.bench import standard_pipeline

    clock = server.kernel.clock
    pending = deque(schedule.arrivals)
    result = LoadgenResult(
        schedule_digest=schedule.digest(),
        offered=len(schedule.arrivals),
        admitted=0, rejected=0, shed=0, served_ok=0, served_failed=0,
    )
    sequence = 0
    while pending:
        arrival = pending.popleft()
        if clock.now_ns < arrival.at_ns:
            clock.advance(arrival.at_ns - clock.now_ns)
        sequence += 1
        path = f"/data/{arrival.tenant}/in-{sequence}.png"
        out = f"/out/{arrival.tenant}/out-{sequence}.png"
        server.kernel.fs.write_file(path, _payload(arrival.image_size))
        try:
            request = server.submit(
                arrival.tenant,
                standard_pipeline(path, out),
                deadline_ns=(
                    arrival.at_ns + deadline_ns
                    if deadline_ns is not None else None
                ),
                priority=arrival.priority,
            )
        except BrownoutShed:
            result.shed += 1
            name = PRIORITY_NAMES[arrival.priority]
            result.sheds_by_priority[name] = (
                result.sheds_by_priority.get(name, 0) + 1
            )
            result.client_events.append(
                _refusal(arrival, server.node_label)
            )
            continue
        except AdmissionRejected:
            result.rejected += 1
            result.client_events.append(
                _refusal(arrival, server.node_label)
            )
            continue
        # Latency is measured from the client's send time, not from
        # the instant the serial drive loop got around to admitting.
        request.enqueued_at_ns = arrival.at_ns
        result.admitted += 1
        response = server.serve_one()
        if response is None:
            continue
        if response.ok:
            result.served_ok += 1
        else:
            result.served_failed += 1
        if response.timed_out:
            # Timed-out requests never reach the serving timeline; the
            # client still waited from its own send time until now.
            at_ns = clock.now_ns
            latency_ns = clock.now_ns - arrival.at_ns
        else:
            # The server's _finish just appended the authoritative event
            # (timeline finish time + lane-modelled latency); mirror it.
            at_ns = server.events[-1].at_ns if server.events else clock.now_ns
            latency_ns = response.latency_ns
        result.client_events.append(RequestEvent(
            at_ns=at_ns,
            node=server.node_label,
            tenant=response.tenant_id,
            latency_ns=latency_ns,
            ok=response.ok,
        ))
    # Anything still queued (e.g. admitted behind a breaker shed) drains
    # at the end so the client always hears back.
    for response in server.drain():
        if response.ok:
            result.served_ok += 1
            at_ns = server.events[-1].at_ns if server.events else clock.now_ns
            result.client_events.append(RequestEvent(
                at_ns=at_ns, node=server.node_label,
                tenant=response.tenant_id,
                latency_ns=response.latency_ns, ok=True,
            ))
        else:
            result.served_failed += 1
            result.client_events.append(RequestEvent(
                at_ns=clock.now_ns, node=server.node_label,
                tenant=response.tenant_id,
                latency_ns=response.latency_ns, ok=False,
            ))
    return result


def run_open_loop_cluster(
    server,
    schedule: ArrivalSchedule,
    deadline_ns: Optional[int] = None,
) -> LoadgenResult:
    """Replay a schedule against a :class:`ClusterServer` open-loop.

    Arrivals route through the sticky front door one at a time in
    schedule order, each followed by one :meth:`ClusterServer.step`
    (at most one dispatch per living node, consulting the node-failure
    hook between dispatches — traffic and failures interleave).  As in
    :func:`run_open_loop`, queueing is modelled by each node's serving
    timeline, not by admission-queue depth.
    """
    from collections import deque

    from repro.serve.bench import standard_pipeline

    cluster = server.cluster
    pending = deque(schedule.arrivals)
    result = LoadgenResult(
        schedule_digest=schedule.digest(),
        offered=len(schedule.arrivals),
        admitted=0, rejected=0, shed=0, served_ok=0, served_failed=0,
    )
    sequence = 0

    def collect(responses) -> None:
        for response in responses:
            if response.ok:
                result.served_ok += 1
            else:
                result.served_failed += 1

    while pending:
        arrival = pending.popleft()
        for node in cluster.living():
            if node.kernel.clock.now_ns < arrival.at_ns:
                node.kernel.clock.advance(
                    arrival.at_ns - node.kernel.clock.now_ns
                )
        sequence += 1
        node_index = server.route(arrival.tenant)
        node = cluster.node(node_index)
        path = f"/data/{arrival.tenant}/in-{sequence}.png"
        out = f"/out/{arrival.tenant}/out-{sequence}.png"
        node.kernel.fs.write_file(path, _payload(arrival.image_size))
        try:
            request = server.submit(
                arrival.tenant,
                standard_pipeline(path, out),
                deadline_ns=(
                    arrival.at_ns + deadline_ns
                    if deadline_ns is not None else None
                ),
                priority=arrival.priority,
            )
        except BrownoutShed:
            result.shed += 1
            name = PRIORITY_NAMES[arrival.priority]
            result.sheds_by_priority[name] = (
                result.sheds_by_priority.get(name, 0) + 1
            )
            result.client_events.append(
                _refusal(arrival, f"node{node_index}")
            )
            continue
        except AdmissionRejected:
            result.rejected += 1
            result.client_events.append(
                _refusal(arrival, f"node{node_index}")
            )
            continue
        request.enqueued_at_ns = arrival.at_ns
        result.admitted += 1
        collect(server.step())
    collect(server.drain())
    # The client stream mirrors each node's authoritative event list
    # (timeline finish times and lane-modelled latencies).
    for node_server in server.servers.values():
        result.client_events.extend(node_server.events)
    return result
