"""Per-tenant isolation bookkeeping for the shared-agent serving layer.

Pooled agents hold objects minted for *many* tenants in one address
space, so the one-shot runtime's security argument — an ObjectRef only
dereferences in the process that minted it — is no longer enough: tenant
B could replay a ref that tenant A's request minted and read A's data
out of the shared agent.

The registry closes that hole.  Every ref a tenant's request produces is
recorded under that tenant's namespace; every ref a request *presents*
is checked against the namespace before it touches an agent.  A ref the
tenant does not own — another tenant's, a forged one, or one from a
pre-restart generation the registry has evicted — raises
:class:`TenantIsolationError` and the request is rejected, preserving
the paper's isolation guarantee under sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.rpc import ObjectRef, RemoteHandle
from repro.errors import TenantIsolationError
from repro.sim.process import SimProcess

#: The namespace key of a reference: which process+generation+buffer.
RefKey = Tuple[int, int, int]


def ref_key(ref: ObjectRef) -> RefKey:
    """The namespace key under which a ref is owned and checked."""
    return (ref.owner_pid, ref.owner_generation, ref.buffer_id)


@dataclass
class Tenant:
    """One tenant of the pipeline server."""

    tenant_id: str
    host: SimProcess
    requests_submitted: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    isolation_violations: int = 0
    #: Requests shed by an open circuit breaker (counted in
    #: requests_failed too; no agent ever saw them).
    requests_degraded: int = 0


@dataclass
class TenantRegistry:
    """Machine-wide map from minted ObjectRefs to their owning tenant."""

    _owners: Dict[RefKey, str] = field(default_factory=dict)
    minted: int = 0
    checks: int = 0
    violations: int = 0

    def mint(self, tenant_id: str, ref: ObjectRef) -> ObjectRef:
        """Record a freshly minted ref under the tenant's namespace."""
        self._owners[ref_key(ref)] = tenant_id
        self.minted += 1
        return ref

    def owner_of(self, ref: ObjectRef) -> Optional[str]:
        return self._owners.get(ref_key(ref))

    def check(self, tenant_id: str, ref: ObjectRef) -> None:
        """Raise unless ``tenant_id`` owns the ref.

        Unknown refs fail too: a forged or stale (pre-restart) reference
        must not fall through to the agent's own store, whose error would
        leak whether the buffer id was ever live.
        """
        self.checks += 1
        owner = self._owners.get(ref_key(ref))
        if owner != tenant_id:
            self.violations += 1
            if owner is None:
                raise TenantIsolationError(
                    f"tenant {tenant_id!r} presented an unknown ref "
                    f"(pid={ref.owner_pid}, gen={ref.owner_generation}, "
                    f"buf={ref.buffer_id}): forged or stale"
                )
            raise TenantIsolationError(
                f"tenant {tenant_id!r} presented a ref owned by tenant "
                f"{owner!r}: cross-tenant access denied"
            )

    def check_value(self, tenant_id: str, value: Any) -> None:
        """Recursively check every ref/handle inside an argument value."""
        if isinstance(value, RemoteHandle):
            self.check(tenant_id, value.ref)
        elif isinstance(value, ObjectRef):
            self.check(tenant_id, value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self.check_value(tenant_id, item)
        elif isinstance(value, dict):
            for item in value.values():
                self.check_value(tenant_id, item)

    def evict_generation(self, pid: int, generation: int) -> int:
        """Drop every ref minted by a (pid, generation) address space.

        Called when a pooled agent restarts: the old generation's buffers
        are gone, so the refs must stop resolving for *everyone* —
        including their owner, who sees the crash as data loss, exactly
        like the one-shot runtime's post-restart StaleObjectRef."""
        doomed = [
            key for key in self._owners
            if key[0] == pid and key[1] == generation
        ]
        for key in doomed:
            del self._owners[key]
        return len(doomed)

    def refs_of(self, tenant_id: str) -> int:
        return sum(1 for owner in self._owners.values() if owner == tenant_id)

    def stale_keys(self, processes) -> list:
        """Registered ref keys whose (pid, generation) no longer exists.

        After every restart's ``evict_generation`` this must be empty:
        a surviving stale key would let a tenant replay a reference into
        an address space rebuilt since — the chaos campaign's
        cross-tenant-survival invariant checks exactly this.
        """
        live = {
            (process.pid, process.generation) for process in processes
        }
        return sorted(
            key for key in self._owners if (key[0], key[1]) not in live
        )
