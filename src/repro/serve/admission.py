"""Admission control: a bounded request queue with per-tenant fair share.

Serving "heavy traffic" means refusing work you cannot finish.  The
controller enforces three policies, all deterministic against the
virtual clock:

* **bounded queue** — at most ``capacity`` requests pending machine-wide;
  overflow raises :class:`AdmissionRejected` (backpressure the client
  sees immediately, mirroring the ``ChannelFull`` semantics one layer
  down);
* **per-tenant budget** — no tenant may hold more than
  ``per_tenant_limit`` pending slots, so one chatty tenant cannot starve
  the queue;
* **fair-share dispatch** — requests are dequeued round-robin across
  tenants (each tenant's own requests stay FIFO), not globally FIFO, so
  the tail latency of a quiet tenant does not inherit a noisy
  neighbour's backlog.

Deadlines are virtual-clock absolute times; a request whose deadline
passed while it queued is *not* dispatched — it is returned as timed out,
charging the tenant nothing but the wait.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.errors import AdmissionRejected
from repro.sim.clock import VirtualClock


@dataclass
class AdmissionStats:
    admitted: int = 0
    rejected_capacity: int = 0
    rejected_tenant_budget: int = 0
    dispatched: int = 0
    timed_out: int = 0
    #: Requests pulled back out undispatched (node failure re-placement).
    evicted: int = 0
    #: Requests refused at the door by the brownout controller (they
    #: never held a queue slot; counted here because shedding is an
    #: admission decision).
    shed: int = 0


class AdmissionQueue:
    """Bounded, fair-share, deadline-aware request queue."""

    def __init__(
        self,
        clock: VirtualClock,
        capacity: int = 64,
        per_tenant_limit: Optional[int] = None,
        series=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self.per_tenant_limit = per_tenant_limit
        #: Optional :class:`~repro.obs.timeseries.TimeSeriesRegistry`;
        #: when set, every admission records the post-admit queue depth.
        self.series = series
        self.stats = AdmissionStats()
        # tenant id -> that tenant's FIFO; OrderedDict preserves the
        # round-robin rotation order deterministically.
        self._queues: "OrderedDict[str, Deque]" = OrderedDict()
        self._pending = 0

    # ------------------------------------------------------------------
    # Enqueue (admission)
    # ------------------------------------------------------------------

    def submit(self, request) -> None:
        """Admit a request or raise :class:`AdmissionRejected`."""
        if self._pending >= self.capacity:
            self.stats.rejected_capacity += 1
            raise AdmissionRejected(
                f"queue at capacity ({self.capacity} pending); "
                f"tenant {request.tenant_id!r} must back off"
            )
        tenant_queue = self._queues.get(request.tenant_id)
        if tenant_queue is None:
            tenant_queue = deque()
            self._queues[request.tenant_id] = tenant_queue
        if (
            self.per_tenant_limit is not None
            and len(tenant_queue) >= self.per_tenant_limit
        ):
            self.stats.rejected_tenant_budget += 1
            raise AdmissionRejected(
                f"tenant {request.tenant_id!r} exceeded its fair-share "
                f"budget ({self.per_tenant_limit} pending)"
            )
        request.enqueued_at_ns = self.clock.now_ns
        tenant_queue.append(request)
        self._pending += 1
        self.stats.admitted += 1
        if self.series is not None:
            self.series.observe(
                "admission.queue_depth",
                {"tenant": request.tenant_id},
                self._pending,
                t_ns=self.clock.now_ns,
            )

    # ------------------------------------------------------------------
    # Dequeue (fair-share dispatch)
    # ------------------------------------------------------------------

    def next_request(self):
        """Pop the next request, rotating fairly across tenants.

        Expired requests (virtual deadline already passed) are popped
        and returned with ``timed_out`` set; the caller reports them
        without executing.  Returns None when the queue is empty.
        """
        while self._queues:
            tenant_id, tenant_queue = next(iter(self._queues.items()))
            # Rotate: this tenant goes to the back whether or not its
            # request dispatches, giving every tenant a turn.
            self._queues.move_to_end(tenant_id)
            request = tenant_queue.popleft()
            if not tenant_queue:
                del self._queues[tenant_id]
            self._pending -= 1
            if (
                request.deadline_ns is not None
                and self.clock.now_ns > request.deadline_ns
            ):
                request.timed_out = True
                self.stats.timed_out += 1
                return request
            self.stats.dispatched += 1
            return request
        return None

    # ------------------------------------------------------------------
    # Eviction (node-failure re-placement)
    # ------------------------------------------------------------------

    def evict_pending(self) -> List:
        """Pull every undispatched request back out, fair-share order.

        Used when this queue's machine goes down: the pending requests
        were admitted but never ran, so the cluster re-places them on
        surviving nodes.  Deadlines and ``enqueued_at_ns`` are left
        untouched — the wait already happened; the new queue re-stamps
        on re-submit.
        """
        evicted: List = []
        while self._queues:
            tenant_id, tenant_queue = next(iter(self._queues.items()))
            self._queues.move_to_end(tenant_id)
            evicted.append(tenant_queue.popleft())
            if not tenant_queue:
                del self._queues[tenant_id]
            self._pending -= 1
            self.stats.evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        return self._pending

    def pending_for(self, tenant_id: str) -> int:
        queue = self._queues.get(tenant_id)
        return len(queue) if queue is not None else 0

    def tenants_waiting(self) -> List[str]:
        return list(self._queues)
