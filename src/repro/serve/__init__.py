"""``repro.serve`` — FreePart as a multi-tenant pipeline service.

The one-shot runtime (:mod:`repro.core.runtime`) spawns a fresh host and
agent set per run; this subsystem turns it into a serving layer that
amortizes those costs across many tenants and requests:

* :class:`~repro.serve.server.PipelineServer` — the service: shared
  per-API-type agent pools, bounded fair-share admission, batched RPC,
  per-tenant ObjectRef namespacing;
* :class:`~repro.serve.server.NaiveServer` — the one-runtime-per-request
  baseline the throughput benchmark compares against;
* :data:`~repro.serve.batching.PREV` — the pipeline-chaining sentinel
  ("the previous call's result") that batching resolves agent-locally;
* :mod:`~repro.serve.loadgen` — seeded open-loop traffic (diurnal /
  burst / flash profiles, Zipf tenant popularity, slow clients) and the
  drivers that replay it in virtual time;
* :mod:`~repro.serve.autoscale` — the SLO-burn-driven pool autoscaler
  and the brownout (priority-shedding) controller;
* :mod:`~repro.serve.loadbench` — the fixed-vs-elastic comparison the
  perf gate pins (``BENCH_loadgen.json``).
"""

from repro.core.gateway import ApiCall
from repro.serve.admission import AdmissionQueue
from repro.serve.autoscale import (
    AutoscaleConfig,
    BrownoutConfig,
    BrownoutController,
    BurnMonitor,
    PoolAutoscaler,
)
from repro.serve.batching import PREV, BatchGroup, BatchingStats, plan_batches
from repro.serve.gateway import ServeGateway
from repro.serve.loadgen import (
    PROFILE_NAMES,
    Arrival,
    ArrivalSchedule,
    LoadProfile,
    LoadgenResult,
    TenantPopulation,
    generate_schedule,
    merge_schedules,
    profile_by_name,
    run_open_loop,
    run_open_loop_cluster,
)
from repro.serve.metrics import RequestTiming, ServingTimeline
from repro.serve.pool import AgentPool, PoolMember, PoolSet
from repro.serve.server import (
    NaiveServer,
    PipelineServer,
    ServeRequest,
    ServeResponse,
    run_pipeline,
)
from repro.serve.tenancy import Tenant, TenantRegistry

__all__ = [
    "AdmissionQueue",
    "AgentPool",
    "ApiCall",
    "Arrival",
    "ArrivalSchedule",
    "AutoscaleConfig",
    "BatchGroup",
    "BatchingStats",
    "BrownoutConfig",
    "BrownoutController",
    "BurnMonitor",
    "LoadProfile",
    "LoadgenResult",
    "NaiveServer",
    "PREV",
    "PROFILE_NAMES",
    "PipelineServer",
    "PoolAutoscaler",
    "PoolMember",
    "PoolSet",
    "RequestTiming",
    "ServeGateway",
    "ServeRequest",
    "ServeResponse",
    "ServingTimeline",
    "Tenant",
    "TenantPopulation",
    "TenantRegistry",
    "generate_schedule",
    "merge_schedules",
    "plan_batches",
    "profile_by_name",
    "run_open_loop",
    "run_open_loop_cluster",
    "run_pipeline",
]
