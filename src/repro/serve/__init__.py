"""``repro.serve`` — FreePart as a multi-tenant pipeline service.

The one-shot runtime (:mod:`repro.core.runtime`) spawns a fresh host and
agent set per run; this subsystem turns it into a serving layer that
amortizes those costs across many tenants and requests:

* :class:`~repro.serve.server.PipelineServer` — the service: shared
  per-API-type agent pools, bounded fair-share admission, batched RPC,
  per-tenant ObjectRef namespacing;
* :class:`~repro.serve.server.NaiveServer` — the one-runtime-per-request
  baseline the throughput benchmark compares against;
* :data:`~repro.serve.batching.PREV` — the pipeline-chaining sentinel
  ("the previous call's result") that batching resolves agent-locally.
"""

from repro.core.gateway import ApiCall
from repro.serve.admission import AdmissionQueue
from repro.serve.batching import PREV, BatchGroup, BatchingStats, plan_batches
from repro.serve.gateway import ServeGateway
from repro.serve.metrics import RequestTiming, ServingTimeline
from repro.serve.pool import AgentPool, PoolMember, PoolSet
from repro.serve.server import (
    NaiveServer,
    PipelineServer,
    ServeRequest,
    ServeResponse,
    run_pipeline,
)
from repro.serve.tenancy import Tenant, TenantRegistry

__all__ = [
    "AdmissionQueue",
    "AgentPool",
    "ApiCall",
    "BatchGroup",
    "BatchingStats",
    "NaiveServer",
    "PREV",
    "PipelineServer",
    "PoolMember",
    "PoolSet",
    "RequestTiming",
    "ServeGateway",
    "ServeRequest",
    "ServeResponse",
    "ServingTimeline",
    "Tenant",
    "TenantRegistry",
    "plan_batches",
    "run_pipeline",
]
