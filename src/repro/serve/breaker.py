"""Per-partition circuit breakers for the serving layer.

A partition whose agents keep crashing (a poisoned input replayed at
every restart, an injected restart storm) would otherwise burn the whole
pool's restart budget while every affected request eats a full
crash-restart-retry cycle.  The breaker watches consecutive dispatch
failures per partition and, past a threshold, *opens*: requests needing
that partition are shed to degraded-but-correct responses without
touching an agent.  After a virtual-clock cooldown the breaker lets one
probe request through (half-open); success closes it, failure re-opens
it for another cooldown.

All timing is virtual-clock based, so breaker behavior is exactly as
deterministic as the rest of the simulation.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.sim.clock import VirtualClock

#: Consecutive failures that open a breaker.
DEFAULT_FAILURE_THRESHOLD = 3
#: Virtual time an open breaker waits before probing (20 ms).
DEFAULT_COOLDOWN_NS = 20_000_000
#: Cap on the exponential reopen backoff (x8 the base cooldown).
DEFAULT_BACKOFF_FACTOR = 8


class BreakerState(str, enum.Enum):
    """The classic three breaker states (closed = traffic flows)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker guarding one partition's dispatch path."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown_ns: int = DEFAULT_COOLDOWN_NS,
    ) -> None:
        self.name = name
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown_ns = cooldown_ns
        #: Reopen backoff ceiling; a probe-failure streak doubles the
        #: effective cooldown up to this.
        self.max_cooldown_ns = cooldown_ns * DEFAULT_BACKOFF_FACTOR
        #: The cooldown the *current* open period uses.  Starts at the
        #: base on a fresh open, doubles on every failed probe (a
        #: half-open reopen), and resets on the first success.
        self.current_cooldown_ns = cooldown_ns
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ns = 0
        self._probe_inflight = False
        # Counters for reports.
        self.opened_count = 0
        self.reopened_count = 0
        self.shed_requests = 0
        self.probes = 0

    def allow(self) -> bool:
        """Whether a request may dispatch at this partition right now.

        In the half-open state exactly one probe is allowed at a time;
        a granted probe must be settled by ``record_success`` /
        ``record_failure`` (or returned via ``release_probe`` if the
        request was shed by another breaker before dispatching).
        """
        if self.state is BreakerState.CLOSED:
            return True
        now = self.clock.now_ns
        if self.state is BreakerState.OPEN:
            if now - self.opened_at_ns < self.current_cooldown_ns:
                return False
            self.state = BreakerState.HALF_OPEN
            self._probe_inflight = False
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        self.probes += 1
        return True

    def release_probe(self) -> None:
        """Return an unused half-open probe slot."""
        self._probe_inflight = False

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self._probe_inflight = False
        self.current_cooldown_ns = self.cooldown_ns

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # A failed probe: the partition is still sick, so the next
            # open period waits exponentially longer before re-probing.
            self.reopened_count += 1
            self._open()
            self.current_cooldown_ns = min(
                self.current_cooldown_ns * 2, self.max_cooldown_ns
            )
        elif self.consecutive_failures >= self.failure_threshold:
            self.current_cooldown_ns = self.cooldown_ns
            self._open()

    def record_shed(self) -> None:
        self.shed_requests += 1

    def _open(self) -> None:
        self.state = BreakerState.OPEN
        self.opened_at_ns = self.clock.now_ns
        self.opened_count += 1
        self._probe_inflight = False

    def snapshot(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "opened_count": self.opened_count,
            "reopened_count": self.reopened_count,
            "shed_requests": self.shed_requests,
            "probes": self.probes,
            "cooldown_ns": self.current_cooldown_ns,
        }
