"""The open-loop load benchmark: fixed pool vs autoscaled + brownout.

The acceptance harness for traffic realism.  Every profile is replayed
twice against identical arrival schedules (and, when faulted, identical
fault plans):

* **fixed** — the static ``pool_size=2`` server every earlier PR built;
* **elastic** — the same server with the burn-rate autoscaler
  (``2 -> 8`` lanes under a spawn budget) and the brownout controller
  attached.

Two headline metrics gate the perf trajectory
(``BENCH_loadgen.json``):

``burst_goodput_retention``
    elastic goodput / fixed goodput on the burst profile with 1 %
    faults injected — how much of the offered storm the elastic server
    answers inside the latency budget, relative to the fixed pool.
    Must stay ≥ 1.5 (direction ``higher``).
``diurnal_clean_alerts`` / ``diurnal_clean_sheds``
    A clean diurnal day must fire **zero** burn-rate alerts and shed
    **zero** requests even with both controllers armed (direction
    ``lower``, baseline 0 — any creep trips the gate).

Calibration notes (why these numbers): mean virtual service is
~1.49 ms/request, so one lane sustains ~670 rps and the fixed 2-lane
pool ~1 345 rps.  The burst profile storms at ``8 x 300 = 2 400`` rps —
comfortably over the fixed pool, comfortably under the elastic
maximum's ~5 380 rps — and the diurnal peak (``1.4 x 300 = 420`` rps)
never threatens either.  The controller burns against a *tighter*
budget (:data:`CONTROL_BUDGET_NS`) than the one goodput is judged at
(:data:`BUDGET_NS`): scaling must begin while the backlog is still
recoverable, not once the SLO is already blown.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.serve.autoscale import AutoscaleConfig, control_slo
from repro.serve.loadgen import (
    ArrivalSchedule,
    LoadProfile,
    LoadgenResult,
    generate_schedule,
    profile_by_name,
    run_open_loop,
)

__all__ = [
    "BUDGET_NS",
    "CONTROL_BUDGET_NS",
    "canonical_profile",
    "canonical_schedule",
    "elastic_config",
    "run_profile",
    "run_cluster_profile",
    "run_loadgen_benchmark",
]

#: The latency budget goodput is judged at (client-perceived).
BUDGET_NS = 10_000_000
#: The tighter budget the control loop burns against.
CONTROL_BUDGET_NS = 4_000_000
#: Offered base rate; deliberately below one lane's ~670 rps capacity
#: so only profile peaks (storms, flash crowds) create backlog.
BASE_RPS = 300.0
DURATION_NS = 200_000_000
#: A flat-ish, wide tenant population: per-tenant arrival runs stay
#: short, so fair-share dispatch ~= arrival order and lane backlog —
#: the thing elasticity fixes — dominates latency.
TENANTS = 60
ZIPF_ALPHA = 0.5
FIXED_POOL = 2
MAX_POOL = 8
SEED = 42
FAULT_RATE = 0.01


def canonical_profile(name: str, **overrides: Any) -> LoadProfile:
    """The benchmark's pinned parameterization of a named profile."""
    params: Dict[str, Any] = dict(
        base_rps=BASE_RPS, duration_ns=DURATION_NS
    )
    if name == "burst":
        # One 50 ms storm window at 8x, mid-run: ~2 400 rps against the
        # fixed pool's ~1 345 rps.
        params.update(
            storm_every_ns=200_000_000,
            storm_ns=50_000_000,
            storm_offset_ns=50_000_000,
            storm_multiplier=8.0,
        )
    params.update(overrides)
    return profile_by_name(name, **params)


def canonical_schedule(name: str, seed: int = SEED) -> ArrivalSchedule:
    """The pinned arrival schedule for one named profile."""
    return generate_schedule(
        canonical_profile(name), seed=seed,
        tenants=TENANTS, zipf_alpha=ZIPF_ALPHA,
    )


def elastic_config(
    pool_size: int = FIXED_POOL, max_size: int = MAX_POOL
) -> AutoscaleConfig:
    """The benchmark's autoscaler policy (2 -> 8, fast up, slow down)."""
    return AutoscaleConfig(
        min_size=pool_size,
        max_size=max_size,
        scale_up_step=3,
        up_cooldown_ns=2_000_000,
    )


def _make_server(
    fault_rate: float,
    seed: int,
    elastic: bool,
    pool_size: int = FIXED_POOL,
    max_pool: int = MAX_POOL,
):
    from repro.core.runtime import FreePartConfig
    from repro.serve.server import PipelineServer
    from repro.sim.kernel import SimKernel

    kernel = SimKernel()
    if fault_rate > 0:
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan, FaultRates

        kernel.enable_tracing()
        kernel.inject_faults(
            FaultInjector(FaultPlan(seed, FaultRates.scaled(fault_rate)))
        )
    server = PipelineServer(
        kernel=kernel,
        config=FreePartConfig(
            rpc_retries=2, max_restarts_per_agent=8
        ) if fault_rate > 0 else FreePartConfig(),
        pool_size=pool_size,
        batching=True,
        queue_capacity=512,
        max_retries=2 if fault_rate > 0 else 1,
    )
    if elastic:
        # The autoscaler burns against the tight control budget (act
        # early); the brownout is the last-resort tier and only sheds
        # once the *judged* budget itself is burning.
        server.enable_autoscale(
            elastic_config(pool_size, max_pool),
            spec=control_slo(CONTROL_BUDGET_NS),
        )
        server.enable_brownout(spec=control_slo(BUDGET_NS))
    return server


def run_profile(
    name: str,
    seed: int = SEED,
    elastic: bool = False,
    fault_rate: float = 0.0,
    schedule: Optional[ArrivalSchedule] = None,
    pool_size: int = FIXED_POOL,
    max_pool: int = MAX_POOL,
) -> Dict[str, Any]:
    """One open-loop replay; returns the run's flattened facts."""
    from repro.obs.slo import evaluate_slos

    if schedule is None:
        schedule = canonical_schedule(name, seed=seed)
    server = _make_server(fault_rate, seed, elastic, pool_size, max_pool)
    result: LoadgenResult = run_open_loop(server, schedule)
    slo_results = evaluate_slos(server.events)
    alerts = sum(len(r.alerts) for r in slo_results)
    stats = server.stats()
    out: Dict[str, Any] = {
        "profile": name,
        "seed": seed,
        "elastic": elastic,
        "fault_rate": fault_rate,
        "schedule_digest": result.schedule_digest,
        "offered": result.offered,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "shed": result.shed,
        "served_ok": result.served_ok,
        "served_failed": result.served_failed,
        "goodput": round(result.goodput(BUDGET_NS), 9),
        "p99_latency_ms": round(result.p99_latency_ns() / 1e6, 4),
        "slo_alerts": alerts,
        "send_backoff_retries": stats["send_backoff_retries"],
        "pool_size": stats["pool_size"],
        "sheds_by_priority": dict(sorted(
            result.sheds_by_priority.items()
        )),
    }
    if elastic:
        out["scale_ups"] = server.autoscaler.scale_ups
        out["scale_downs"] = server.autoscaler.scale_downs
        out["burning_cells"] = server.autoscaler.monitor.burning_cells
        out["brownout_floor"] = server.brownout.floor
        out["scale_events"] = [
            event.to_dict() for event in server.autoscaler.events
        ]
    server.shutdown()
    return out


def run_cluster_profile(
    name: str,
    seed: int = SEED,
    nodes: int = 3,
    elastic: bool = True,
    fault_rate: float = 0.0,
    schedule: Optional[ArrivalSchedule] = None,
    pool_size: int = FIXED_POOL,
    max_pool: int = MAX_POOL,
) -> Dict[str, Any]:
    """One open-loop replay against a sharded multi-node cluster.

    Tenants hash across nodes (no manifest needed for synthetic
    traffic); each node runs its own autoscaler and brownout controller
    when ``elastic`` — elasticity is a per-node decision, exactly as a
    real per-machine agent pool would scale.
    """
    from repro.cluster.kernel import ClusterKernel
    from repro.cluster.serve import ClusterServer
    from repro.core.runtime import FreePartConfig
    from repro.obs.slo import evaluate_slos
    from repro.serve.loadgen import run_open_loop_cluster

    if schedule is None:
        schedule = canonical_schedule(name, seed=seed)
    cluster = ClusterKernel(nodes=nodes)
    if fault_rate > 0:
        from repro.faults.plan import FaultPlan, FaultRates

        cluster.enable_tracing()
        cluster.inject_faults(
            FaultPlan(seed, FaultRates.scaled(fault_rate))
        )
    server = ClusterServer(
        cluster=cluster,
        config=FreePartConfig(
            rpc_retries=2, max_restarts_per_agent=8
        ) if fault_rate > 0 else FreePartConfig(),
        pool_size=pool_size,
        batching=True,
        queue_capacity=512,
        max_retries=2 if fault_rate > 0 else 1,
    )
    if elastic:
        for node_server in server.servers.values():
            node_server.enable_autoscale(
                elastic_config(pool_size, max_pool),
                spec=control_slo(CONTROL_BUDGET_NS),
            )
            node_server.enable_brownout(spec=control_slo(BUDGET_NS))
    result: LoadgenResult = run_open_loop_cluster(server, schedule)
    events = sorted(
        event
        for node_server in server.servers.values()
        for event in node_server.events
    )
    alerts = sum(len(r.alerts) for r in evaluate_slos(events))
    out: Dict[str, Any] = {
        "profile": name,
        "seed": seed,
        "nodes": nodes,
        "elastic": elastic,
        "fault_rate": fault_rate,
        "schedule_digest": result.schedule_digest,
        "offered": result.offered,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "shed": result.shed,
        "served_ok": result.served_ok,
        "served_failed": result.served_failed,
        "goodput": round(result.goodput(BUDGET_NS), 9),
        "p99_latency_ms": round(result.p99_latency_ns() / 1e6, 4),
        "slo_alerts": alerts,
        "sheds_by_priority": dict(sorted(
            result.sheds_by_priority.items()
        )),
        "per_node": {
            f"node{index}": {
                "pool_size": node_server.stats()["pool_size"],
                "requests": len(node_server.events),
                "scale_ups": (
                    node_server.autoscaler.scale_ups
                    if node_server.autoscaler is not None else 0
                ),
                "shed": (
                    node_server.brownout.shed_requests
                    if node_server.brownout is not None else 0
                ),
            }
            for index, node_server in sorted(server.servers.items())
        },
    }
    if elastic:
        out["scale_ups"] = sum(
            node["scale_ups"] for node in out["per_node"].values()
        )
    server.shutdown()
    return out


def run_loadgen_benchmark(seed: int = SEED) -> Dict[str, Any]:
    """The full comparison: every profile, fixed vs elastic.

    Burst runs with :data:`FAULT_RATE` faults (the acceptance
    condition); diurnal runs clean (the zero-alert/zero-shed
    condition); flash runs clean as the onset-transient case.
    Everything is virtual-clock deterministic, so two invocations
    return byte-identical dictionaries.
    """
    burst_fixed = run_profile(
        "burst", seed=seed, elastic=False, fault_rate=FAULT_RATE
    )
    burst_elastic = run_profile(
        "burst", seed=seed, elastic=True, fault_rate=FAULT_RATE
    )
    diurnal_elastic = run_profile("diurnal", seed=seed, elastic=True)
    flash_fixed = run_profile("flash", seed=seed, elastic=False)
    flash_elastic = run_profile("flash", seed=seed, elastic=True)
    retention = (
        burst_elastic["goodput"] / burst_fixed["goodput"]
        if burst_fixed["goodput"] > 0 else float("inf")
    )
    flash_retention = (
        flash_elastic["goodput"] / flash_fixed["goodput"]
        if flash_fixed["goodput"] > 0 else float("inf")
    )
    return {
        "budget_ns": BUDGET_NS,
        "control_budget_ns": CONTROL_BUDGET_NS,
        "fault_rate": FAULT_RATE,
        "burst_goodput_retention": round(retention, 9),
        "flash_goodput_retention": round(flash_retention, 9),
        "runs": {
            "burst_fixed": burst_fixed,
            "burst_elastic": burst_elastic,
            "diurnal_elastic": diurnal_elastic,
            "flash_fixed": flash_fixed,
            "flash_elastic": flash_elastic,
        },
    }
