"""Experiment runner shared by the benchmark harness.

Everything the per-table benches need: run an application under one or
more techniques with a fixed workload, collect :class:`RunReport`
objects, and compute the normalized overheads of Fig. 13 — all on the
deterministic virtual clock, so a benchmark's *reported* numbers are
identical on every machine (pytest-benchmark additionally measures the
harness's real wall time for regression tracking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.apps.base import Application, Workload, execute_app
from repro.apps.suite import SAMPLE_IDS, make_app, used_api_objects
from repro.attacks.scenarios import build_gateway
from repro.core.runtime import FreePartConfig, RunReport
from repro.sim.kernel import SimKernel

#: The workload every overhead bench uses unless told otherwise.
DEFAULT_WORKLOAD = Workload(items=2, image_size=16)


def run_under(
    app: Application,
    technique: str,
    workload: Workload = DEFAULT_WORKLOAD,
    config: Optional[FreePartConfig] = None,
) -> RunReport:
    """One app, one technique, one fresh kernel."""
    kernel = SimKernel()
    gateway = build_gateway(technique, kernel, app=app, config=config)
    return execute_app(app, gateway, workload)


@dataclass
class OverheadRow:
    """One Fig. 13 data point."""

    sample_id: int
    app_name: str
    baseline_seconds: float
    protected_seconds: float

    @property
    def overhead_percent(self) -> float:
        if self.baseline_seconds == 0:
            return 0.0
        return (self.protected_seconds / self.baseline_seconds - 1.0) * 100.0

    @property
    def normalized_runtime(self) -> float:
        if self.baseline_seconds == 0:
            return 1.0
        return self.protected_seconds / self.baseline_seconds


def overhead_for_sample(
    sample_id: int,
    technique: str = "freepart",
    workload: Workload = DEFAULT_WORKLOAD,
    config: Optional[FreePartConfig] = None,
) -> OverheadRow:
    """Native vs protected runtime for one evaluation sample."""
    native = run_under(make_app(sample_id), "none", workload)
    protected = run_under(make_app(sample_id), technique, workload, config)
    if native.failed or protected.failed:
        raise RuntimeError(
            f"sample {sample_id} failed: {native.error or protected.error}"
        )
    return OverheadRow(
        sample_id=sample_id,
        app_name=native.app_name,
        baseline_seconds=native.virtual_seconds,
        protected_seconds=protected.virtual_seconds,
    )


def overhead_sweep(
    sample_ids: Sequence[int] = SAMPLE_IDS,
    technique: str = "freepart",
    workload: Workload = DEFAULT_WORKLOAD,
    config: Optional[FreePartConfig] = None,
) -> List[OverheadRow]:
    """Fig. 13: one row per evaluation application."""
    return [
        overhead_for_sample(sample_id, technique, workload, config)
        for sample_id in sample_ids
    ]


def average_overhead(rows: Sequence[OverheadRow]) -> float:
    """Mean overhead percent across a sweep's rows."""
    if not rows:
        return 0.0
    return sum(r.overhead_percent for r in rows) / len(rows)


def save_reports(reports: Sequence[RunReport], path: str) -> str:
    """Persist run reports as JSON (for external plotting/diffing)."""
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump([report.to_dict() for report in reports], handle, indent=2)
    return path


def save_overhead_rows(rows: Sequence[OverheadRow], path: str) -> str:
    """Persist a Fig. 13-style sweep as JSON."""
    import json

    payload = [
        {
            "sample_id": row.sample_id,
            "app_name": row.app_name,
            "baseline_seconds": row.baseline_seconds,
            "protected_seconds": row.protected_seconds,
            "overhead_percent": row.overhead_percent,
            "normalized_runtime": row.normalized_runtime,
        }
        for row in rows
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return path
