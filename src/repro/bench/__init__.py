"""Benchmark harness utilities (runner + table/series rendering)."""

from repro.bench.runner import (
    DEFAULT_WORKLOAD,
    OverheadRow,
    average_overhead,
    overhead_for_sample,
    overhead_sweep,
    run_under,
)
from repro.bench.tables import render_bars, render_series, render_table

__all__ = [
    "DEFAULT_WORKLOAD",
    "OverheadRow",
    "average_overhead",
    "overhead_for_sample",
    "overhead_sweep",
    "render_bars",
    "render_series",
    "render_table",
    "run_under",
]
