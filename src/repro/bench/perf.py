"""Deterministic perf trajectory: ``BENCH_*.json`` payloads + the gate.

Three benchmark payloads — ``table9`` (end-to-end overhead), ``serve``
(pooled serving throughput), ``ldc`` (lazy-data-copy ablation) — are
rendered from the virtual clock only, so re-running a payload on any
machine produces byte-identical JSON.  Committed baselines live at the
repo root (``BENCH_table9.json`` etc.); ``repro bench`` re-measures and
fails when a gated metric regresses by more than the tolerance.

Payload schema (``freepart-bench/v1``)::

    {
      "schema": "freepart-bench/v1",
      "bench": "table9",
      "metrics": {
        "<name>": {"value": <number>, "direction": "lower" | "higher"}
      },
      "details": { ... informational, never gated ... }
    }

``direction`` says which way is better; the gate fires when a metric
moves the *wrong* way by more than ``tolerance`` (relative).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

SCHEMA = "freepart-bench/v1"
BENCH_NAMES = (
    "table9", "serve", "ldc", "cluster", "staticcheck", "obs_report",
    "loadgen",
)
DEFAULT_TOLERANCE = 0.05

_DIRECTIONS = ("lower", "higher")


# ----------------------------------------------------------------------
# Payload builders (virtual-clock only — deterministic by construction)
# ----------------------------------------------------------------------

def _metric(value: float, direction: str) -> Dict[str, Any]:
    if direction not in _DIRECTIONS:
        raise ValueError(f"bad direction {direction!r}")
    return {"value": value, "direction": direction}


def _table9_run(technique: str):
    """The Table 9 workload: OMRChecker over paper-scale sheets."""
    import numpy as np

    from repro.apps.base import Workload, execute_app
    from repro.apps.suite import make_app
    from repro.attacks.scenarios import build_gateway
    from repro.sim.kernel import SimKernel

    workload = Workload(items=4, image_size=16)
    app = make_app(8)
    kernel = SimKernel()
    gateway = build_gateway(technique, kernel, app=app)
    app.setup(kernel, workload)
    rng = np.random.default_rng(9)
    for item in range(workload.items):
        sheet = np.zeros((128, 128, 3))
        for x, y, w, h in ((8, 8, 32, 32), (72, 8, 32, 32), (8, 72, 32, 32)):
            sheet[y:y + h, x:x + w] = 255.0
        sheet += rng.normal(scale=2.0, size=sheet.shape)
        kernel.fs.write_file(app.input_path(item), sheet)
    report = execute_app(app, gateway, workload, setup=False)
    if report.failed:
        raise RuntimeError(f"table9 {technique} run failed: {report.error}")
    return report


def bench_table9() -> Dict[str, Any]:
    """End-to-end FreePart overhead vs native (the Table 9 headline)."""
    native = _table9_run("none")
    freepart = _table9_run("freepart")
    ratio = freepart.virtual_seconds / native.virtual_seconds
    return {
        "schema": SCHEMA,
        "bench": "table9",
        "metrics": {
            "freepart_seconds": _metric(freepart.virtual_seconds, "lower"),
            "overhead_ratio": _metric(round(ratio, 9), "lower"),
            "ipc_messages": _metric(freepart.ipc_messages, "lower"),
            "data_mb": _metric(
                round(freepart.data_transferred_bytes / 1e6, 6), "lower"
            ),
        },
        "details": {
            "native_seconds": native.virtual_seconds,
            "zero_copy_transfers": freepart.zero_copy_transfers,
            "zero_copy_bytes": freepart.zero_copy_bytes,
            "cow_downgrades": freepart.cow_downgrades,
            "framed_messages": freepart.framed_messages,
            "lazy_copies": freepart.lazy_copies,
            "nonlazy_copies": freepart.nonlazy_copies,
        },
    }


def bench_serve() -> Dict[str, Any]:
    """Pooled + batched serving throughput vs the naive baseline."""
    from repro.serve.bench import best_pooled, run_serving_benchmark

    result = run_serving_benchmark(
        tenants=4,
        requests_per_tenant=2,
        pool_sizes=(2,),
        batching_modes=(True,),
    )
    champion = best_pooled(result)
    return {
        "schema": SCHEMA,
        "bench": "serve",
        "metrics": {
            "pooled_requests_per_second": _metric(
                champion["requests_per_second"], "higher"
            ),
            "speedup_vs_naive": _metric(
                champion["speedup_vs_naive"], "higher"
            ),
            "ipc_messages_saved": _metric(
                champion["ipc_messages_saved"], "higher"
            ),
            "fused_bytes_saved": _metric(
                champion["fused_bytes_saved"], "higher"
            ),
        },
        "details": {
            "naive_requests_per_second":
                result["configs"][0]["requests_per_second"],
            "workload": result["workload"],
            "champion": champion["name"],
        },
    }


def bench_ldc() -> Dict[str, Any]:
    """Overhead with LDC on vs the Section 5.2 no-LDC ablation."""
    from repro.apps.base import Workload
    from repro.bench.runner import average_overhead, overhead_sweep
    from repro.core.runtime import FreePartConfig

    workload = Workload(items=2, image_size=16)
    samples = (1, 8, 16, 20)
    with_ldc = average_overhead(overhead_sweep(samples, workload=workload))
    without_ldc = average_overhead(overhead_sweep(
        samples, workload=workload, config=FreePartConfig(ldc=False)
    ))
    return {
        "schema": SCHEMA,
        "bench": "ldc",
        "metrics": {
            "avg_overhead_with_ldc_pct": _metric(
                round(with_ldc, 9), "lower"
            ),
            "ldc_gain_ratio": _metric(
                round(without_ldc / with_ldc, 9), "higher"
            ),
        },
        "details": {
            "avg_overhead_without_ldc_pct": round(without_ldc, 9),
            "samples": list(samples),
        },
    }


def bench_cluster() -> Dict[str, Any]:
    """Multi-node scaling, failure goodput, and cross-node locality.

    ``cross_node_derefs`` gates at a 0 baseline with direction
    ``lower``: the affinity placement keeps every LDC dereference
    node-local, so *any* cross-node dereference creeping in trips the
    gate regardless of tolerance.
    """
    from repro.cluster.bench import run_cluster_benchmark

    result = run_cluster_benchmark(
        nodes=4,
        tenants=8,
        requests_per_tenant=2,
        pool_size=2,
        partitioner="directory",
        image_size=16,
        failure=True,
    )
    multi = result["configs"][1]
    chaos = result["configs"][2]
    return {
        "schema": SCHEMA,
        "bench": "cluster",
        "metrics": {
            "scaling_vs_single_node": _metric(result["scaling"], "higher"),
            "cluster_requests_per_second": _metric(
                multi["requests_per_second"], "higher"
            ),
            "single_node_failure_goodput": _metric(
                result["failure_goodput"], "higher"
            ),
            "cross_node_derefs": _metric(multi["cross_node_derefs"], "lower"),
        },
        "details": {
            "workload": result["workload"],
            "single_node_requests_per_second":
                result["configs"][0]["requests_per_second"],
            "failure_config": chaos["name"],
            "failure_resubmissions": chaos["resubmissions"],
            "failure_shards_replaced": chaos["shards_replaced"],
        },
    }


#: Embedded corpus for the staticcheck bench — inline so the payload is
#: byte-identical regardless of where the repo is checked out.
_FLOW_VIOLATIONS = (
    # cross-partition-leak: materialized copy laundered via a container.
    "def pipeline(gateway):\n"
    "    image = gateway.call('opencv', 'imread', '/d/in.png')\n"
    "    pixels = gateway.materialize(image)\n"
    "    batch = [pixels]\n"
    "    return gateway.call('opencv', 'Canny', batch[0])\n",
    # tenant-taint-escape: tenant payload parked in module state.
    "STATS = {}\n"
    "\n"
    "def handle_request(gateway, tenant_id, path):\n"
    "    image = gateway.call('opencv', 'imread', path)\n"
    "    pixels = gateway.materialize(image)\n"
    "    STATS[tenant_id] = pixels\n"
    "    return pixels\n",
    # frozen-alias-write: aliased write to a frozen tag.
    "from repro.sim.memory import MemoryLayout\n"
    "\n"
    "ANNOTATIONS = (MemoryLayout(name='s', tag='s', nbytes=64),)\n"
    "\n"
    "def pipeline(gateway):\n"
    "    gateway.host_alloc('s', [0.0])\n"
    "    image = gateway.call('opencv', 'imread', '/d/in.png')\n"
    "    tag = 's'\n"
    "    gateway.host_write(tag, [1.0])\n"
    "    return image\n",
)

_FLOW_CLEAN = (
    "def pipeline(gateway):\n"
    "    image = gateway.call('opencv', 'imread', '/d/in.png')\n"
    "    batch = [image]\n"
    "    return gateway.call('opencv', 'Canny', batch[0])\n",
    "def handle_request(gateway, tenant_id, path):\n"
    "    image = gateway.call('opencv', 'imread', path)\n"
    "    pixels = gateway.materialize(image)\n"
    "    local = {}\n"
    "    local[tenant_id] = pixels\n"
    "    return pixels\n",
)


def bench_staticcheck() -> Dict[str, Any]:
    """The flow pass as a trajectory: detection, precision, privilege
    reduction, and parity — all deterministic counts.

    ``dataflow_clean_findings`` and ``trace_parity_violations`` gate at
    0 with direction ``lower``: any false positive on the clean corpus
    or any runtime touch outside the static universe trips the gate
    regardless of tolerance.
    """
    from repro.apps.base import Workload, execute_app
    from repro.apps.drone import DroneApp
    from repro.attacks.scenarios import build_gateway
    from repro.core.runtime import FreePartConfig
    from repro.frameworks.syscall_pools import pool_for
    from repro.obs.export import to_chrome_trace
    from repro.sim.kernel import SimKernel
    from repro.staticcheck.checker import check_source
    from repro.staticcheck.parity import check_trace_parity, universe_from_app
    from repro.staticcheck.privileges import privileges_for_app

    violation_findings = 0
    for index, source in enumerate(_FLOW_VIOLATIONS):
        findings, _ = check_source(f"violation_{index}.py", source)
        violation_findings += len(findings)
    clean_findings = 0
    for index, source in enumerate(_FLOW_CLEAN):
        findings, _ = check_source(f"clean_{index}.py", source)
        clean_findings += len(findings)

    app = DroneApp()
    privileges = privileges_for_app(app)
    pool_total = 0
    minimal_total = 0
    for privilege in privileges.values():
        pool = pool_for(privilege.api_type)
        if pool is None:
            continue
        pool_total += len(pool)
        minimal_total += len(
            privilege.minimal_allowed() | privilege.minimal_init_only()
        )

    kernel = SimKernel()
    kernel.enable_tracing()
    config = FreePartConfig(trace=True, annotations=tuple(app.annotations))
    gateway = build_gateway("freepart", kernel, app=app, config=config)
    execute_app(app, gateway, Workload(items=2, image_size=16))
    payload = to_chrome_trace(kernel.tracer)
    parity = check_trace_parity(
        universe_from_app(app), payload, "bench-trace"
    )

    return {
        "schema": SCHEMA,
        "bench": "staticcheck",
        "metrics": {
            "dataflow_violation_findings": _metric(
                violation_findings, "higher"
            ),
            "dataflow_clean_findings": _metric(clean_findings, "lower"),
            "pool_reduction_syscalls": _metric(
                pool_total - minimal_total, "higher"
            ),
            "trace_parity_violations": _metric(len(parity), "lower"),
        },
        "details": {
            "violation_sources": len(_FLOW_VIOLATIONS),
            "clean_sources": len(_FLOW_CLEAN),
            "agents_inferred": sorted(privileges),
            "pool_syscalls_total": pool_total,
            "minimal_syscalls_total": minimal_total,
            "trace_events": len(payload["traceEvents"]),
        },
    }


def bench_obs_report() -> Dict[str, Any]:
    """The observability control plane as a trajectory.

    ``clean_alerts`` gates at a 0 baseline with direction ``lower``:
    a clean serving run must never trip a burn-rate alert, so *any*
    alert creeping in trips the gate regardless of tolerance.
    ``chaos_alerting_schedules`` gates with direction ``higher``: the
    fixed faulted sweep must keep tripping alerts — losing them means
    request failures stopped reaching the SLO engine.
    """
    import numpy as np

    from repro.core.runtime import FreePartConfig
    from repro.faults.campaign import ChaosSettings, run_target
    from repro.faults.plan import FaultPlan, FaultRates
    from repro.obs.report import build_report, render_report_json
    from repro.obs.slo import evaluate_slos
    from repro.serve.bench import standard_pipeline
    from repro.serve.server import PipelineServer
    from repro.sim.kernel import SimKernel

    # Clean traced serving run -> full report artifact.
    server = PipelineServer(
        kernel=SimKernel(),
        config=FreePartConfig(trace=True),
        pool_size=2,
        batching=True,
    )
    rng = np.random.default_rng(0)
    for tenant in range(2):
        for index in range(2):
            path = f"/data/tenant-{tenant}/in-{index}.png"
            server.kernel.fs.write_file(path, rng.normal(size=(16, 16)))
            server.submit(
                f"tenant-{tenant}",
                standard_pipeline(
                    path, f"/out/tenant-{tenant}/out-{index}.png"
                ),
            )
    server.drain()
    server.shutdown()
    kernel = server.kernel
    report = build_report(
        "serve-bench", "serve",
        nodes=[("node0", kernel.tracer, kernel.clock.now_ns)],
        events=server.events,
        series=kernel.series,
    )
    clean_alerts = report["slo"]["alert_count"]
    report_bytes = len(render_report_json(report).encode("utf-8"))

    # Fixed faulted sweep: some schedules must exhaust their retries
    # and trip burn-rate alerts.
    settings = ChaosSettings(
        target="serve-bench", seed=11, campaign=5, fault_rate=0.2
    )
    rates = FaultRates.scaled(settings.fault_rate)
    alerting_schedules = 0
    chaos_alerts = 0
    for index in range(settings.campaign):
        plan = FaultPlan(settings.schedule_seed(index), rates)
        outcome = run_target("serve-bench", settings, plan)
        results = evaluate_slos(outcome.request_events)
        fired = sum(len(result.alerts) for result in results)
        chaos_alerts += fired
        if fired:
            alerting_schedules += 1

    return {
        "schema": SCHEMA,
        "bench": "obs_report",
        "metrics": {
            "clean_alerts": _metric(clean_alerts, "lower"),
            "chaos_alerting_schedules": _metric(
                alerting_schedules, "higher"
            ),
            "series_points": _metric(kernel.series.points, "higher"),
            "report_bytes": _metric(report_bytes, "lower"),
        },
        "details": {
            "requests": report["slo"]["requests"],
            "all_met": report["slo"]["all_met"],
            "critical_path_ns": report["critical_path"]["total_ns"],
            "chaos_alerts": chaos_alerts,
            "chaos_seed": settings.seed,
            "chaos_campaign": settings.campaign,
            "chaos_fault_rate": settings.fault_rate,
        },
    }


def bench_loadgen() -> Dict[str, Any]:
    """Open-loop traffic realism: fixed pool vs autoscaled + brownout.

    ``burst_goodput_retention`` gates with direction ``higher``: under
    the burst profile with 1 % faults, the elastic server must keep
    answering at least 1.5x the fixed pool's goodput at the same p99
    budget.  ``diurnal_clean_alerts`` and ``diurnal_clean_sheds`` gate
    at 0 with direction ``lower``: a clean diurnal day with both
    controllers armed must fire no burn-rate alert and shed nobody —
    any creep trips the gate regardless of tolerance.
    """
    from repro.serve.loadbench import BUDGET_NS, run_loadgen_benchmark

    comparison = run_loadgen_benchmark()
    runs = comparison["runs"]
    diurnal = runs["diurnal_elastic"]
    return {
        "schema": SCHEMA,
        "bench": "loadgen",
        "metrics": {
            "burst_goodput_retention": _metric(
                comparison["burst_goodput_retention"], "higher"
            ),
            "flash_goodput_retention": _metric(
                comparison["flash_goodput_retention"], "higher"
            ),
            "burst_elastic_goodput": _metric(
                runs["burst_elastic"]["goodput"], "higher"
            ),
            "burst_elastic_p99_ms": _metric(
                runs["burst_elastic"]["p99_latency_ms"], "lower"
            ),
            "diurnal_clean_alerts": _metric(
                diurnal["slo_alerts"], "lower"
            ),
            "diurnal_clean_sheds": _metric(diurnal["shed"], "lower"),
        },
        "details": {
            "budget_ms": BUDGET_NS / 1e6,
            "fault_rate": comparison["fault_rate"],
            "burst_fixed_goodput": runs["burst_fixed"]["goodput"],
            "burst_fixed_p99_ms": runs["burst_fixed"]["p99_latency_ms"],
            "burst_scale_ups": runs["burst_elastic"]["scale_ups"],
            "burst_sheds": runs["burst_elastic"]["shed"],
            "burst_sheds_by_priority":
                runs["burst_elastic"]["sheds_by_priority"],
            "burst_final_pool": runs["burst_elastic"]["pool_size"],
            "diurnal_goodput": diurnal["goodput"],
            "diurnal_scale_ups": diurnal["scale_ups"],
            "flash_elastic_goodput": runs["flash_elastic"]["goodput"],
            "flash_scale_ups": runs["flash_elastic"]["scale_ups"],
            "schedule_digests": {
                name: run["schedule_digest"]
                for name, run in sorted(runs.items())
            },
        },
    }


_BUILDERS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "table9": bench_table9,
    "serve": bench_serve,
    "ldc": bench_ldc,
    "cluster": bench_cluster,
    "staticcheck": bench_staticcheck,
    "obs_report": bench_obs_report,
    "loadgen": bench_loadgen,
}


def build_payload(which: str) -> Dict[str, Any]:
    """Measure one bench and return its validated payload."""
    try:
        builder = _BUILDERS[which]
    except KeyError:
        raise ValueError(
            f"unknown bench {which!r} (expected one of {BENCH_NAMES})"
        ) from None
    payload = builder()
    errors = validate_payload(payload)
    if errors:
        raise RuntimeError(f"bench {which!r} produced a bad payload: {errors}")
    return payload


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------

def validate_payload(payload: Any) -> List[str]:
    """Structural check of one payload; returns problems (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(
            f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}"
        )
    if payload.get("bench") not in BENCH_NAMES:
        errors.append(f"bench is {payload.get('bench')!r}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        errors.append("metrics must be a non-empty object")
        return errors
    for name, entry in metrics.items():
        if not isinstance(entry, dict):
            errors.append(f"metric {name!r} is not an object")
            continue
        value = entry.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"metric {name!r} value is not a number")
        if entry.get("direction") not in _DIRECTIONS:
            errors.append(
                f"metric {name!r} direction must be one of {_DIRECTIONS}"
            )
    return errors


# ----------------------------------------------------------------------
# Serialization (byte-identical across re-runs)
# ----------------------------------------------------------------------

def render_payload(payload: Dict[str, Any]) -> str:
    """Canonical JSON text (sorted keys, trailing newline)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def payload_filename(which: str) -> str:
    """The committed-baseline filename for one bench."""
    return f"BENCH_{which}.json"


def write_payload(payload: Dict[str, Any], out_dir: str) -> str:
    """Write a payload under ``out_dir``; returns the file path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, payload_filename(payload["bench"]))
    with open(path, "w") as fh:
        fh.write(render_payload(payload))
    return path


def load_payload(path: str) -> Dict[str, Any]:
    """Load and validate a payload file (ValueError when malformed)."""
    with open(path) as fh:
        payload = json.load(fh)
    errors = validate_payload(payload)
    if errors:
        raise ValueError(f"{path}: {'; '.join(errors)}")
    return payload


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Regression:
    """One gated metric that moved the wrong way past tolerance."""

    bench: str
    metric: str
    baseline: float
    current: float
    direction: str

    @property
    def change_pct(self) -> float:
        if self.baseline == 0:
            return float("inf")
        return (self.current / self.baseline - 1.0) * 100.0

    def describe(self) -> str:
        arrow = "above" if self.direction == "lower" else "below"
        return (
            f"{self.bench}.{self.metric}: {self.current} is "
            f"{abs(self.change_pct):.2f}% {arrow} baseline {self.baseline} "
            f"(direction: {self.direction} is better)"
        )


def compare_payloads(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Regression]:
    """Gated metrics of ``current`` that regressed vs ``baseline``.

    The *baseline* defines the gate: every baseline metric must exist in
    the current payload (a vanished metric is a regression) and must not
    have moved the wrong way by more than ``tolerance`` relative.  New
    metrics in ``current`` are informational until they land in the
    committed baseline.
    """
    regressions: List[Regression] = []
    bench = baseline.get("bench", "?")
    for name, entry in baseline["metrics"].items():
        base_value = entry["value"]
        direction = entry["direction"]
        got = current["metrics"].get(name)
        if got is None:
            regressions.append(Regression(
                bench=bench, metric=name, baseline=base_value,
                current=float("nan"), direction=direction,
            ))
            continue
        value = got["value"]
        if direction == "lower":
            bad = value > base_value * (1.0 + tolerance)
        else:
            bad = value < base_value * (1.0 - tolerance)
        if bad:
            regressions.append(Regression(
                bench=bench, metric=name, baseline=base_value,
                current=value, direction=direction,
            ))
    return regressions


def run_gate(
    which: Tuple[str, ...],
    baseline_dir: Optional[str],
    out_dir: Optional[str] = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[Dict[str, Any]], List[Regression]]:
    """Measure the requested benches and gate them against baselines.

    Returns ``(payloads, regressions)``.  Baselines are looked up as
    ``<baseline_dir>/BENCH_<which>.json``; a missing or malformed
    baseline file raises (usage error), it does not silently pass.
    """
    payloads: List[Dict[str, Any]] = []
    regressions: List[Regression] = []
    for name in which:
        payload = build_payload(name)
        payloads.append(payload)
        if out_dir:
            write_payload(payload, out_dir)
        if baseline_dir is not None:
            baseline_path = os.path.join(
                baseline_dir, payload_filename(name)
            )
            baseline = load_payload(baseline_path)
            regressions.extend(
                compare_payloads(payload, baseline, tolerance)
            )
    return payloads, regressions
