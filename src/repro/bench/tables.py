"""Plain-text table/series rendering for the benchmark harness.

The benches print rows shaped like the paper's tables and figures;
these helpers keep the formatting uniform and dependency-free.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    note: str = "",
) -> str:
    """Monospace table with a title rule, like the paper's tables."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(row)
        ))
    if note:
        lines.append("")
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_series(
    title: str,
    xs: Sequence[Any],
    ys: Sequence[Any],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A figure rendered as an (x, y) series listing."""
    rows = list(zip(xs, ys))
    return render_table(title, [x_label, y_label], rows)


def render_bars(title: str, counts: Dict[str, int], width: int = 40) -> str:
    """A bar chart rendered with '#' glyphs (for the Fig. 7 bench)."""
    if not counts:
        return title
    peak = max(counts.values()) or 1
    lines = [title, "=" * len(title)]
    label_width = max(len(k) for k in counts)
    for label, value in counts.items():
        bar = "#" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(f"{label.ljust(label_width)}  {str(value).rjust(4)}  {bar}")
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
