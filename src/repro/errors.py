"""Exception hierarchy shared across the simulated substrate and runtime.

The exceptions mirror the failure modes of the native mechanisms FreePart
relies on: memory faults (``mprotect`` violations, wild writes), seccomp
kills, IPC failures, and agent-process crashes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the reproduction."""


class SimulationError(ReproError):
    """Base class for errors raised by the simulated OS substrate."""


class SegmentationFault(SimulationError):
    """A memory access violated the page permissions of an address space.

    Equivalent to SIGSEGV delivered by the MMU.  The faulting process is
    expected to be killed by the kernel unless the fault is handled.
    """

    def __init__(self, pid: int, address: int, access: str, reason: str = "") -> None:
        self.pid = pid
        self.address = address
        self.access = access
        self.reason = reason
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"segmentation fault: pid={pid} addr={address:#x} access={access}{detail}"
        )


class SyscallDenied(SimulationError):
    """A system call was rejected by the process's seccomp-like filter.

    Equivalent to ``SECCOMP_RET_KILL_PROCESS``: the kernel terminates the
    offending process.
    """

    def __init__(self, pid: int, syscall: str, reason: str = "not in allowlist") -> None:
        self.pid = pid
        self.syscall = syscall
        self.reason = reason
        super().__init__(f"syscall denied: pid={pid} syscall={syscall} ({reason})")


class FilterSealed(SimulationError):
    """An attempt was made to reconfigure a sealed syscall filter.

    Raised when NO_NEW_PRIVS semantics forbid loosening an installed
    filter (the paper's defence against attackers re-configuring seccomp).
    """


class UnknownSyscall(SimulationError):
    """A syscall name is not present in the simulated syscall table."""


class ProcessCrashed(SimulationError):
    """An operation targeted a process that is no longer running."""

    def __init__(self, pid: int, detail: str = "") -> None:
        self.pid = pid
        suffix = f": {detail}" if detail else ""
        super().__init__(f"process {pid} has crashed{suffix}")


class ProcessNotFound(SimulationError):
    """No process with the given pid exists in the kernel process table."""


class ChannelClosed(SimulationError):
    """A message was sent to or received from a closed IPC channel."""


class ChannelFull(SimulationError):
    """The ring buffer backing an IPC channel ran out of capacity.

    ``permanent`` distinguishes a message that exceeds the channel's total
    capacity (it can never be delivered; retrying would loop forever) from
    transient fullness that draining the queue resolves.
    """

    def __init__(self, message: str = "", permanent: bool = False) -> None:
        self.permanent = permanent
        super().__init__(message)


class AccountingError(SimulationError):
    """IPC/byte accounting failed to reconcile.

    Raised instead of a bare assert so the report names exactly which
    lane (messages, lazy, zero-copy, inter-node, ...) is off and by how
    much — a reconciliation failure is a bookkeeping bug in the
    substrate, and "some assert tripped" is useless for finding it.
    """

    def __init__(self, context: str, mismatches: "list") -> None:
        self.context = context
        self.mismatches = list(mismatches)
        lanes = "; ".join(
            f"lane {name!r} is off by {recorded - expected:+d} "
            f"(recorded {recorded}, expected {expected})"
            for name, recorded, expected in self.mismatches
        )
        super().__init__(f"{context} failed to reconcile: {lanes}")


class FileSystemError(SimulationError):
    """Base class for simulated filesystem failures."""


class FileNotFoundInSim(FileSystemError):
    """The simulated filesystem has no entry at the requested path."""


class DeviceError(SimulationError):
    """A simulated device (camera, network) operation failed."""


class GuiError(SimulationError):
    """A simulated GUI subsystem operation failed."""


class AnalysisError(ReproError):
    """Base class for offline analysis (static/dynamic/hybrid) failures."""


class UncategorizableAPI(AnalysisError):
    """The hybrid analysis could not assign an API to any of the four types."""


class RuntimeSupportError(ReproError):
    """Base class for online runtime-support failures."""


class AgentUnavailable(RuntimeSupportError):
    """An RPC targeted an agent process that crashed and was not restarted."""


class RpcError(RuntimeSupportError):
    """An RPC request failed to complete with exactly-once semantics."""


class FrameworkCrash(RuntimeSupportError):
    """A hooked framework API crashed its agent process.

    Raised to the host program in place of the process-wide crash the
    exploit would have caused without isolation; the host may catch it and
    continue (the drone case study) or let it propagate.
    """

    def __init__(self, qualname: str, cause: Exception) -> None:
        self.qualname = qualname
        self.cause = cause
        super().__init__(f"{qualname} crashed its agent process: {cause}")


class StaleObjectRef(RuntimeSupportError):
    """A lazy-data-copy reference points at a buffer that no longer exists.

    Happens when the owning agent crashed before the reference was
    dereferenced and state restoration was disabled (Section 6 of the
    paper: crashed-process state is intentionally not restored).
    """


class AnnotationError(RuntimeSupportError):
    """A user annotation of a protected data structure is invalid."""


class ServeError(RuntimeSupportError):
    """Base class for failures of the multi-tenant serving layer."""


class TenantIsolationError(ServeError):
    """A tenant presented an ObjectRef it does not own.

    The serving layer namespaces every reference minted for a tenant;
    replaying another tenant's (or a stale generation's) reference is
    treated as an attack on the sharing boundary, not a recoverable
    error — the request is rejected outright.
    """


class AdmissionRejected(ServeError):
    """The admission controller refused to enqueue a request.

    Raised when the bounded request queue is at capacity or the tenant
    exceeded its fair-share pending budget (backpressure to the client).
    """


class BrownoutShed(AdmissionRejected):
    """The brownout controller shed a low-priority request at admission.

    Between "healthy" and "circuit-open" the server runs a degraded tier:
    when the fast burn window trips, the lowest-priority tenant classes
    are refused at the door (cheapest possible rejection — no queue slot,
    no agent time) and re-admitted in priority order as burn subsides.
    """


class RequestTimeout(ServeError):
    """A queued request's virtual-clock deadline passed before dispatch."""


class CircuitOpen(ServeError):
    """A per-partition circuit breaker is open.

    After repeated crashes of the same partition's agents the serving
    layer stops dispatching work at it for a cooldown window and sheds
    affected requests to degraded-but-correct responses instead of
    burning restart budget on a crash loop.
    """


class ClusterError(ReproError):
    """Base class for multi-node cluster failures."""


class NodeDown(ClusterError):
    """An operation targeted a cluster node that has failed."""

    def __init__(self, node_index: int, detail: str = "") -> None:
        self.node_index = node_index
        suffix = f": {detail}" if detail else ""
        super().__init__(f"node {node_index} is down{suffix}")


class PlacementError(ClusterError):
    """A placement splits a partition-affinity group across nodes.

    The static plan says these partitions exchange object references;
    placing them on different nodes would turn every LDC dereference
    into a framed inter-node byte copy, which the policy forbids unless
    the caller explicitly opts in (``allow_split=True``).
    """


class AttackBlocked(ReproError):
    """An attack step was stopped by an isolation mechanism.

    Carried as an exception so that exploit code composed of several steps
    aborts at the first mitigated step, like a real payload would.
    """

    def __init__(self, mechanism: str, detail: str) -> None:
        self.mechanism = mechanism
        self.detail = detail
        super().__init__(f"attack blocked by {mechanism}: {detail}")
