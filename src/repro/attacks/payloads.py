"""Crafted inputs: how exploits travel into vulnerable APIs.

A :class:`CraftedInput` is the malicious image/model/record an attacker
submits (Fig. 1: the malicious student's OMR sheet).  It carries a benign
*cover* payload — so every non-vulnerable API processes it like a normal
input — plus the exploit that fires when a vulnerable API (matching the
``cve_id``) touches it.

The execution context's ``guard`` hook (``repro.frameworks.base``) is the
interception point: it fires the exploit *in the process the API runs
in* and hands the cover payload to the rest of the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.attacks.cves import get as get_cve
from repro.attacks.exploits import Exploit, ExploitOutcome
from repro.frameworks.base import ExecutionContext, Model
from repro.sim.memory import payload_nbytes


@dataclass
class CraftedInput:
    """A malicious input targeting one CVE."""

    cve_id: str
    exploit: Exploit
    cover: Any = None
    outcomes: list = field(default_factory=list)

    def trigger(self, ctx: ExecutionContext) -> ExploitOutcome:
        before = len(ctx.kernel.security_events)
        try:
            outcome = self.exploit.fire(ctx, self.cve_id)
        except BaseException:
            # The payload crashed its process; the recorded outcome (with
            # what blocked it) is still the verdict we report.
            self.outcomes.extend(ctx.kernel.security_events[before:])
            raise
        self.outcomes.extend(ctx.kernel.security_events[before:])
        if outcome not in self.outcomes:
            self.outcomes.append(outcome)
        return outcome

    @property
    def nbytes(self) -> int:
        return payload_nbytes(self.cover) + 64

    @property
    def fired(self) -> bool:
        return bool(self.outcomes)

    @property
    def last_outcome(self) -> Optional[ExploitOutcome]:
        return self.outcomes[-1] if self.outcomes else None


def benign_image(seed: int = 99, size: int = 24) -> np.ndarray:
    """A deterministic cover image."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(size, size, 3)).astype(np.float64)


def crafted_image(cve_id: str, exploit: Exploit, seed: int = 99,
                  size: int = 24) -> CraftedInput:
    """A malicious image file payload for an image-decoding CVE."""
    get_cve(cve_id)  # validate the id
    return CraftedInput(cve_id=cve_id, exploit=exploit,
                        cover=benign_image(seed=seed, size=size))


def crafted_model(cve_id: str, exploit: Exploit, seed: int = 77) -> CraftedInput:
    """A malicious serialized model (torch.load / load_model vector)."""
    get_cve(cve_id)
    rng = np.random.default_rng(seed)
    cover = Model({"layer": rng.normal(size=(4, 4))}, architecture="trojaned")
    return CraftedInput(cve_id=cve_id, exploit=exploit, cover=cover)


def crafted_tensor(cve_id: str, exploit: Exploit, seed: int = 66,
                   size: int = 8) -> CraftedInput:
    """A malicious in-memory tensor for data-processing CVEs."""
    get_cve(cve_id)
    rng = np.random.default_rng(seed)
    return CraftedInput(cve_id=cve_id, exploit=exploit,
                        cover=rng.normal(size=(size, size)))


def plant_malicious_file(kernel, path: str, crafted: CraftedInput) -> CraftedInput:
    """Write a crafted input into the simulated filesystem at ``path``."""
    kernel.fs.write_file(path, crafted)
    return crafted
