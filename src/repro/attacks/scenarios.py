"""Attack scenarios: delivering exploits against protected applications.

Implements the evaluation's attack harness (Section 5.3 and the
motivating example of Section 3): build an application, protect it with a
technique (FreePart, a baseline, or nothing), run it on a benign workload
to establish state, then deliver a crafted input through a vulnerable
framework API — either by planting a malicious file the app's own loader
reads, or by invoking the vulnerable API directly with the crafted input
(the threat model's "attacker invokes a framework API with a maliciously
crafted input").

The verdict compares *attacker goals* against observable state: did the
critical variable change, did the host program die, did data leave the
machine, was code rewritten.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.base import Application, ArgSpec, Workload, execute_app
from repro.apps.suite import make_app, used_api_objects
from repro.attacks.cves import CveRecord, VulnType, get as get_cve
from repro.attacks.exploits import (
    CodeRewriteExploit,
    DosExploit,
    ExfiltrationExploit,
    Exploit,
    ExploitOutcome,
    ForkBombExploit,
    MemoryCorruptionExploit,
)
from repro.attacks.payloads import CraftedInput, benign_image, crafted_image
from repro.baselines import TECHNIQUES
from repro.core.apitypes import APIType
from repro.core.gateway import ApiGateway, NativeGateway
from repro.core.runtime import FreePart, FreePartConfig
from repro.errors import FrameworkCrash, ProcessCrashed, ReproError
from repro.frameworks.registry import get_api
from repro.sim.kernel import SimKernel

ATTACKER_SERVER = "attacker.example"


def build_gateway(
    technique: str,
    kernel: SimKernel,
    app: Optional[Application] = None,
    config: Optional[FreePartConfig] = None,
    extra_apis: tuple = (),
) -> ApiGateway:
    """Instantiate one protection technique over a kernel.

    ``extra_apis`` extends the analyzed API set beyond what the app's own
    schedule uses — an attack scenario needs the CVE-carrying API hooked
    even when the host program never calls it itself (the threat model's
    attacker-invoked API).
    """
    if technique == "freepart":
        if config is None:
            annotations = tuple(app.annotations) if app is not None else ()
            config = FreePartConfig(annotations=annotations)
        freepart = FreePart(kernel=kernel, config=config)
        used = used_api_objects(app) if app is not None else None
        if used is not None and extra_apis:
            present = {api.spec.qualname for api in used}
            used = list(used) + [
                api for api in extra_apis if api.spec.qualname not in present
            ]
        return freepart.deploy(used_apis=used)
    try:
        factory = TECHNIQUES[technique]
    except KeyError:
        raise ReproError(f"unknown technique {technique!r}") from None
    return factory(kernel)


@dataclass
class AttackResult:
    """Verdict of one delivered attack."""

    cve_id: str
    technique: str
    app_name: str
    vuln_type: VulnType
    delivered: bool
    outcomes: List[ExploitOutcome] = field(default_factory=list)
    data_corrupted: bool = False
    data_exfiltrated: bool = False
    host_crashed: bool = False
    code_rewritten: bool = False
    agent_crashes: int = 0
    blocked_by: Tuple[str, ...] = ()

    @property
    def prevented(self) -> bool:
        """Did the protection stop the attacker's goal?"""
        if not self.delivered:
            return False  # the experiment never armed; don't claim credit
        goals = {
            VulnType.MEM_WRITE: self.data_corrupted,
            VulnType.DOS: self.host_crashed,
            VulnType.RCE: self.code_rewritten,
            VulnType.INFO_LEAK: self.data_exfiltrated,
        }
        return not goals[self.vuln_type]


def exploit_for(record: CveRecord, target_tag: str = "template.QBlocks.orig") -> Exploit:
    """The payload effect matching a CVE's vulnerability class."""
    if record.vuln_type is VulnType.MEM_WRITE:
        return MemoryCorruptionExploit(target_tag, new_value="corrupted")
    if record.vuln_type is VulnType.DOS:
        return DosExploit()
    if record.vuln_type is VulnType.RCE:
        return CodeRewriteExploit()
    if record.vuln_type is VulnType.INFO_LEAK:
        return ExfiltrationExploit(target_tag, destination=ATTACKER_SERVER)
    raise ReproError(f"no exploit template for {record.vuln_type}")


def _direct_call_args(
    gateway: ApiGateway, record: CveRecord, crafted: CraftedInput, app: Application
) -> tuple:
    """Arguments for invoking the vulnerable API directly."""
    name = record.api_name
    if name in ("imread", "Image_open", "cvLoad", "imreadmulti"):
        path = f"/attack/{record.cve_id}.png"
        gateway.kernel.fs.write_file(path, crafted)
        return (path,)
    if name == "imshow":
        return (f"{app.spec.name}-window", crafted)
    if name == "CascadeClassifier_detectMultiScale":
        classifier = gateway.call("opencv", "CascadeClassifier")
        return (classifier, crafted)
    return (crafted,)


def run_attack(
    cve_id: str,
    technique: str = "freepart",
    sample_id: Optional[int] = None,
    workload: Optional[Workload] = None,
    config: Optional[FreePartConfig] = None,
    target_tag: str = "template.QBlocks.orig",
    app: Optional[Application] = None,
    kernel: Optional[SimKernel] = None,
) -> AttackResult:
    """Deliver one CVE's exploit against one protected application.

    ``kernel`` lets callers supply a pre-built machine (the trace CLI
    passes one so the attack's span tracer outlives the run); by default
    each attack gets a fresh kernel.
    """
    record = get_cve(cve_id)
    if sample_id is None:
        sample_id = record.samples[0] if record.samples else 8
    workload = workload if workload is not None else Workload(items=2, image_size=16)

    if app is None:
        app = make_app(sample_id)
    if kernel is None:
        kernel = SimKernel()
    gateway = build_gateway(
        technique, kernel, app=app, config=config,
        extra_apis=(get_api(record.framework, record.api_name),),
    )
    app.setup(kernel, workload)

    # Phase 1: benign run to establish program state and critical data.
    warmup = execute_app(app, gateway, workload, setup=False)

    # Record the value the attacker wants to change / steal.  When the
    # named variable does not exist in this program, fall back to the
    # app's generic host-resident configuration (every pipeline app
    # defines one) so memory-write/leak attacks always have a live
    # target.
    original: Any = None
    have_target = True
    try:
        original = gateway.host_read(target_tag)
    except KeyError:
        fallback = getattr(type(app), "CONFIG_TAG", "app.config")
        try:
            original = gateway.host_read(fallback)
            target_tag = fallback
        except KeyError:
            have_target = False

    exploit = exploit_for(record, target_tag=target_tag)
    crafted = CraftedInput(cve_id=cve_id, exploit=exploit, cover=benign_image())

    # Phase 2: deliver the crafted input through the vulnerable API.
    delivered_error: Optional[str] = None
    args = _direct_call_args(gateway, record, crafted, app)
    try:
        gateway.call(record.framework, record.api_name, *args)
    except (FrameworkCrash, ProcessCrashed) as exc:
        delivered_error = str(exc)

    result = AttackResult(
        cve_id=cve_id,
        technique=technique,
        app_name=app.spec.name,
        vuln_type=record.vuln_type,
        delivered=crafted.fired,
        outcomes=list(crafted.outcomes),
    )
    result.blocked_by = tuple(
        o.blocked_by for o in crafted.outcomes if o.blocked_by
    )
    result.host_crashed = not gateway.host.alive
    result.agent_crashes = getattr(gateway, "total_crashes", lambda: 0)()
    if isinstance(gateway, NativeGateway):
        result.agent_crashes = 0

    if have_target:
        try:
            current = gateway.host_read(target_tag)
            result.data_corrupted = _differs(original, current)
        except Exception:
            # Unreadable target (its process crashed): not corrupted.
            result.data_corrupted = False
    else:
        # Fall back to the exploit's own report.
        result.data_corrupted = any(
            o.succeeded and o.kind == "memory_corruption"
            for o in crafted.outcomes
        )
    result.data_exfiltrated = bool(
        kernel.devices.network.outbound_to(ATTACKER_SERVER)
    )
    result.code_rewritten = any(
        getattr(p, "code_compromised", False) for p in kernel.processes()
    )
    del warmup, delivered_error
    return result


def _differs(original: Any, current: Any) -> bool:
    import numpy as np

    if isinstance(original, np.ndarray) or isinstance(current, np.ndarray):
        try:
            return not np.array_equal(np.asarray(original), np.asarray(current))
        except Exception:
            return True
    return original != current


def run_table5_attacks(
    technique: str = "freepart",
    workload: Optional[Workload] = None,
) -> List[AttackResult]:
    """Every Table 5 CVE against its first affected sample."""
    from repro.attacks.cves import TABLE5_CVES

    return [
        run_attack(record.cve_id, technique=technique, workload=workload)
        for record in TABLE5_CVES
    ]


# ----------------------------------------------------------------------
# The motivating example (Section 3 / Table 1)
# ----------------------------------------------------------------------

#: The four attacks of Fig. 1 / Table 8, as (label, builder) pairs.
MOTIVATING_ATTACKS = (
    ("mem-write-template", "CVE-2017-12597", VulnType.MEM_WRITE,
     "template.QBlocks.orig"),
    ("mem-write-omrcrop", "CVE-2017-12604", VulnType.MEM_WRITE, "OMRCrop"),
    ("code-rewrite", "CVE-2017-17760", VulnType.RCE, "template.QBlocks.orig"),
    ("dos-imread", "CVE-2017-14136", VulnType.DOS, "template.QBlocks.orig"),
    ("dos-imshow", "VULN-IMSHOW-DOS", VulnType.DOS, "template.QBlocks.orig"),
)


@dataclass
class MotivatingVerdict:
    """Per-technique outcome on the motivating example (a Table 1 row)."""

    technique: str
    attacks: Dict[str, AttackResult] = field(default_factory=dict)

    def prevented(self, label: str) -> bool:
        return self.attacks[label].prevented

    @property
    def memory_attack_prevented(self) -> bool:
        return self.prevented("mem-write-template")

    @property
    def omrcrop_attack_prevented(self) -> bool:
        return self.prevented("mem-write-omrcrop")

    @property
    def code_attack_prevented(self) -> bool:
        return self.prevented("code-rewrite")

    @property
    def dos_attacks_prevented(self) -> bool:
        return self.prevented("dos-imread") and self.prevented("dos-imshow")


def run_motivating_example(technique: str) -> MotivatingVerdict:
    """Run all five motivating-example attacks under one technique."""
    verdict = MotivatingVerdict(technique=technique)
    for label, cve_id, _vuln, target in MOTIVATING_ATTACKS:
        verdict.attacks[label] = run_attack(
            cve_id, technique=technique, sample_id=8, target_tag=target,
        )
    return verdict
