"""The CVE registry used by the evaluation (Table 5 + case studies).

Each record binds a real CVE id to the mini-framework API that carries it
in this reproduction, the vulnerability class, the API type the
vulnerable function belongs to (hence which agent process confines it),
and the evaluation sample ids (Table 6 numbering) affected by it.

The registry is pure data: the frameworks package applies it to the API
specs at import time (``repro.frameworks.registry``), and the attack
scenarios construct exploits from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.apitypes import APIType


class VulnType(enum.Enum):
    """Vulnerability classes of Table 5 (+ info leak from Section 5.4.2)."""

    MEM_WRITE = "unauthorized_memory_write"
    RCE = "remote_code_execution"
    DOS = "denial_of_service"
    INFO_LEAK = "unauthorized_memory_read"


@dataclass(frozen=True)
class CveRecord:
    """One vulnerability used in the evaluation."""

    cve_id: str
    framework: str
    api_name: str
    vuln_type: VulnType
    api_type: APIType
    samples: Tuple[int, ...] = ()
    year: int = 0
    note: str = ""


# Table 5, row by row.  API assignments follow the historical record where
# the paper names the function (imread for the 2017 OpenCV image-decoder
# CVEs, imshow for the motivating example's DoS) and otherwise pick a
# data-processing API that every affected sample exercises.
TABLE5_CVES: Tuple[CveRecord, ...] = (
    # Unauthorized memory write (data loading).
    CveRecord("CVE-2017-12604", "opencv", "imread", VulnType.MEM_WRITE,
              APIType.LOADING, samples=(1, 9, 10, 12), year=2017),
    CveRecord("CVE-2017-12605", "opencv", "imread", VulnType.MEM_WRITE,
              APIType.LOADING, samples=(1, 9, 10, 12), year=2017),
    CveRecord("CVE-2017-12606", "opencv", "imread", VulnType.MEM_WRITE,
              APIType.LOADING, samples=(1, 9, 10, 12), year=2017,
              note="also used for the drone configuration-corruption case"),
    CveRecord("CVE-2017-12597", "opencv", "imread", VulnType.MEM_WRITE,
              APIType.LOADING, samples=(1, 9, 10, 12), year=2017,
              note="the motivating example's out-of-bounds write"),
    # Remote code execution.
    CveRecord("CVE-2017-17760", "opencv", "imread", VulnType.RCE,
              APIType.LOADING, samples=(1, 7, 10, 12), year=2017),
    CveRecord("CVE-2019-5063", "opencv", "CascadeClassifier_detectMultiScale",
              VulnType.RCE, APIType.PROCESSING, samples=(1, 9, 10), year=2019),
    CveRecord("CVE-2019-5064", "opencv", "resize", VulnType.RCE,
              APIType.PROCESSING, samples=(1, 9, 10), year=2019),
    # Denial of service.
    CveRecord("CVE-2017-14136", "opencv", "imread", VulnType.DOS,
              APIType.LOADING, samples=(1, 7, 9, 10, 12), year=2017,
              note="also used for the drone DoS case study"),
    CveRecord("CVE-2018-5269", "opencv", "imread", VulnType.DOS,
              APIType.LOADING, samples=(1, 7, 9, 10, 12), year=2018),
    CveRecord("CVE-2019-14491", "opencv", "CascadeClassifier_detectMultiScale",
              VulnType.DOS, APIType.PROCESSING, samples=(1, 9, 10), year=2019,
              note="also used for the drone DoS case study"),
    CveRecord("CVE-2019-14492", "opencv", "GaussianBlur", VulnType.DOS,
              APIType.PROCESSING, samples=(1, 9, 10), year=2019),
    CveRecord("CVE-2019-14493", "opencv", "erode", VulnType.DOS,
              APIType.PROCESSING, samples=(1, 9, 10), year=2019),
    CveRecord("CVE-2021-29513", "tensorflow", "convert_to_tensor", VulnType.DOS,
              APIType.PROCESSING, samples=(21, 23), year=2021),
    CveRecord("CVE-2021-29618", "tensorflow", "transpose", VulnType.DOS,
              APIType.PROCESSING, samples=(23,), year=2021),
    CveRecord("CVE-2021-37661", "tensorflow", "cast", VulnType.DOS,
              APIType.PROCESSING, samples=(21, 22, 23), year=2021),
    CveRecord("CVE-2021-41198", "tensorflow", "tile", VulnType.DOS,
              APIType.PROCESSING, samples=(20, 22), year=2021),
)

# Case-study vulnerabilities (Sections 3, 5.4.2, A.7).
CASE_STUDY_CVES: Tuple[CveRecord, ...] = (
    CveRecord("CVE-2020-10378", "pillow", "Image_open", VulnType.INFO_LEAK,
              APIType.LOADING, samples=(), year=2020,
              note="MComix3 recent-file-names information leak"),
    CveRecord("VULN-IMSHOW-DOS", "opencv", "imshow", VulnType.DOS,
              APIType.VISUALIZING, samples=(8,), year=2017,
              note="the motivating example's imshow() crash (Fig. 1)"),
    CveRecord("STEGONET-TROJAN", "pytorch", "load", VulnType.RCE,
              APIType.LOADING, samples=(), year=2020,
              note="StegoNet: payload smuggled in model parameters (A.7); "
                   "detonates when the model is deserialized"),
)

ALL_CVES: Tuple[CveRecord, ...] = TABLE5_CVES + CASE_STUDY_CVES

CVE_INDEX: Dict[str, CveRecord] = {record.cve_id: record for record in ALL_CVES}


def get(cve_id: str) -> CveRecord:
    """Look up a CVE record by id (KeyError if unknown)."""
    try:
        return CVE_INDEX[cve_id]
    except KeyError:
        raise KeyError(f"unknown CVE {cve_id!r}") from None


def cves_for_sample(sample_id: int) -> List[CveRecord]:
    """All CVEs whose vulnerable API is used by evaluation sample ``n``."""
    return [record for record in ALL_CVES if sample_id in record.samples]


def cves_for_api(framework: str, api_name: str) -> List[CveRecord]:
    """All CVEs carried by one framework API."""
    return [
        record
        for record in ALL_CVES
        if record.framework == framework and record.api_name == api_name
    ]


def by_vuln_type(vuln_type: VulnType) -> List[CveRecord]:
    """All CVEs of one vulnerability class."""
    return [record for record in ALL_CVES if record.vuln_type is vuln_type]
