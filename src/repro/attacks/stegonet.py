"""The StegoNet trojan-model case study (Appendix A.7).

StegoNet hides a malicious payload in DNN model parameters; the payload
(the paper uses a fork bomb) executes when the model is loaded/used.
Since no data-processing API in any supported framework requires
``fork``, FreePart's per-agent syscall restriction kills the payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.base import Application, Workload, execute_app
from repro.attacks.exploits import ExploitOutcome, ForkBombExploit
from repro.attacks.payloads import CraftedInput
from repro.attacks.scenarios import build_gateway
from repro.core.runtime import FreePartConfig
from repro.frameworks.base import Model
from repro.sim.kernel import SimKernel

#: Synthetic identifier for the trojan (StegoNet is a technique, not a CVE).
STEGONET_ID = "STEGONET-TROJAN"


def trojaned_model(seed: int = 2020) -> Model:
    """A model whose weights smuggle a fork-bomb payload."""
    rng = np.random.default_rng(seed)
    trojan = CraftedInput(
        cve_id=STEGONET_ID, exploit=ForkBombExploit(),
        cover=rng.normal(size=(2, 2)),
    )
    return Model(
        {"encoder": rng.normal(size=(4, 4))},
        architecture="stegonet-cnn",
        trojan=trojan,
    )


@dataclass
class StegonetResult:
    """Outcome of loading + using a trojaned model under a technique."""

    technique: str
    app_name: str
    trojan_fired: bool
    fork_bomb_detonated: bool
    record_intact: bool
    outcomes: List[ExploitOutcome]

    @property
    def prevented(self) -> bool:
        return self.trojan_fired and not self.fork_bomb_detonated


def run_stegonet_attack(
    app: Application,
    technique: str = "freepart",
    workload: Optional[Workload] = None,
    config: Optional[FreePartConfig] = None,
) -> StegonetResult:
    """Plant a trojaned model, run the app, and see what detonates.

    The trojan fires inside whatever process executes the model-loading
    API (``torch.load``): the host program without isolation, the
    loading agent under FreePart.
    """
    workload = workload if workload is not None else Workload(items=2, image_size=16)
    kernel = SimKernel()
    gateway = build_gateway(technique, kernel, app=app, config=config)
    app.setup(kernel, workload)

    model = trojaned_model()
    model_path = getattr(app, "model_path", "/models/trojaned.pt")
    # torch.load scans the deserialized payload; expose the trojan as the
    # crafted object the loader's guard sees.
    kernel.fs.write_file(model_path, model.trojan)

    report = execute_app(app, gateway, workload, setup=False)
    trojan = model.trojan
    record_intact = True
    record_tag = getattr(app, "record_tag", None)
    expected_record = getattr(app, "record_value", None)
    if record_tag and expected_record is not None and report.result is not None:
        record = report.result.outputs.get("record")
        record_intact = record == expected_record
    return StegonetResult(
        technique=technique,
        app_name=app.spec.name,
        trojan_fired=trojan.fired,
        fork_bomb_detonated=bool(getattr(kernel, "fork_bomb_detonated", False)),
        record_intact=record_intact,
        outcomes=list(trojan.outcomes),
    )
