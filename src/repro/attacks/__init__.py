"""Attack layer: CVE registry, exploits, crafted inputs, scenarios."""

from repro.attacks.cves import ALL_CVES, CVE_INDEX, CveRecord, TABLE5_CVES, VulnType
from repro.attacks.exploits import (
    CodeRewriteExploit,
    DosExploit,
    ExfiltrationExploit,
    Exploit,
    ExploitOutcome,
    ForkBombExploit,
    MemoryCorruptionExploit,
)
from repro.attacks.payloads import CraftedInput, benign_image, crafted_image

__all__ = [
    "ALL_CVES",
    "CVE_INDEX",
    "CodeRewriteExploit",
    "CraftedInput",
    "CveRecord",
    "DosExploit",
    "ExfiltrationExploit",
    "Exploit",
    "ExploitOutcome",
    "ForkBombExploit",
    "MemoryCorruptionExploit",
    "TABLE5_CVES",
    "VulnType",
    "benign_image",
    "crafted_image",
]
