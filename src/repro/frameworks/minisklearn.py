"""minisklearn — the Scikit-learn analogue.

The paper's introduction lists Scikit-learn among the frameworks
data-processing applications depend on; this module gives the
reproduction a classical-ML surface: dataset loaders, estimators
(fit/predict/transform), preprocessing, clustering, metrics, and joblib
persistence.  All processing APIs are pure memory-to-memory; the loaders
and ``joblib`` functions carry the file flows.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.apitypes import APIType
from repro.core.dataflow import Storage, load_flow, process_flow, store_flow
from repro.frameworks.base import (
    APISpec,
    ExecutionContext,
    Framework,
    Model,
    StatefulKind,
    Tensor,
)

SKLEARN = Framework("sklearn", version="0.24")

_FILE_LOAD_SYSCALLS = ("openat", "fstat", "read", "close", "brk", "lseek")
_STORE_SYSCALLS = ("openat", "write", "close", "brk")
_PROC_SYSCALLS = ("brk",)

_SAMPLE_DATASET_PATH = "/testdata/sklearn/iris.csv"
_SAMPLE_MODEL_PATH = "/testdata/sklearn/model.joblib"


def sample_matrix(seed: int = 29, rows: int = 12, cols: int = 4) -> Tensor:
    """A deterministic feature matrix."""
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=(rows, cols)))


def _ensure_sample_files(ctx: ExecutionContext) -> None:
    fs = ctx.kernel.fs
    if not fs.exists(_SAMPLE_DATASET_PATH):
        rng = np.random.default_rng(30)
        fs.write_file(_SAMPLE_DATASET_PATH, rng.normal(size=(12, 4)))
    if not fs.exists(_SAMPLE_MODEL_PATH):
        rng = np.random.default_rng(31)
        fs.write_file(
            _SAMPLE_MODEL_PATH,
            Model({"coef": rng.normal(size=(4,))}, architecture="logreg"),
        )


def _matrix_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((sample_matrix(),), {})


def _register(
    name: str,
    impl,
    api_type: APIType,
    flows: tuple,
    syscalls: tuple,
    qualname: Optional[str] = None,
    stateful: StatefulKind = StatefulKind.STATELESS,
    base_cost_ns: int = 30_000,
    example=None,
    doc: str = "",
) -> None:
    spec = APISpec(
        name=name,
        framework="sklearn",
        qualname=qualname or f"sklearn.{name}",
        ground_truth=api_type,
        flows=flows,
        syscalls=syscalls,
        stateful=stateful,
        base_cost_ns=base_cost_ns,
        example_args=example,
        doc=doc,
    )
    SKLEARN.add(spec, impl)


def _as_matrix(value: Any) -> np.ndarray:
    if hasattr(value, "data"):
        value = value.data
    return np.atleast_2d(np.asarray(value, dtype=np.float64))


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def _load_dataset(ctx: ExecutionContext, path: str = _SAMPLE_DATASET_PATH) -> Tensor:
    payload = ctx.guard(ctx.read_file(path))
    return Tensor(np.asarray(payload, dtype=np.float64))


def _dataset_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_DATASET_PATH,), {})


_register(
    "datasets_load_files", _load_dataset, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="sklearn.datasets.load_files",
    base_cost_ns=90_000,
    example=_dataset_example,
    doc="Load a dataset directory into a feature matrix.",
)

_register(
    "datasets_fetch_openml", _load_dataset, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="sklearn.datasets.fetch_openml",
    base_cost_ns=150_000,
    example=_dataset_example,
    doc="Fetch a dataset from the local OpenML cache.",
)


def _joblib_load(ctx: ExecutionContext, path: str = _SAMPLE_MODEL_PATH) -> Any:
    payload = ctx.guard(ctx.read_file(path))
    if isinstance(payload, Model):
        return Model(dict(payload.data), architecture=payload.architecture,
                     trojan=payload.trojan)
    return payload


def _model_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_MODEL_PATH,), {})


_register(
    "joblib_load", _joblib_load, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="joblib.load",
    base_cost_ns=100_000,
    example=_model_example,
    doc="Deserialize a persisted estimator.",
)


# ----------------------------------------------------------------------
# Processing (estimators and transforms)
# ----------------------------------------------------------------------


def _processing(name: str, fn, qualname: Optional[str] = None,
                stateful: StatefulKind = StatefulKind.STATELESS,
                base_cost_ns: int = 40_000, example=_matrix_example,
                doc: str = "") -> None:
    def impl(ctx: ExecutionContext, *args: Any, **kwargs: Any) -> Any:
        values = [ctx.guard(a) for a in args]
        result = fn(*values, **kwargs)
        ctx.mem_compute(nbytes=int(getattr(result, "nbytes", 8)))
        if isinstance(result, np.ndarray):
            return Tensor(result)
        return result

    _register(
        name, impl, APIType.PROCESSING,
        flows=(process_flow(),),
        syscalls=_PROC_SYSCALLS,
        qualname=qualname,
        stateful=stateful,
        base_cost_ns=base_cost_ns,
        example=example,
        doc=doc,
    )


def _standardize(x: Any) -> np.ndarray:
    m = _as_matrix(x)
    return (m - m.mean(axis=0)) / (m.std(axis=0) + 1e-9)


def _minmax(x: Any) -> np.ndarray:
    m = _as_matrix(x)
    span = np.ptp(m, axis=0) + 1e-9
    return (m - m.min(axis=0)) / span


def _pca_fit_transform(x: Any, components: int = 2) -> np.ndarray:
    m = _as_matrix(x)
    centered = m - m.mean(axis=0)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:components].T


def _kmeans_fit_predict(x: Any, clusters: int = 2) -> np.ndarray:
    m = _as_matrix(x)
    clusters = max(1, min(clusters, len(m)))
    centers = m[np.linspace(0, len(m) - 1, clusters).astype(int)].copy()
    labels = np.zeros(len(m), dtype=np.int64)
    for _ in range(4):
        distances = ((m[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        for index in range(clusters):
            members = m[labels == index]
            if len(members):
                centers[index] = members.mean(axis=0)
    return labels


def _logreg_fit(x: Any) -> Model:
    m = _as_matrix(x)
    targets = (m.sum(axis=1) > np.median(m.sum(axis=1))).astype(np.float64)
    # One ridge-regularized least-squares step as the fitted separator.
    gram = m.T @ m + 1e-3 * np.eye(m.shape[1])
    coef = np.linalg.solve(gram, m.T @ targets)
    return Model({"coef": coef}, architecture="logreg")


def _predict(model: Any, x: Any) -> np.ndarray:
    coef = np.asarray(
        model.data.get("coef") if isinstance(model, Model)
        else _as_matrix(model).ravel()[: _as_matrix(x).shape[1]]
    )
    m = _as_matrix(x)
    coef = coef[: m.shape[1]]
    return (m[:, : len(coef)] @ coef > 0).astype(np.int64)


def _train_test_split(x: Any, ratio: float = 0.75) -> Tuple[np.ndarray, np.ndarray]:
    m = _as_matrix(x)
    cut = max(1, int(len(m) * ratio))
    return m[:cut].copy(), m[cut:].copy()


def _accuracy(a: Any, b: Any) -> float:
    left = np.asarray(_as_matrix(a)).ravel()
    right = np.asarray(_as_matrix(b)).ravel()
    size = min(len(left), len(right))
    if size == 0:
        return 0.0
    return float((left[:size].round() == right[:size].round()).mean())


_processing("StandardScaler_fit_transform", _standardize,
            qualname="sklearn.preprocessing.StandardScaler.fit_transform",
            stateful=StatefulKind.DATA_STATE,
            doc="Standardize features (keeps fitted mean/std).")
_processing("MinMaxScaler_fit_transform", _minmax,
            qualname="sklearn.preprocessing.MinMaxScaler.fit_transform",
            stateful=StatefulKind.DATA_STATE)
_processing("PCA_fit_transform", _pca_fit_transform,
            qualname="sklearn.decomposition.PCA.fit_transform",
            base_cost_ns=120_000)
_processing("KMeans_fit_predict", _kmeans_fit_predict,
            qualname="sklearn.cluster.KMeans.fit_predict",
            stateful=StatefulKind.DATA_STATE, base_cost_ns=150_000)
_processing("LogisticRegression_fit", _logreg_fit,
            qualname="sklearn.linear_model.LogisticRegression.fit",
            stateful=StatefulKind.DATA_STATE, base_cost_ns=200_000)
_processing("train_test_split", _train_test_split,
            qualname="sklearn.model_selection.train_test_split")
_processing("metrics_accuracy_score", _accuracy,
            qualname="sklearn.metrics.accuracy_score",
            example=lambda ctx: ((sample_matrix(1), sample_matrix(1)), {}))


def _predict_impl(ctx: ExecutionContext, model: Any, x: Any) -> Tensor:
    model = ctx.guard(model)
    x = ctx.guard(x)
    result = _predict(model, x)
    ctx.mem_compute(nbytes=int(result.nbytes))
    return Tensor(result)


def _predict_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    rng = np.random.default_rng(33)
    return ((Model({"coef": rng.normal(size=(4,))}), sample_matrix(34)), {})


_register(
    "predict", _predict_impl, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    qualname="sklearn.base.ClassifierMixin.predict",
    base_cost_ns=60_000,
    example=_predict_example,
    doc="Predict labels with a fitted estimator.",
)


# ----------------------------------------------------------------------
# Storing
# ----------------------------------------------------------------------


def _joblib_dump(ctx: ExecutionContext, obj: Any, path: str) -> None:
    from repro.frameworks.base import coerce_model

    model = coerce_model(ctx.guard(obj))
    ctx.write_file(path, Model(dict(model.data), architecture=model.architecture))


def _dump_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    rng = np.random.default_rng(35)
    return ((Model({"coef": rng.normal(size=(4,))}), "/out/sklearn/model.joblib"), {})


_register(
    "joblib_dump", _joblib_dump, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="joblib.dump",
    base_cost_ns=100_000,
    example=_dump_example,
    doc="Persist a fitted estimator.",
)


def _export_text(ctx: ExecutionContext, obj: Any, path: str) -> None:
    obj = ctx.guard(obj)
    ctx.write_file(path, repr(type(obj).__name__))


_register(
    "export_report", _export_text, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="sklearn.metrics.classification_report_to_file",
    example=lambda ctx: ((sample_matrix(36), "/out/sklearn/report.txt"), {}),
    doc="Write a classification report to disk.",
)
