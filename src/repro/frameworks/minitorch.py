"""minitorch — the PyTorch analogue.

Loading (model/dataset I/O), a large data-processing operator surface
(built from the shared operator library plus torch-specific entry
points), and storing (checkpoints, TensorBoard).  PyTorch has no
visualizing APIs (Table 4 footnote).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.apitypes import APIType
from repro.core.dataflow import Storage, load_flow, process_flow, store_flow
from repro.frameworks._oplib import (
    BINARY_OPS,
    NN_OPS,
    PROCESSING_SYSCALLS,
    REDUCTION_OPS,
    SHAPE_OPS,
    UNARY_OPS,
    as_array,
    register_tensor_ops,
)
from repro.frameworks.base import (
    APISpec,
    ExecutionContext,
    Framework,
    Model,
    StatefulKind,
    Tensor,
)

PYTORCH = Framework("pytorch", version="1.8")

_FILE_LOAD_SYSCALLS = ("openat", "fstat", "read", "close", "brk", "lseek")
_NET_LOAD_SYSCALLS = ("socket", "connect", "recvfrom", "memfd_create", "read", "close", "brk")
_STORE_SYSCALLS = ("openat", "write", "close", "brk")

_SAMPLE_MODEL_PATH = "/testdata/pytorch/model.pt"
_SAMPLE_DATASET_DIR = "/testdata/pytorch/mnist"
_MODEL_ZOO_URL = "https://model-zoo.example/resnet.pt"


def sample_tensor(seed: int = 21, size: int = 12) -> Tensor:
    """A deterministic test tensor."""
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=(size, size)))


def sample_weights(seed: int = 31) -> Dict[str, np.ndarray]:
    """A deterministic weights dict for model tests."""
    rng = np.random.default_rng(seed)
    return {
        "conv1.weight": rng.normal(size=(3, 3)),
        "fc.weight": rng.normal(size=(4, 4)),
    }


def _ensure_sample_files(ctx: ExecutionContext) -> None:
    fs = ctx.kernel.fs
    if not fs.exists(_SAMPLE_MODEL_PATH):
        fs.write_file(_SAMPLE_MODEL_PATH, Model(sample_weights(), architecture="resnet"))
    index_path = f"{_SAMPLE_DATASET_DIR}/index"
    if not fs.exists(index_path):
        rng = np.random.default_rng(41)
        fs.write_file(index_path, ["batch-0", "batch-1"])
        for i in range(2):
            fs.write_file(
                f"{_SAMPLE_DATASET_DIR}/batch-{i}", rng.normal(size=(4, 8, 8))
            )
    network = ctx.kernel.devices.network
    try:
        network.download(_MODEL_ZOO_URL)
    except Exception:
        network.host_content(
            _MODEL_ZOO_URL, Model(sample_weights(51), architecture="resnet-zoo")
        )


def _tensor_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((sample_tensor(),), {})


register_tensor_ops(
    PYTORCH,
    families=[UNARY_OPS, REDUCTION_OPS, BINARY_OPS, SHAPE_OPS, NN_OPS],
    qualprefixes=["torch", "torch", "torch", "torch", "torch.nn.functional"],
    object_cls=Tensor,
    example_args=_tensor_example,
)


def _register(
    name: str,
    impl,
    api_type: APIType,
    flows: tuple,
    syscalls: tuple,
    qualname: Optional[str] = None,
    init_syscalls: tuple = (),
    stateful: StatefulKind = StatefulKind.STATELESS,
    static_opaque: bool = False,
    base_cost_ns: int = 40_000,
    example=None,
    doc: str = "",
) -> None:
    spec = APISpec(
        name=name,
        framework="pytorch",
        qualname=qualname or f"torch.{name}",
        ground_truth=api_type,
        flows=flows,
        syscalls=syscalls,
        init_syscalls=init_syscalls,
        stateful=stateful,
        static_opaque=static_opaque,
        base_cost_ns=base_cost_ns,
        example_args=example,
        doc=doc,
    )
    PYTORCH.add(spec, impl)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def _load(ctx: ExecutionContext, path: str) -> Any:
    payload = ctx.guard(ctx.read_file(path))
    if isinstance(payload, Model):
        return Model(dict(payload.data), architecture=payload.architecture,
                     trojan=payload.trojan)
    return payload


def _model_path_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_MODEL_PATH,), {})


_register(
    "load", _load, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    base_cost_ns=120_000,
    example=_model_path_example,
    doc="Deserialize a checkpoint or model from disk.",
)


def _hub_load(ctx: ExecutionContext, url: str = _MODEL_ZOO_URL) -> Any:
    payload = ctx.guard(ctx.download(url))
    staged = ctx.stage_via_tempfile(payload, label="hub-cache")
    return staged


def _url_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_MODEL_ZOO_URL,), {})


_register(
    "hub_load", _hub_load, APIType.LOADING,
    flows=(load_flow(source=Storage.DEV),),
    syscalls=_NET_LOAD_SYSCALLS,
    qualname="torch.hub.load",
    static_opaque=True,
    base_cost_ns=200_000,
    example=_url_example,
    doc="Download a model from a hub URL through a cache file.",
)

_register(
    "model_zoo_load_url", _hub_load, APIType.LOADING,
    flows=(load_flow(source=Storage.DEV),),
    syscalls=_NET_LOAD_SYSCALLS,
    qualname="torch.utils.model_zoo.load_url",
    static_opaque=True,
    base_cost_ns=200_000,
    example=_url_example,
    doc="Download weights from the model zoo through a cache file.",
)


def _dataset_loader(name: str, qualname: str) -> None:
    def impl(ctx: ExecutionContext, root: str = _SAMPLE_DATASET_DIR) -> Any:
        index = ctx.guard(ctx.read_file(f"{root}/index"))
        batches = [ctx.read_file(f"{root}/{entry}") for entry in index]
        return [Tensor(as_array(b)) for b in batches]

    def example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
        _ensure_sample_files(ctx)
        return ((_SAMPLE_DATASET_DIR,), {})

    _register(
        name, impl, APIType.LOADING,
        flows=(load_flow(source=Storage.FILE),),
        syscalls=_FILE_LOAD_SYSCALLS,
        qualname=qualname,
        base_cost_ns=150_000,
        example=example,
        doc=f"{qualname}: load a dataset from disk.",
    )


_dataset_loader("datasets_MNIST", "torchvision.datasets.MNIST")
_dataset_loader("datasets_CIFAR10", "torchvision.datasets.CIFAR10")
_dataset_loader("datasets_ImageFolder", "torchvision.datasets.ImageFolder")


def _data_loader(ctx: ExecutionContext, dataset: Any, batch_size: int = 2) -> Any:
    # The loader prefetches its shard index from disk (the paper treats
    # torch.utils.data.DataLoader as a data-loading API alongside
    # datasets.MNIST; see Appendix A.6).
    _ensure_sample_files(ctx)
    ctx.read_file(f"{_SAMPLE_DATASET_DIR}/index")
    if isinstance(dataset, list):
        return [dataset[i:i + batch_size] for i in range(0, len(dataset), batch_size)]
    return [dataset]


def _dataloader_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return (([sample_tensor(1), sample_tensor(2)],), {})


_register(
    "DataLoader", _data_loader, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="torch.utils.data.DataLoader",
    base_cost_ns=60_000,
    example=_dataloader_example,
    doc="Batch a dataset, prefetching shard metadata from disk.",
)


# ----------------------------------------------------------------------
# Torch-specific processing
# ----------------------------------------------------------------------


def _simple_processing(name: str, fn, qualname: Optional[str] = None,
                       stateful: StatefulKind = StatefulKind.STATELESS,
                       base_cost_ns: int = 25_000, example=_tensor_example,
                       doc: str = "") -> None:
    def impl(ctx: ExecutionContext, *args: Any, **kwargs: Any) -> Any:
        values = [ctx.guard(a) for a in args]
        result = fn(*values, **kwargs)
        nbytes = int(getattr(result, "nbytes", 8))
        ctx.mem_compute(nbytes=nbytes)
        if isinstance(result, np.ndarray):
            return Tensor(result)
        return result

    _register(
        name, impl, APIType.PROCESSING,
        flows=(process_flow(),),
        syscalls=PROCESSING_SYSCALLS,
        qualname=qualname,
        stateful=stateful,
        base_cost_ns=base_cost_ns,
        example=example,
        doc=doc,
    )


_simple_processing("tensor", lambda x=0.0: np.atleast_1d(as_array(x)).astype(np.float64),
                   doc="Construct a tensor from data.")
_simple_processing("from_numpy", lambda x: as_array(x).astype(np.float64))
_simple_processing("zeros", lambda n=4: np.zeros(int(n)),
                   example=lambda ctx: ((4,), {}))
_simple_processing("ones", lambda n=4: np.ones(int(n)),
                   example=lambda ctx: ((4,), {}))
_simple_processing("arange", lambda n=4: np.arange(int(n), dtype=np.float64),
                   example=lambda ctx: ((4,), {}))
_simple_processing("randn_like", lambda x: np.zeros_like(as_array(x), dtype=np.float64))
_simple_processing("cat", lambda x: np.concatenate([np.atleast_1d(as_array(x))] * 2))
_simple_processing("chunk", lambda x: np.array_split(np.atleast_1d(as_array(x)), 2))
_simple_processing("topk", lambda x, k=3: np.sort(as_array(x).reshape(-1))[::-1][:k].copy())
_simple_processing("argsort", lambda x: np.argsort(as_array(x).reshape(-1)))
_simple_processing("gather", lambda x: np.atleast_1d(as_array(x)).reshape(-1)[:2].copy())
_simple_processing("masked_fill", lambda x: np.where(as_array(x) > 0, 0.0, as_array(x)))
_simple_processing("bmm", lambda x: np.atleast_2d(as_array(x)) @ np.atleast_2d(as_array(x)).T)
_simple_processing("einsum", lambda x: np.atleast_2d(as_array(x)).sum(axis=0))
_simple_processing("detach", lambda x: as_array(x).copy())
_simple_processing("item", lambda x: float(np.asarray(as_array(x)).reshape(-1)[0]))
_simple_processing("numel", lambda x: int(np.asarray(as_array(x)).size))
_simple_processing("combinations", lambda x: np.stack(
    np.meshgrid(np.atleast_1d(as_array(x))[:3], np.atleast_1d(as_array(x))[:3]), axis=-1
).reshape(-1, 2))
_simple_processing("nn_Conv2d", lambda x=None: np.full((3, 3), 1 / 9.0),
                   qualname="torch.nn.Conv2d",
                   example=lambda ctx: ((), {}),
                   doc="Construct a convolution module (its kernel).")
_simple_processing("nn_Linear", lambda x=None: np.eye(4),
                   qualname="torch.nn.Linear", example=lambda ctx: ((), {}))
_simple_processing("nn_BatchNorm2d", lambda x=None: np.ones(4),
                   qualname="torch.nn.BatchNorm2d", example=lambda ctx: ((), {}))
_simple_processing("Module_forward", lambda x: as_array(x) * 0.5 + 0.1,
                   qualname="torch.nn.Module.forward", base_cost_ns=150_000)
_simple_processing("backward", lambda x: np.gradient(np.atleast_1d(as_array(x)).astype(np.float64))
                   if np.asarray(x).size > 1 else np.zeros(1),
                   qualname="torch.Tensor.backward", base_cost_ns=200_000,
                   stateful=StatefulKind.DATA_STATE,
                   doc="Accumulate gradients (stateful: autograd buffers).")
_simple_processing("optimizer_step", lambda x: as_array(x) * 0.99,
                   qualname="torch.optim.Optimizer.step",
                   stateful=StatefulKind.DATA_STATE, base_cost_ns=80_000)
_simple_processing("zero_grad", lambda x: np.zeros_like(as_array(x), dtype=np.float64),
                   qualname="torch.optim.Optimizer.zero_grad")
_simple_processing("clip_grad_norm", lambda x: np.clip(as_array(x), -1.0, 1.0),
                   qualname="torch.nn.utils.clip_grad_norm_")
_simple_processing("no_grad", lambda: True, qualname="torch.no_grad",
                   example=lambda ctx: ((), {}))
_simple_processing("manual_seed", lambda n=0: int(n),
                   qualname="torch.manual_seed",
                   stateful=StatefulKind.INIT_ONLY,
                   example=lambda ctx: ((7,), {}),
                   doc="Seed the RNG (init-only state).")
_simple_processing("set_num_threads", lambda n=1: int(n),
                   qualname="torch.set_num_threads",
                   stateful=StatefulKind.INIT_ONLY,
                   example=lambda ctx: ((2,), {}))


def _load_state_dict(ctx: ExecutionContext, model: Model, weights: Any) -> Model:
    weights = ctx.guard(weights)
    if isinstance(weights, Model):
        weights = weights.data
    model.data.update(weights)
    ctx.mem_compute(nbytes=sum(int(w.nbytes) for w in model.data.values() if hasattr(w, "nbytes")))
    return model


def _state_dict_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((Model({}, architecture="resnet"), sample_weights()), {})


_register(
    "load_state_dict", _load_state_dict, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=PROCESSING_SYSCALLS,
    qualname="torch.nn.Module.load_state_dict",
    stateful=StatefulKind.DATA_STATE,
    base_cost_ns=90_000,
    example=_state_dict_example,
    doc="Copy weights into a module (memory-to-memory).",
)


# ----------------------------------------------------------------------
# Storing
# ----------------------------------------------------------------------


def _save(ctx: ExecutionContext, obj: Any, path: str) -> None:
    from repro.frameworks.base import coerce_model

    obj = ctx.guard(obj)
    if isinstance(obj, Model):
        payload: Any = Model(dict(obj.data), architecture=obj.architecture)
    elif isinstance(obj, (list, dict)):
        payload = coerce_model(np.zeros(1))
    else:
        payload = as_array(obj).copy()
    ctx.write_file(path, payload)


def _save_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((Model(sample_weights(61)), "/out/pytorch/model-out.pt"), {})


_register(
    "save", _save, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    base_cost_ns=120_000,
    example=_save_example,
    doc="Serialize an object to disk.",
)


def _summary_writer(ctx: ExecutionContext, logdir: str = "/out/tensorboard") -> Any:
    ctx.write_file(f"{logdir}/events.out", [])
    return {"logdir": logdir, "events": []}


def _writer_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("/out/tensorboard",), {})


_register(
    "SummaryWriter", _summary_writer, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="torch.utils.tensorboard.writer.SummaryWriter",
    stateful=StatefulKind.DATA_STATE,
    example=_writer_example,
    doc="Open a TensorBoard event-file writer.",
)


def _add_scalar(ctx: ExecutionContext, writer: Any, tag: str, value: float) -> None:
    writer["events"].append((tag, float(value)))
    ctx.write_file(f"{writer['logdir']}/events.out", list(writer["events"]))


def _add_scalar_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (({"logdir": "/out/tensorboard", "events": []}, "loss", 0.5), {})


_register(
    "SummaryWriter_add_scalar", _add_scalar, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="torch.utils.tensorboard.writer.SummaryWriter.add_scalar",
    stateful=StatefulKind.DATA_STATE,
    base_cost_ns=20_000,
    example=_add_scalar_example,
    doc="Append a scalar to the event file.",
)


def _onnx_export(ctx: ExecutionContext, model: Any, path: str) -> None:
    from repro.frameworks.base import coerce_model

    model = coerce_model(ctx.guard(model))
    ctx.write_file(path, {"architecture": model.architecture,
                          "weights": dict(model.data)})


def _onnx_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((Model(sample_weights(71)), "/out/pytorch/model.onnx"), {})


_register(
    "onnx_export", _onnx_export, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="torch.onnx.export",
    base_cost_ns=150_000,
    example=_onnx_example,
    doc="Export a model to ONNX.",
)
