"""Framework registry: all mini-frameworks plus CVE wiring.

Importing this module attaches every CVE in the attack registry to the
framework API that carries it (the specs are immutable, so a new spec
with the vulnerability list is swapped in).  Use :func:`all_frameworks`
or :func:`get_framework` to access the wired frameworks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.attacks.cves import ALL_CVES
from repro.errors import ReproError
from repro.frameworks.base import Framework, FrameworkAPI
from repro.frameworks.minicaffe import CAFFE
from repro.frameworks.minicv import OPENCV
from repro.frameworks.minitf import TENSORFLOW
from repro.frameworks.minitorch import PYTORCH
from repro.frameworks.minisklearn import SKLEARN
from repro.frameworks.miniutil import (
    GTK,
    JSONLIB,
    MATPLOTLIB,
    NUMPYLIB,
    PANDAS,
    PILLOW,
)

FRAMEWORKS: Dict[str, Framework] = {
    fw.name: fw
    for fw in (
        OPENCV, PYTORCH, TENSORFLOW, CAFFE, SKLEARN,
        PANDAS, JSONLIB, MATPLOTLIB, NUMPYLIB, PILLOW, GTK,
    )
}

#: The four frameworks the paper's evaluation centres on.
MAJOR_FRAMEWORKS: Tuple[str, ...] = ("opencv", "pytorch", "tensorflow", "caffe")


def register_framework(framework: Framework) -> Framework:
    """Add a user-provided framework so gateways can dispatch to it.

    FreePart is framework-agnostic (Section 4): anything declaring its
    APIs through :class:`~repro.frameworks.base.APISpec` can be analyzed,
    partitioned, and hooked.  Re-registering the same name replaces the
    previous registration.
    """
    FRAMEWORKS[framework.name] = framework
    return framework


def get_framework(name: str) -> Framework:
    """Resolve a framework by name (ReproError if unknown)."""
    try:
        return FRAMEWORKS[name]
    except KeyError:
        raise ReproError(f"unknown framework {name!r}") from None


def all_frameworks() -> List[Framework]:
    """Every registered framework object."""
    return list(FRAMEWORKS.values())


def get_api(framework: str, api_name: str) -> FrameworkAPI:
    """Resolve (framework, api_name) to the FrameworkAPI."""
    return get_framework(framework).get(api_name)


def iter_apis(names: Iterable[str] = ()) -> List[FrameworkAPI]:
    """All APIs of the given frameworks (default: every framework)."""
    selected = list(names) or list(FRAMEWORKS)
    apis: List[FrameworkAPI] = []
    for name in selected:
        apis.extend(get_framework(name))
    return apis


def _wire_cves() -> None:
    """Attach every registered CVE to its carrying API spec."""
    for record in ALL_CVES:
        framework = get_framework(record.framework)
        api = framework.get(record.api_name)
        if record.cve_id in api.spec.vulnerabilities:
            continue
        updated = api.spec.with_vulnerabilities(
            *(api.spec.vulnerabilities + (record.cve_id,))
        )
        framework.replace_spec(record.api_name, updated)


#: Global compute-cost calibration.  The per-API costs in the framework
#: modules encode *relative* expense; this factor scales them so the
#: ratio between API compute time and the isolation costs (IPC, copies)
#: matches the regime the paper measured on real frameworks — real image
#: operators take hundreds of microseconds while an IPC round trip takes
#: a handful, which is what yields the ~3.7% overhead of Fig. 13.
COMPUTE_COST_SCALE = 8


def _calibrate_costs() -> None:
    from dataclasses import replace as _replace

    for framework in FRAMEWORKS.values():
        for name in list(framework.api_names):
            spec = framework.get(name).spec
            framework.replace_spec(name, _replace(
                spec,
                base_cost_ns=spec.base_cost_ns * COMPUTE_COST_SCALE,
                cost_ns_per_byte=spec.cost_ns_per_byte * COMPUTE_COST_SCALE,
            ))


_wire_cves()
_calibrate_costs()
