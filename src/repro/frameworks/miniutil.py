"""miniutil — small companion frameworks the evaluated apps also use.

pandas / json / matplotlib (the Table 2 footnote: these need the hybrid
analysis because their flows hide behind indirect calls), a numpy I/O
surface, Pillow (whose CVE-2020-10378 drives the MComix3 case study), and
a minimal GTK (the ``Gtk::RecentManager`` state the MComix3 attack wants
to leak).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.apitypes import APIType
from repro.core.dataflow import (
    Storage,
    load_flow,
    process_flow,
    read,
    store_flow,
    visualize_flow,
)
from repro.frameworks.base import (
    APISpec,
    ExecutionContext,
    Framework,
    Mat,
    StatefulKind,
)

PANDAS = Framework("pandas", version="1.2")
JSONLIB = Framework("json", version="stdlib")
MATPLOTLIB = Framework("matplotlib", version="3.4")
NUMPYLIB = Framework("numpy", version="1.20")
PILLOW = Framework("pillow", version="8.1")
GTK = Framework("gtk", version="3.24")

UTILITY_FRAMEWORKS = (PANDAS, JSONLIB, MATPLOTLIB, NUMPYLIB, PILLOW, GTK)

_FILE_LOAD_SYSCALLS = ("openat", "fstat", "read", "close", "brk", "lseek")
_STORE_SYSCALLS = ("openat", "write", "close", "brk")
_PROC_SYSCALLS = ("brk",)
_GUI_SYSCALLS = ("sendto", "futex", "select", "brk")
_GUI_INIT_SYSCALLS = ("connect", "mprotect")

_SAMPLE_CSV = "/testdata/util/table.csv"
_SAMPLE_JSON = "/testdata/util/config.json"
_SAMPLE_NPY = "/testdata/util/array.npy"
_SAMPLE_IMG = "/testdata/util/photo.png"


def _ensure_sample_files(ctx: ExecutionContext) -> None:
    fs = ctx.kernel.fs
    if not fs.exists(_SAMPLE_CSV):
        fs.write_file(_SAMPLE_CSV, [["name", "score"], ["a", 1.0], ["b", 2.0]])
    if not fs.exists(_SAMPLE_JSON):
        fs.write_file(_SAMPLE_JSON, {"threshold": 0.5, "labels": ["x", "y"]})
    if not fs.exists(_SAMPLE_NPY):
        rng = np.random.default_rng(61)
        fs.write_file(_SAMPLE_NPY, rng.normal(size=(6, 6)))
    if not fs.exists(_SAMPLE_IMG):
        rng = np.random.default_rng(62)
        fs.write_file(_SAMPLE_IMG, rng.integers(0, 256, size=(12, 12, 3)).astype(np.float64))


def _add(
    framework: Framework,
    name: str,
    impl,
    api_type: APIType,
    flows: tuple,
    syscalls: tuple,
    qualname: str,
    init_syscalls: tuple = (),
    stateful: StatefulKind = StatefulKind.STATELESS,
    static_opaque: bool = False,
    base_cost_ns: int = 30_000,
    example=None,
    doc: str = "",
) -> None:
    spec = APISpec(
        name=name,
        framework=framework.name,
        qualname=qualname,
        ground_truth=api_type,
        flows=flows,
        syscalls=syscalls,
        init_syscalls=init_syscalls,
        stateful=stateful,
        static_opaque=static_opaque,
        base_cost_ns=base_cost_ns,
        example_args=example,
        doc=doc,
    )
    framework.add(spec, impl)


# ----------------------------------------------------------------------
# pandas
# ----------------------------------------------------------------------


def _read_csv(ctx: ExecutionContext, path: str) -> List[list]:
    payload = ctx.guard(ctx.read_file(path))
    return [list(row) for row in payload]


def _csv_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_CSV,), {})


_add(
    PANDAS, "read_csv", _read_csv, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="pd.read_csv",
    static_opaque=True,
    example=_csv_example,
    doc="Parse a CSV file (flows behind indirect parser dispatch).",
)


def _dataframe(ctx: ExecutionContext, rows: Any) -> List[list]:
    rows = ctx.guard(rows)
    ctx.mem_compute(nbytes=64)
    return [list(r) for r in rows]


_add(
    PANDAS, "DataFrame", _dataframe, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    qualname="pd.DataFrame",
    static_opaque=True,
    example=lambda ctx: (([["a", 1.0]],), {}),
    doc="Build a table in memory.",
)


def _to_csv(ctx: ExecutionContext, rows: Any, path: str) -> None:
    rows = ctx.guard(rows)
    ctx.write_file(path, [list(r) for r in rows])


_add(
    PANDAS, "to_csv", _to_csv, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="pd.DataFrame.to_csv",
    static_opaque=True,
    example=lambda ctx: (([["a", 1.0]], "/out/util/out.csv"), {}),
    doc="Write a table to a CSV file.",
)


# ----------------------------------------------------------------------
# json
# ----------------------------------------------------------------------


def _json_load(ctx: ExecutionContext, path: str) -> Any:
    return ctx.guard(ctx.read_file(path))


def _json_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_JSON,), {})


_add(
    JSONLIB, "load", _json_load, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="json.load",
    static_opaque=True,
    example=_json_example,
    doc="Parse a JSON file (recursive-descent: opaque to static analysis).",
)


def _json_dump(ctx: ExecutionContext, obj: Any, path: str) -> None:
    ctx.write_file(path, ctx.guard(obj))


_add(
    JSONLIB, "dump", _json_dump, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="json.dump",
    static_opaque=True,
    example=lambda ctx: (({"k": 1}, "/out/util/out.json"), {}),
    doc="Serialize an object to a JSON file.",
)


def _json_loads(ctx: ExecutionContext, text: str) -> Any:
    ctx.mem_compute(nbytes=len(str(text)))
    return {"parsed": str(ctx.guard(text))}


_add(
    JSONLIB, "loads", _json_loads, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    qualname="json.loads",
    static_opaque=True,
    example=lambda ctx: (('{"k": 1}',), {}),
    doc="Parse a JSON string already in memory.",
)


# ----------------------------------------------------------------------
# matplotlib
# ----------------------------------------------------------------------

_FIGURE_STATE: Dict[str, Any] = {}


def _plt_plot(ctx: ExecutionContext, values: Any) -> Dict[str, Any]:
    values = ctx.guard(values)
    series = np.atleast_1d(np.asarray(
        values.data if hasattr(values, "data") else values, dtype=np.float64
    ))
    ctx.mem_compute(nbytes=int(series.nbytes))
    figure = {"series": series.copy()}
    _FIGURE_STATE["current"] = figure
    return figure


_add(
    MATPLOTLIB, "plot", _plt_plot, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    qualname="plt.plot",
    static_opaque=True,
    stateful=StatefulKind.GUI_STATE,
    example=lambda ctx: ((np.arange(8, dtype=np.float64),), {}),
    doc="Draw a line into the in-memory figure.",
)


def _plt_show(ctx: ExecutionContext) -> None:
    figure = _FIGURE_STATE.get("current", {"series": np.zeros(1)})
    ctx.gui_show("matplotlib-figure", np.asarray(figure["series"]).copy())


_add(
    MATPLOTLIB, "show", _plt_show, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    qualname="plt.show",
    static_opaque=True,
    stateful=StatefulKind.GUI_STATE,
    example=lambda ctx: ((), {}),
    doc="Display the current figure.",
)


def _plt_savefig(ctx: ExecutionContext, path: str) -> None:
    figure = _FIGURE_STATE.get("current", {"series": np.zeros(1)})
    ctx.write_file(path, np.asarray(figure["series"]).copy())


_add(
    MATPLOTLIB, "savefig", _plt_savefig, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="plt.savefig",
    static_opaque=True,
    stateful=StatefulKind.GUI_STATE,
    example=lambda ctx: (("/out/util/figure.png",), {}),
    doc="Render the current figure to a file.",
)


# ----------------------------------------------------------------------
# numpy I/O
# ----------------------------------------------------------------------


def _np_load(ctx: ExecutionContext, path: str) -> Mat:
    payload = ctx.guard(ctx.read_file(path))
    return Mat(np.asarray(payload).copy())


def _npy_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_NPY,), {})


_add(
    NUMPYLIB, "load", _np_load, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="np.load",
    example=_npy_example,
    doc="Load a .npy array.",
)

_add(
    NUMPYLIB, "fromfile", _np_load, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="np.fromfile",
    example=_npy_example,
    doc="Read raw binary data into an array.",
)


def _np_save(ctx: ExecutionContext, path: str, array: Any) -> None:
    array = ctx.guard(array)
    ctx.write_file(path, np.asarray(
        array.data if hasattr(array, "data") else array
    ).copy())


_add(
    NUMPYLIB, "save", _np_save, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="np.save",
    example=lambda ctx: (("/out/util/out.npy", np.ones((3, 3))), {}),
    doc="Write an array to a .npy file.",
)


def _np_einsum(ctx: ExecutionContext, array: Any) -> Mat:
    array = ctx.guard(array)
    arr = np.atleast_2d(np.asarray(
        array.data if hasattr(array, "data") else array, dtype=np.float64
    ))
    ctx.mem_compute(nbytes=int(arr.nbytes))
    return Mat(arr @ arr.T)


_add(
    NUMPYLIB, "einsum", _np_einsum, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    qualname="np.einsum",
    example=lambda ctx: ((np.ones((3, 3)),), {}),
    doc="Contract arrays in memory.",
)


# ----------------------------------------------------------------------
# Pillow
# ----------------------------------------------------------------------


def _image_open(ctx: ExecutionContext, path: str) -> Mat:
    payload = ctx.guard(ctx.read_file(path))
    ctx.kernel.gui.add_recent_file(path)
    return Mat(np.asarray(
        payload.data if hasattr(payload, "data") else payload
    ).copy())


def _img_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_IMG,), {})


_add(
    PILLOW, "Image_open", _image_open, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="PIL.Image.open",
    base_cost_ns=60_000,
    example=_img_example,
    doc="Decode an image file (records it in the recent-files list).",
)


def _image_resize(ctx: ExecutionContext, image: Any, factor: float = 0.5) -> Mat:
    image = ctx.guard(image)
    arr = np.asarray(image.data if hasattr(image, "data") else image, dtype=np.float64)
    step = max(int(round(1.0 / max(factor, 0.01))), 1)
    result = arr[::step, ::step].copy()
    ctx.mem_compute(nbytes=int(result.nbytes))
    return Mat(result)


_add(
    PILLOW, "Image_resize", _image_resize, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    qualname="PIL.Image.resize",
    example=lambda ctx: ((Mat(np.ones((8, 8))),), {}),
    doc="Resample an image in memory.",
)


def _image_save(ctx: ExecutionContext, image: Any, path: str) -> None:
    image = ctx.guard(image)
    ctx.write_file(path, np.asarray(
        image.data if hasattr(image, "data") else image
    ).copy())


_add(
    PILLOW, "Image_save", _image_save, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="PIL.Image.save",
    example=lambda ctx: ((Mat(np.ones((4, 4))), "/out/util/photo-out.png"), {}),
    doc="Encode an image to a file.",
)


def _image_show(ctx: ExecutionContext, image: Any) -> None:
    image = ctx.guard(image)
    ctx.gui_show("pillow-viewer", np.asarray(
        image.data if hasattr(image, "data") else image
    ).copy())


_add(
    PILLOW, "Image_show", _image_show, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    qualname="PIL.Image.show",
    example=lambda ctx: ((Mat(np.ones((4, 4))),), {}),
    doc="Display an image in the default viewer.",
)


# ----------------------------------------------------------------------
# GTK
# ----------------------------------------------------------------------


def _recent_manager_add(ctx: ExecutionContext, path: str) -> None:
    ctx.gui_write(label="recent-files", nbytes=len(path))
    ctx.kernel.gui.add_recent_file(path)


_add(
    GTK, "RecentManager_add_item", _recent_manager_add, APIType.VISUALIZING,
    flows=(visualize_flow(label="recent-files"),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    qualname="Gtk.RecentManager.add_item",
    stateful=StatefulKind.GUI_STATE,
    example=lambda ctx: (("/home/user/comic.cbz",), {}),
    doc="Record a file in the GTK recent-files registry.",
)


def _recent_manager_get_items(ctx: ExecutionContext) -> List[str]:
    ctx.gui_access(label="recent-files")
    return list(ctx.kernel.gui.recent_files)


_add(
    GTK, "RecentManager_get_items", _recent_manager_get_items, APIType.VISUALIZING,
    flows=(read(Storage.GUI, label="recent-files"),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    qualname="Gtk.RecentManager.get_items",
    stateful=StatefulKind.GUI_STATE,
    example=lambda ctx: ((), {}),
    doc="Read the GTK recent-files registry.",
)


def _gtk_window_show(ctx: ExecutionContext, image: Any) -> None:
    image = ctx.guard(image)
    ctx.gui_show("gtk-window", np.asarray(
        image.data if hasattr(image, "data") else image
    ).copy())


_add(
    GTK, "Window_show", _gtk_window_show, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    qualname="Gtk.Window.show",
    stateful=StatefulKind.GUI_STATE,
    example=lambda ctx: ((Mat(np.ones((4, 4))),), {}),
    doc="Show the main GTK window.",
)
