"""Shared numpy-backed operator library for the mini-frameworks.

The ML frameworks (minitorch, minitf, minicaffe) share large families of
memory-to-memory operators (elementwise math, reductions, shape ops,
neural-network layers).  This module implements them once over ndarrays
and provides a batch registrar that binds a family into a
:class:`~repro.frameworks.base.Framework` with consistent specs: all of
these are *data processing* APIs (``W(MEM, R(MEM))`` only).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.apitypes import APIType
from repro.core.dataflow import process_flow
from repro.frameworks.base import (
    APISpec,
    DataObject,
    ExecutionContext,
    Framework,
    StatefulKind,
)

#: Syscalls a pure in-memory operator issues (allocator traffic only).
PROCESSING_SYSCALLS: Tuple[str, ...] = ("brk",)

ArrayFn = Callable[..., np.ndarray]


def as_array(value: Any) -> np.ndarray:
    """Coerce a DataObject / ndarray / scalar to an ndarray."""
    if isinstance(value, DataObject):
        value = value.data
    return np.asarray(value)


def _binary(fn: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> ArrayFn:
    def apply(a: Any, b: Any) -> np.ndarray:
        return fn(as_array(a), as_array(b))

    return apply


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


def _pool2d(x: np.ndarray, size: int = 2, reducer: ArrayFn = np.max) -> np.ndarray:
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    h, w = x.shape[:2]
    h2, w2 = (h // size) * size, (w // size) * size
    trimmed = x[:h2, :w2]
    reshaped = trimmed.reshape(h2 // size, size, w2 // size, size, *x.shape[2:])
    return reducer(reducer(reshaped, axis=3), axis=1)


def _conv2d(x: np.ndarray, kernel: Optional[np.ndarray] = None) -> np.ndarray:
    from scipy import ndimage

    x = np.asarray(x, dtype=np.float64)
    if x.ndim < 2:
        x = np.atleast_2d(x)
    if kernel is None:
        kernel = np.full((3, 3), 1.0 / 9.0)
    kernel = np.asarray(kernel, dtype=np.float64)
    if x.ndim == 3:
        channels = [
            ndimage.convolve(x[..., c], kernel, mode="nearest")
            for c in range(x.shape[2])
        ]
        return np.stack(channels, axis=-1)
    return ndimage.convolve(x, kernel, mode="nearest")


def _batch_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    return (x - x.mean()) / np.sqrt(x.var() + eps)


def _dropout(x: np.ndarray, rate: float = 0.5) -> np.ndarray:
    # Deterministic "inference mode" dropout: scale only.
    return np.asarray(x, dtype=np.float64) * (1.0 - rate)


def _linear(x: np.ndarray, out_features: int = 8) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    weights = np.arange(1, x.size * out_features + 1, dtype=np.float64)
    weights = weights.reshape(x.size, out_features) / (x.size * out_features)
    return x @ weights


def _embedding(indices: np.ndarray, dim: int = 8) -> np.ndarray:
    indices = np.asarray(indices, dtype=np.int64).reshape(-1)
    table = np.outer(
        np.arange(int(indices.max(initial=0)) + 1, dtype=np.float64) + 1.0,
        np.linspace(0.1, 1.0, dim),
    )
    return table[indices % len(table)]


def _cross_entropy(logits: np.ndarray, target: Optional[np.ndarray] = None) -> float:
    logits = np.atleast_2d(np.asarray(logits, dtype=np.float64))
    probs = _softmax(logits, axis=-1)
    if target is None:
        target = np.zeros(len(probs), dtype=np.int64)
    target = np.asarray(target, dtype=np.int64).reshape(-1)
    picked = probs[np.arange(len(probs)), target % probs.shape[1]]
    return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))


#: name → (callable over arrays, arity) for elementwise/unary operators.
UNARY_OPS: Dict[str, ArrayFn] = {
    "abs": np.abs,
    "exp": lambda x: np.exp(np.clip(x, -60, 60)),
    "log": lambda x: np.log(np.abs(x) + 1e-9),
    "sqrt": lambda x: np.sqrt(np.abs(x)),
    "square": np.square,
    "negative": np.negative,
    "sign": np.sign,
    "floor": np.floor,
    "ceil": np.ceil,
    "round": np.round,
    "sin": np.sin,
    "cos": np.cos,
    "tanh": np.tanh,
    "sigmoid": _sigmoid,
    "relu": _relu,
    "softplus": lambda x: np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0),
    "reciprocal": lambda x: 1.0 / (np.asarray(x, dtype=np.float64) + 1e-9),
    "clamp": lambda x: np.clip(x, 0.0, 1.0),
    "erf": lambda x: np.vectorize(_erf_scalar)(np.asarray(x, dtype=np.float64)),
}


def _erf_scalar(x: float) -> float:
    import math

    return math.erf(x)


REDUCTION_OPS: Dict[str, ArrayFn] = {
    "sum": np.sum,
    "mean": np.mean,
    "max": np.max,
    "min": np.min,
    "argmax": np.argmax,
    "argmin": np.argmin,
    "std": np.std,
    "var": np.var,
    "prod": lambda x: np.prod(np.clip(x, -10, 10)),
    "norm": np.linalg.norm,
    "median": np.median,
    "cumsum": np.cumsum,
    "count_nonzero": np.count_nonzero,
}

BINARY_OPS: Dict[str, ArrayFn] = {
    "add": _binary(np.add),
    "sub": _binary(np.subtract),
    "mul": _binary(np.multiply),
    "div": _binary(lambda a, b: a / (b + 1e-9)),
    "pow": _binary(lambda a, b: np.power(np.abs(a) + 1e-9, np.clip(b, -4, 4))),
    "maximum": _binary(np.maximum),
    "minimum": _binary(np.minimum),
    "matmul": _binary(lambda a, b: np.atleast_2d(a) @ np.atleast_2d(b).T),
    "dot": _binary(lambda a, b: np.dot(a.reshape(-1), b.reshape(-1))),
    "where_gt": _binary(lambda a, b: np.where(a > b, a, b)),
}

SHAPE_OPS: Dict[str, ArrayFn] = {
    "reshape": lambda x: np.asarray(x).reshape(-1),
    "transpose": lambda x: np.transpose(np.atleast_2d(x)),
    "flatten": lambda x: np.asarray(x).reshape(-1),
    "squeeze": np.squeeze,
    "unsqueeze": lambda x: np.expand_dims(x, 0),
    "concat": lambda x: np.concatenate([np.atleast_1d(x), np.atleast_1d(x)]),
    "stack": lambda x: np.stack([np.atleast_1d(x), np.atleast_1d(x)]),
    "split": lambda x: np.array_split(np.atleast_1d(x), 2)[0],
    "pad": lambda x: np.pad(np.atleast_1d(x), 1),
    "tile": lambda x: np.tile(np.atleast_1d(x), 2),
    "flip": lambda x: np.flip(x),
    "roll": lambda x: np.roll(x, 1),
    "sort": lambda x: np.sort(np.asarray(x).reshape(-1)),
    "unique": lambda x: np.unique(x),
    "broadcast": lambda x: np.broadcast_to(np.asarray(x).reshape(-1)[:1], (4,)).copy(),
}

NN_OPS: Dict[str, ArrayFn] = {
    "conv2d": _conv2d,
    "conv3d": lambda x: _conv2d(np.atleast_2d(np.asarray(x, dtype=np.float64))),
    "avg_pool": lambda x: _pool2d(np.atleast_2d(x), reducer=np.mean),
    "max_pool": lambda x: _pool2d(np.atleast_2d(x), reducer=np.max),
    "batch_norm": _batch_norm,
    "layer_norm": _batch_norm,
    "instance_norm": _batch_norm,
    "dropout": _dropout,
    "linear": _linear,
    "embedding": _embedding,
    "softmax": lambda x: _softmax(np.asarray(x, dtype=np.float64)),
    "log_softmax": lambda x: np.log(_softmax(np.asarray(x, dtype=np.float64)) + 1e-12),
    "cross_entropy": _cross_entropy,
    "mse_loss": lambda x: float(np.mean(np.square(np.asarray(x, dtype=np.float64)))),
    "nll_loss": lambda x: float(-np.mean(np.asarray(x, dtype=np.float64))),
    "leaky_relu": lambda x: np.where(np.asarray(x) > 0, x, 0.01 * np.asarray(x)),
    "elu": lambda x: np.where(np.asarray(x) > 0, x, np.expm1(np.clip(x, -60, 0))),
    "gelu": lambda x: np.asarray(x) * _sigmoid(1.702 * np.asarray(x, dtype=np.float64)),
    "upsample": lambda x: np.repeat(np.repeat(np.atleast_2d(x), 2, axis=0), 2, axis=1),
    "pixel_shuffle": lambda x: np.atleast_2d(x).repeat(2, axis=0),
    "grid_sample": lambda x: np.atleast_2d(np.asarray(x, dtype=np.float64))[::1],
    "interpolate": lambda x: np.repeat(np.atleast_1d(x), 2),
}


def binary_example_from(
    example_args: Callable[[ExecutionContext], Tuple[tuple, dict]],
) -> Callable[[ExecutionContext], Tuple[tuple, dict]]:
    """Duplicate a unary example's tensor into a two-argument test case."""

    def example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
        args, kwargs = example_args(ctx)
        return (args[0], args[0]), kwargs

    return example


def register_tensor_ops(
    framework: Framework,
    families: Sequence[Dict[str, ArrayFn]],
    qualprefixes: Sequence[str],
    object_cls: Type[DataObject],
    example_args: Callable[[ExecutionContext], Tuple[tuple, dict]],
    base_cost_ns: int = 15_000,
    skip: Iterable[str] = (),
) -> int:
    """Register operator families into ``framework``; returns the count.

    ``qualprefixes`` pairs with ``families`` (e.g. ``"torch.nn"`` for the
    NN family).  Every generated API is data-processing, stateless, and
    covered by a dynamic-analysis test case (``example_args``).
    """
    skip_set = set(skip)
    registered = 0
    two_arg_example = binary_example_from(example_args)
    for family, prefix in zip(families, qualprefixes):
        is_binary_family = family is BINARY_OPS
        for name, fn in family.items():
            if name in skip_set or name in framework:
                continue
            case = two_arg_example if is_binary_family else example_args
            spec = APISpec(
                name=name,
                framework=framework.name,
                qualname=f"{prefix}.{name}",
                ground_truth=APIType.PROCESSING,
                flows=(process_flow(),),
                syscalls=PROCESSING_SYSCALLS,
                stateful=StatefulKind.STATELESS,
                base_cost_ns=base_cost_ns,
                example_args=case,
                doc=f"{prefix}.{name}: memory-to-memory tensor operator",
            )
            framework.add(spec, _make_impl(fn, object_cls))
            registered += 1
    return registered


def _make_impl(fn: ArrayFn, object_cls: Type[DataObject]):
    def impl(ctx: ExecutionContext, *args: Any, **kwargs: Any) -> Any:
        arrays = [as_array(ctx.guard(a)) for a in args]
        result = fn(*arrays, **kwargs)
        nbytes = int(getattr(result, "nbytes", 8))
        ctx.mem_compute(nbytes=nbytes)
        if isinstance(result, np.ndarray):
            return object_cls(result)
        return result

    return impl
