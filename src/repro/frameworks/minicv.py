"""minicv — the OpenCV analogue.

A numpy/scipy-backed computer-vision framework exposing the API surface
the paper's evaluation needs: image/video loading, ~80 image-processing
operators, GUI windows, and image/video storing.  Every API issues its
real syscalls through the execution context and records its data flows,
so the hybrid analysis categorizes it from observed behaviour.

API naming follows OpenCV (``imread``, ``GaussianBlur``,
``CascadeClassifier`` + ``CascadeClassifier_load`` +
``CascadeClassifier_detectMultiScale`` for the class's methods).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.core.apitypes import APIType
from repro.core.dataflow import (
    load_flow,
    process_flow,
    read,
    store_flow,
    visualize_flow,
    Storage,
)
from repro.frameworks.base import (
    APISpec,
    DataObject,
    ExecutionContext,
    Frame,
    Framework,
    Mat,
    Model,
    StatefulKind,
)

OPENCV = Framework("opencv", version="4.1")

# Syscall sets actually issued by the implementation helpers.
_FILE_LOAD_SYSCALLS = ("openat", "fstat", "read", "close", "brk", "lseek")
_CAMERA_SYSCALLS = ("openat", "ioctl", "select", "brk")
_PROC_SYSCALLS = ("brk",)
_GUI_SYSCALLS = ("sendto", "futex", "select", "brk")
_GUI_INIT_SYSCALLS = ("connect", "mprotect")
_STORE_SYSCALLS = ("openat", "write", "close", "brk")


def as_array(value: Any) -> np.ndarray:
    """Coerce a Mat/DataObject/array-like to an ndarray."""
    if isinstance(value, DataObject):
        value = value.data
    return np.asarray(value)


def _float(value: Any) -> np.ndarray:
    return as_array(value).astype(np.float64)


def _gray(value: Any) -> np.ndarray:
    arr = _float(value)
    if arr.ndim == 3:
        arr = arr.mean(axis=2)
    return np.atleast_2d(arr)


# ----------------------------------------------------------------------
# Example-argument builders (dynamic-analysis test cases)
# ----------------------------------------------------------------------

_SAMPLE_IMAGE_PATH = "/testdata/opencv/sample.png"
_SAMPLE_FLOW_PATH = "/testdata/opencv/sample.flo"
_SAMPLE_XML_PATH = "/testdata/opencv/classifier.xml"


def sample_image(seed: int = 7, size: int = 16) -> np.ndarray:
    """A deterministic RGB test image."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(size, size, 3)).astype(np.float64)


def _ensure_sample_files(ctx: ExecutionContext) -> None:
    fs = ctx.kernel.fs
    if not fs.exists(_SAMPLE_IMAGE_PATH):
        fs.write_file(_SAMPLE_IMAGE_PATH, sample_image())
    if not fs.exists(_SAMPLE_FLOW_PATH):
        fs.write_file(_SAMPLE_FLOW_PATH, sample_image(seed=8)[:, :, :2])
    if not fs.exists(_SAMPLE_XML_PATH):
        fs.write_file(_SAMPLE_XML_PATH, {"threshold": 150.0, "min_area": 2})


def _mat_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((Mat(sample_image()),), {})


def _two_mat_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((Mat(sample_image(1)), Mat(sample_image(2))), {})


def _path_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_IMAGE_PATH,), {})


def _store_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("/out/opencv/example-out.png", Mat(sample_image(3))), {})


def _window_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("test-window", Mat(sample_image(4))), {})


def _name_only_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("test-window",), {})


def _no_arg_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((), {})


# ----------------------------------------------------------------------
# Registration helpers
# ----------------------------------------------------------------------


def _register(
    name: str,
    impl: Callable[..., Any],
    api_type: APIType,
    flows: tuple,
    syscalls: tuple,
    init_syscalls: tuple = (),
    neutral: bool = False,
    stateful: StatefulKind = StatefulKind.STATELESS,
    base_cost_ns: int = 30_000,
    cost_ns_per_byte: float = 0.05,
    example: Optional[Callable] = None,
    doc: str = "",
) -> None:
    spec = APISpec(
        name=name,
        framework="opencv",
        qualname=f"cv2.{name}",
        ground_truth=api_type,
        flows=flows,
        syscalls=syscalls,
        init_syscalls=init_syscalls,
        neutral=neutral,
        stateful=stateful,
        base_cost_ns=base_cost_ns,
        cost_ns_per_byte=cost_ns_per_byte,
        example_args=example,
        doc=doc or f"cv2.{name}",
    )
    OPENCV.add(spec, impl)


def _mat_op(
    name: str,
    fn: Callable[..., Any],
    neutral: bool = False,
    base_cost_ns: int = 30_000,
    example: Optional[Callable] = _mat_example,
    doc: str = "",
) -> None:
    """Register a memory-to-memory Mat operator."""

    def impl(ctx: ExecutionContext, *args: Any, **kwargs: Any) -> Any:
        values = [ctx.guard(a) for a in args]
        result = fn(*values, **kwargs)
        nbytes = int(getattr(result, "nbytes", 8))
        ctx.mem_compute(nbytes=nbytes)
        if isinstance(result, np.ndarray):
            return Mat(result)
        return result

    _register(
        name,
        impl,
        APIType.PROCESSING,
        flows=(process_flow(),),
        syscalls=_PROC_SYSCALLS,
        neutral=neutral,
        base_cost_ns=base_cost_ns,
        example=example,
        doc=doc,
    )


# ----------------------------------------------------------------------
# Data loading APIs
# ----------------------------------------------------------------------


def _imread(ctx: ExecutionContext, path: str) -> Mat:
    payload = ctx.guard(ctx.read_file(path))
    return Mat(as_array(payload).copy())


_register(
    "imread", _imread, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    base_cost_ns=60_000,
    example=_path_example,
    doc="Decode an image file into a Mat.",
)


def _imreadmulti(ctx: ExecutionContext, path: str) -> List[Mat]:
    payload = ctx.guard(ctx.read_file(path))
    arr = as_array(payload)
    return [Mat(arr.copy()), Mat(np.flip(arr, axis=0).copy())]


_register(
    "imreadmulti", _imreadmulti, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    base_cost_ns=80_000,
    example=_path_example,
    doc="Decode a multi-page image file.",
)


def _cvLoad(ctx: ExecutionContext, path: str) -> Any:
    payload = ctx.guard(ctx.read_file(path))
    if isinstance(payload, np.ndarray):
        return Mat(payload.copy())
    return payload


_register(
    "cvLoad", _cvLoad, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    base_cost_ns=50_000,
    example=_path_example,
    doc="Legacy loader for images and persisted structures.",
)


def _readOpticalFlow(ctx: ExecutionContext, path: str) -> Mat:
    payload = ctx.guard(ctx.read_file(path))
    return Mat(as_array(payload).copy())


def _flow_path_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_FLOW_PATH,), {})


_register(
    "readOpticalFlow", _readOpticalFlow, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    example=_flow_path_example,
    doc="Read a .flo optical-flow file.",
)


class VideoCaptureHandle(DataObject):
    """Handle to an open capture device or video file."""

    kind = "video_capture"

    def __init__(self, source: Any = 0) -> None:
        super().__init__(None)
        self.source = source
        self.opened = True


def _VideoCapture(ctx: ExecutionContext, source: Any = 0) -> VideoCaptureHandle:
    ctx.syscall("openat", path="/dev/video0")
    ctx.syscall("ioctl", fd=ctx.kernel.devices.camera.fd)
    ctx.syscall("mmap")
    ctx.kernel.devices.camera.open()
    ctx.record_flow(load_flow(source=Storage.DEV, label="camera"))
    return VideoCaptureHandle(source)


def _capture_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((0,), {})


_register(
    "VideoCapture", _VideoCapture, APIType.LOADING,
    flows=(load_flow(source=Storage.DEV),),
    syscalls=("openat", "ioctl", "mmap", "brk"),
    base_cost_ns=100_000,
    example=_capture_example,
    doc="Open a camera or video stream.",
)


def _VideoCapture_read(
    ctx: ExecutionContext, capture: VideoCaptureHandle
) -> Optional[Frame]:
    frame = ctx.camera_frame()
    if frame is None:
        return None
    frame = ctx.guard(frame)
    index = ctx.kernel.devices.camera.frames_read
    return Frame(as_array(frame).astype(np.float64), index=index)


def _capture_read_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    ctx.kernel.devices.camera.open()
    return ((VideoCaptureHandle(0),), {})


_register(
    "VideoCapture_read", _VideoCapture_read, APIType.LOADING,
    flows=(load_flow(source=Storage.DEV),),
    syscalls=_CAMERA_SYSCALLS,
    base_cost_ns=40_000,
    example=_capture_read_example,
    doc="Grab and decode the next frame.",
)


def _VideoCapture_grab(ctx: ExecutionContext, capture: VideoCaptureHandle) -> bool:
    frame = ctx.camera_frame()
    return frame is not None


_register(
    "VideoCapture_grab", _VideoCapture_grab, APIType.LOADING,
    flows=(load_flow(source=Storage.DEV),),
    syscalls=_CAMERA_SYSCALLS,
    base_cost_ns=15_000,
    example=_capture_read_example,
    doc="Grab the next frame without decoding it.",
)


def _FileStorage_read(ctx: ExecutionContext, path: str) -> Any:
    return ctx.guard(ctx.read_file(path))


def _xml_path_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_XML_PATH,), {})


_register(
    "FileStorage_read", _FileStorage_read, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    example=_xml_path_example,
    doc="Read a persisted YAML/XML structure.",
)


def _CascadeClassifier_load(
    ctx: ExecutionContext, classifier: Model, path: str
) -> bool:
    payload = ctx.guard(ctx.read_file(path))
    if isinstance(payload, dict):
        classifier.data.update(payload)
    return True


def _classifier_load_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((Model({"threshold": 150.0}, architecture="cascade"), _SAMPLE_XML_PATH), {})


_register(
    "CascadeClassifier_load", _CascadeClassifier_load, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    base_cost_ns=70_000,
    example=_classifier_load_example,
    doc="Load cascade parameters from an XML file.",
)


# ----------------------------------------------------------------------
# Data processing APIs — detection / structural (hand-written)
# ----------------------------------------------------------------------


def _CascadeClassifier(ctx: ExecutionContext, name: str = "cascade") -> Model:
    ctx.mem_compute(nbytes=256)
    return Model({"threshold": 150.0, "min_area": 2}, architecture=name)


def _classifier_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("cascade",), {})


_register(
    "CascadeClassifier", _CascadeClassifier, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    example=_classifier_example,
    doc="Construct an (empty) cascade classifier object.",
)


def _detect_regions(
    gray: np.ndarray, threshold: float, min_area: int
) -> List[Tuple[int, int, int, int]]:
    mask = gray >= threshold
    labelled, count = ndimage.label(mask)
    rects = []
    for slc in ndimage.find_objects(labelled):
        if slc is None:
            continue
        y, x = slc[0], slc[1]
        h, w = y.stop - y.start, x.stop - x.start
        if h * w >= min_area:
            rects.append((int(x.start), int(y.start), int(w), int(h)))
    return rects


def _detectMultiScale(
    ctx: ExecutionContext, classifier: Model, image: Any, **kwargs: Any
) -> List[Tuple[int, int, int, int]]:
    image = ctx.guard(image)
    gray = _gray(image)
    threshold = float(classifier.data.get("threshold", 150.0))
    min_area = int(classifier.data.get("min_area", 2))
    rects = _detect_regions(gray, threshold, min_area)
    ctx.mem_compute(nbytes=int(gray.nbytes))
    return rects


def _detect_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (
        (Model({"threshold": 150.0, "min_area": 2}), Mat(sample_image(5))),
        {},
    )


_register(
    "CascadeClassifier_detectMultiScale", _detectMultiScale, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    base_cost_ns=120_000,
    cost_ns_per_byte=0.15,
    example=_detect_example,
    doc="Detect objects at multiple scales (region proposal on bright blobs).",
)


def _findContours(ctx: ExecutionContext, image: Any) -> List[np.ndarray]:
    gray = _gray(ctx.guard(image))
    mask = gray > gray.mean()
    labelled, count = ndimage.label(mask)
    contours = []
    for slc in ndimage.find_objects(labelled):
        if slc is None:
            continue
        y, x = slc
        contour = np.array(
            [
                [x.start, y.start],
                [x.stop - 1, y.start],
                [x.stop - 1, y.stop - 1],
                [x.start, y.stop - 1],
            ],
            dtype=np.int64,
        )
        contours.append(contour)
    ctx.mem_compute(nbytes=int(gray.nbytes))
    return contours


_mat_registered_specially = _register(
    "findContours", _findContours, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    base_cost_ns=90_000,
    example=_mat_example,
    doc="Find contours of thresholded regions (rectangular approximation).",
)


def _matchTemplate(ctx: ExecutionContext, image: Any, template: Any) -> Mat:
    from scipy import signal

    img = _gray(ctx.guard(image))
    tpl = _gray(ctx.guard(template))
    tpl = tpl[: img.shape[0], : img.shape[1]]
    response = signal.fftconvolve(img, tpl[::-1, ::-1], mode="valid")
    ctx.mem_compute(nbytes=int(response.nbytes))
    return Mat(response)


def _template_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((Mat(sample_image(6)), Mat(sample_image(7, size=4))), {})


_register(
    "matchTemplate", _matchTemplate, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    base_cost_ns=150_000,
    cost_ns_per_byte=0.2,
    example=_template_example,
    doc="Cross-correlation template matching.",
)


def _kmeans(ctx: ExecutionContext, data: Any, k: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    points = _float(ctx.guard(data)).reshape(-1, 1)
    k = max(1, min(int(k), len(points)))
    centers = points[np.linspace(0, len(points) - 1, k).astype(int)].copy()
    labels = np.zeros(len(points), dtype=np.int64)
    for _ in range(3):
        distances = np.abs(points - centers.reshape(1, -1, 1)[0].T)
        labels = np.argmin(distances, axis=1)
        for idx in range(k):
            members = points[labels == idx]
            if len(members):
                centers[idx] = members.mean(axis=0)
    ctx.mem_compute(nbytes=int(points.nbytes))
    return labels, centers


def _kmeans_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((Mat(sample_image(9)), 2), {})


_register(
    "kmeans", _kmeans, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=_PROC_SYSCALLS,
    base_cost_ns=100_000,
    example=_kmeans_example,
    doc="Lloyd's k-means on flattened pixel intensities.",
)


def _draw_rectangle(image: Any, pt1=(2, 2), pt2=(10, 10), color=255.0, thickness=1) -> np.ndarray:
    arr = _float(image).copy()
    if arr.ndim < 2:
        arr = np.atleast_2d(arr)
    x1, y1 = int(pt1[0]), int(pt1[1])
    x2, y2 = int(pt2[0]), int(pt2[1])
    x1, x2 = sorted((max(x1, 0), min(x2, arr.shape[1] - 1)))
    y1, y2 = sorted((max(y1, 0), min(y2, arr.shape[0] - 1)))
    arr[y1:y1 + thickness, x1:x2 + 1] = color
    arr[y2:y2 + 1, x1:x2 + 1] = color
    arr[y1:y2 + 1, x1:x1 + thickness] = color
    arr[y1:y2 + 1, x2:x2 + 1] = color
    return arr


def _stamp_text(image: Any, text: str = "", org=(1, 1), color=255.0) -> np.ndarray:
    arr = _float(image).copy()
    if arr.ndim < 2:
        arr = np.atleast_2d(arr)
    x, y = int(org[0]), int(org[1])
    length = min(max(len(str(text)), 1) * 2, arr.shape[1] - x - 1)
    if 0 <= y < arr.shape[0] and length > 0:
        arr[y, x:x + length] = color
    return arr


# ----------------------------------------------------------------------
# Data processing APIs — table-driven Mat operators
# ----------------------------------------------------------------------


def _threshold(image: Any, thresh: float = 127.0, maxval: float = 255.0) -> np.ndarray:
    arr = _float(image)
    return np.where(arr > thresh, maxval, 0.0)


def _adaptive_threshold(image: Any, maxval: float = 255.0, block: int = 3) -> np.ndarray:
    arr = _gray(image)
    local_mean = ndimage.uniform_filter(arr, size=max(3, block))
    return np.where(arr > local_mean, maxval, 0.0)


def _canny(image: Any, low: float = 50.0, high: float = 150.0) -> np.ndarray:
    arr = _gray(image)
    gx = ndimage.sobel(arr, axis=1)
    gy = ndimage.sobel(arr, axis=0)
    magnitude = np.hypot(gx, gy)
    return np.where(magnitude > high, 255.0, np.where(magnitude > low, 128.0, 0.0))


def _morphology_ex(image: Any, op: str = "open", size: int = 3) -> np.ndarray:
    arr = _gray(image)
    if op in ("open", 2):
        return ndimage.grey_dilation(ndimage.grey_erosion(arr, size=size), size=size)
    if op in ("close", 3):
        return ndimage.grey_erosion(ndimage.grey_dilation(arr, size=size), size=size)
    if op in ("gradient", 4):
        return ndimage.grey_dilation(arr, size=size) - ndimage.grey_erosion(arr, size=size)
    return ndimage.grey_erosion(arr, size=size)


def _warp_perspective(image: Any, matrix: Any = None, **kwargs: Any) -> np.ndarray:
    arr = _gray(image)
    if matrix is None:
        matrix = np.eye(3)
    m = as_array(matrix).astype(np.float64)
    affine = m[:2, :2]
    offset = m[:2, 2]
    scale = m[2, 2] if m.shape == (3, 3) and m[2, 2] != 0 else 1.0
    return ndimage.affine_transform(arr, affine / scale, offset=offset, order=1)


def _get_perspective_transform(src: Any, dst: Any) -> np.ndarray:
    src_pts = _float(src).reshape(-1, 2)[:4]
    dst_pts = _float(dst).reshape(-1, 2)[:4]
    shift = dst_pts.mean(axis=0) - src_pts.mean(axis=0)
    matrix = np.eye(3)
    matrix[:2, 2] = shift
    return matrix


def _get_rotation_matrix(center: Any = (8, 8), angle: float = 90.0, scale: float = 1.0) -> np.ndarray:
    theta = np.deg2rad(float(angle))
    alpha, beta = scale * np.cos(theta), scale * np.sin(theta)
    cx, cy = float(center[0]), float(center[1])
    return np.array(
        [
            [alpha, beta, (1 - alpha) * cx - beta * cy],
            [-beta, alpha, beta * cx + (1 - alpha) * cy],
        ]
    )


def _calc_hist(image: Any, bins: int = 16) -> np.ndarray:
    hist, _ = np.histogram(_gray(image), bins=bins, range=(0, 256))
    return hist.astype(np.float64)


def _equalize_hist(image: Any) -> np.ndarray:
    arr = _gray(image)
    hist, bin_edges = np.histogram(arr, bins=256, range=(0, 256))
    cdf = hist.cumsum().astype(np.float64)
    if cdf[-1] == 0:
        return arr
    cdf = 255.0 * cdf / cdf[-1]
    return np.interp(arr.ravel(), bin_edges[:-1], cdf).reshape(arr.shape)


def _hough_lines(image: Any, threshold: float = 100.0) -> np.ndarray:
    edges = _canny(image)
    rows = np.where(edges.sum(axis=1) > threshold)[0]
    return np.array([[r, 0.0] for r in rows], dtype=np.float64)


def _hough_circles(image: Any) -> np.ndarray:
    gray = _gray(image)
    cy, cx = np.unravel_index(np.argmax(gray), gray.shape)
    return np.array([[cx, cy, 3.0]], dtype=np.float64)


def _good_features(image: Any, max_corners: int = 8) -> np.ndarray:
    gray = _gray(image)
    response = np.abs(ndimage.laplace(gray))
    flat = np.argsort(response.ravel())[::-1][:max_corners]
    ys, xs = np.unravel_index(flat, gray.shape)
    return np.stack([xs, ys], axis=1).astype(np.float64)


def _optical_flow_farneback(prev: Any, curr: Any) -> np.ndarray:
    a, b = _gray(prev), _gray(curr)
    b = b[: a.shape[0], : a.shape[1]]
    a = a[: b.shape[0], : b.shape[1]]
    diff = b - a
    gy, gx = np.gradient(a)
    denom = gx ** 2 + gy ** 2 + 1e-6
    return np.stack([-diff * gx / denom, -diff * gy / denom], axis=-1)


def _connected_components(image: Any) -> Tuple[int, np.ndarray]:
    gray = _gray(image)
    labelled, count = ndimage.label(gray > gray.mean())
    return int(count), labelled


def _flood_fill(image: Any, seed=(0, 0), value: float = 255.0) -> np.ndarray:
    arr = _gray(image).copy()
    target = arr[int(seed[1]), int(seed[0])]
    mask = np.isclose(arr, target)
    labelled, _ = ndimage.label(mask)
    region = labelled == labelled[int(seed[1]), int(seed[0])]
    arr[region] = value
    return arr


def _pca_compute(data: Any, components: int = 2) -> np.ndarray:
    arr = _float(data).reshape(-1, max(1, np.shape(data)[-1] if np.ndim(data) > 1 else 1))
    centered = arr - arr.mean(axis=0)
    cov = centered.T @ centered
    eigvals, eigvecs = np.linalg.eigh(cov)
    return eigvecs[:, ::-1][:, :components]


_SIMPLE_MAT_OPS: Dict[str, Callable[..., Any]] = {
    "GaussianBlur": lambda img, sigma=1.0: ndimage.gaussian_filter(_float(img), sigma=sigma),
    "blur": lambda img, size=3: ndimage.uniform_filter(_float(img), size=size),
    "medianBlur": lambda img, size=3: ndimage.median_filter(_float(img), size=size),
    "bilateralFilter": lambda img, sigma=1.0: ndimage.gaussian_filter(_float(img), sigma=sigma),
    "boxFilter": lambda img, size=3: ndimage.uniform_filter(_float(img), size=size),
    "erode": lambda img, size=3: ndimage.grey_erosion(_gray(img), size=size),
    "dilate": lambda img, size=3: ndimage.grey_dilation(_gray(img), size=size),
    "morphologyEx": _morphology_ex,
    "getStructuringElement": lambda shape=0, size=3: np.ones((int(size), int(size))),
    "threshold": _threshold,
    "adaptiveThreshold": _adaptive_threshold,
    "inRange": lambda img, low=50.0, high=200.0: (
        ((_gray(img) >= low) & (_gray(img) <= high)) * 255.0
    ),
    "Canny": _canny,
    "Sobel": lambda img, axis=0: ndimage.sobel(_gray(img), axis=axis),
    "Scharr": lambda img, axis=0: ndimage.sobel(_gray(img), axis=axis) * 1.25,
    "Laplacian": lambda img: ndimage.laplace(_gray(img)),
    "filter2D": lambda img: ndimage.convolve(_gray(img), np.full((3, 3), 1 / 9.0)),
    "sepFilter2D": lambda img: ndimage.uniform_filter1d(
        ndimage.uniform_filter1d(_gray(img), 3, axis=0), 3, axis=1
    ),
    "pyrDown": lambda img: ndimage.zoom(_gray(img), 0.5, order=1),
    "pyrUp": lambda img: ndimage.zoom(_gray(img), 2.0, order=1),
    "resize": lambda img, fx=0.5, fy=0.5: ndimage.zoom(_gray(img), (fy, fx), order=1),
    "warpAffine": lambda img, m=None: _warp_perspective(img, m),
    "warpPerspective": _warp_perspective,
    "getPerspectiveTransform": _get_perspective_transform,
    "getAffineTransform": _get_perspective_transform,
    "getRotationMatrix2D": _get_rotation_matrix,
    "remap": lambda img: np.flip(_gray(img), axis=0),
    "undistort": lambda img: ndimage.gaussian_filter(_gray(img), sigma=0.5),
    "flip": lambda img, code=0: np.flip(_float(img), axis=int(code)),
    "rotate": lambda img, code=0: np.rot90(_float(img), k=int(code) + 1),
    "transpose": lambda img: np.swapaxes(_float(img), 0, 1),
    "normalize": lambda img: (_float(img) - _float(img).min())
    / (np.ptp(_float(img)) + 1e-9),
    "equalizeHist": _equalize_hist,
    "calcHist": _calc_hist,
    "compareHist": lambda a, b: float(
        np.corrcoef(_calc_hist(a), _calc_hist(b))[0, 1]
    ),
    "addWeighted": lambda a, b, alpha=0.5, beta=0.5: alpha * _float(a)
    + beta * _float(b)[: np.shape(_float(a))[0]],
    "add": lambda a, b: _float(a) + _float(b),
    "subtract": lambda a, b: _float(a) - _float(b),
    "multiply": lambda a, b: _float(a) * _float(b),
    "divide": lambda a, b: _float(a) / (_float(b) + 1e-9),
    "absdiff": lambda a, b: np.abs(_float(a) - _float(b)),
    "bitwise_and": lambda a, b: np.minimum(_float(a), _float(b)),
    "bitwise_or": lambda a, b: np.maximum(_float(a), _float(b)),
    "bitwise_xor": lambda a, b: np.abs(_float(a) - _float(b)),
    "bitwise_not": lambda a: 255.0 - _float(a),
    "minMaxLoc": lambda a: (
        float(_gray(a).min()),
        float(_gray(a).max()),
    ),
    "mean": lambda a: float(_float(a).mean()),
    "meanStdDev": lambda a: (float(_float(a).mean()), float(_float(a).std())),
    "reduce": lambda a, axis=0: _float(a).sum(axis=int(axis)),
    "split": lambda a: [
        np.atleast_3d(_float(a))[..., c].copy()
        for c in range(np.atleast_3d(_float(a)).shape[2])
    ],
    "merge": lambda a: np.stack([_gray(a), _gray(a), _gray(a)], axis=-1),
    "LUT": lambda a: 255.0 - np.clip(_float(a), 0, 255),
    "drawContours": lambda img: _draw_rectangle(img),
    "contourArea": lambda contour: float(
        abs(
            (as_array(contour)[:, 0].max() - as_array(contour)[:, 0].min())
            * (as_array(contour)[:, 1].max() - as_array(contour)[:, 1].min())
        )
    ),
    "arcLength": lambda contour: float(
        2
        * (
            (as_array(contour)[:, 0].max() - as_array(contour)[:, 0].min())
            + (as_array(contour)[:, 1].max() - as_array(contour)[:, 1].min())
        )
    ),
    "boundingRect": lambda contour: (
        int(as_array(contour)[:, 0].min()),
        int(as_array(contour)[:, 1].min()),
        int(np.ptp(as_array(contour)[:, 0]) + 1),
        int(np.ptp(as_array(contour)[:, 1]) + 1),
    ),
    "minAreaRect": lambda contour: (
        (float(as_array(contour)[:, 0].mean()), float(as_array(contour)[:, 1].mean())),
        (float(np.ptp(as_array(contour)[:, 0]) + 1), float(np.ptp(as_array(contour)[:, 1]) + 1)),
        0.0,
    ),
    "convexHull": lambda contour: as_array(contour).astype(np.float64),
    "approxPolyDP": lambda contour, eps=1.0: as_array(contour)[::2].astype(np.float64),
    "moments": lambda img: {
        "m00": float(_gray(img).sum()),
        "m10": float((np.arange(_gray(img).shape[1]) * _gray(img)).sum()),
        "m01": float((np.arange(_gray(img).shape[0])[:, None] * _gray(img)).sum()),
    },
    "fitLine": lambda pts: np.array([1.0, 0.0, float(_float(pts).mean()), 0.0]),
    "HoughLines": _hough_lines,
    "HoughCircles": _hough_circles,
    "cornerHarris": lambda img: np.abs(ndimage.laplace(_gray(img))),
    "goodFeaturesToTrack": _good_features,
    "distanceTransform": lambda img: ndimage.distance_transform_edt(_gray(img) > 0),
    "floodFill": _flood_fill,
    "integral": lambda img: _gray(img).cumsum(axis=0).cumsum(axis=1),
    "dft": lambda img: np.abs(np.fft.fft2(_gray(img))),
    "idft": lambda img: np.abs(np.fft.ifft2(_gray(img))),
    "rectangle": _draw_rectangle,
    "putText": _stamp_text,
    "line": lambda img: _draw_rectangle(img, (0, 0), (np.shape(_gray(img))[1] - 1, 0)),
    "circle": lambda img: _draw_rectangle(img, (4, 4), (8, 8)),
    "calcOpticalFlowFarneback": _optical_flow_farneback,
    "calcOpticalFlowPyrLK": _optical_flow_farneback,
    "BackgroundSubtractorMOG2_apply": lambda img: (
        (_gray(img) > _gray(img).mean()) * 255.0
    ),
    "connectedComponents": _connected_components,
    "PCACompute": _pca_compute,
    "solve": lambda a: np.linalg.pinv(
        _gray(a) + 1e-3 * np.eye(_gray(a).shape[0], _gray(a).shape[1])
    ),
    "invert": lambda a: np.linalg.pinv(_gray(a)),
    "gemm": lambda a, b: _gray(a) @ _gray(b).T,
    "perspectiveTransform": lambda pts, m=None: _float(pts) + 1.0,
    "convertScaleAbs": lambda img, alpha=1.0, beta=0.0: np.abs(alpha * _float(img) + beta),
    "copyMakeBorder": lambda img, pad=1: np.pad(_gray(img), int(pad), mode="edge"),
}

#: Operators that need two Mat arguments in their test case.
_TWO_MAT_NAMES = {
    "compareHist", "addWeighted", "add", "subtract", "multiply", "divide",
    "absdiff", "bitwise_and", "bitwise_or", "bitwise_xor",
    "calcOpticalFlowFarneback", "calcOpticalFlowPyrLK", "gemm",
    "getPerspectiveTransform", "getAffineTransform",
}

#: Operators whose test case is a contour array rather than an image.
_CONTOUR_NAMES = {
    "contourArea", "arcLength", "boundingRect", "minAreaRect",
    "convexHull", "approxPolyDP", "fitLine",
}

#: APIs intentionally left without a dynamic test case (Table 11: the
#: coverage of OpenCV's dynamic analysis is ~80%, and the paper notes the
#: uncovered APIs are not used by any evaluated program).
_UNCOVERED = {
    "grabCut", "watershed", "stereoBM", "stereoSGBM", "seamlessClone",
    "detailEnhance", "stylization", "edgePreservingFilter",
    "createCLAHE", "decolor", "pencilSketch", "colorChange",
    "illuminationChange", "textureFlattening", "inpaint",
    "fastNlMeansDenoising", "anisotropicDiffusion", "findChessboardCorners",
    "calibrateCamera", "solvePnP", "estimateAffine2D", "findHomography",
}


def _contour_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    contour = np.array([[1, 1], [6, 1], [6, 5], [1, 5]], dtype=np.int64)
    return ((contour,), {})


def _no_cover_op(name: str) -> Callable[..., Any]:
    def fallback(img: Any = None, *args: Any, **kwargs: Any) -> np.ndarray:
        return _gray(img if img is not None else np.zeros((4, 4)))

    return fallback


for _name, _fn in _SIMPLE_MAT_OPS.items():
    if _name in _TWO_MAT_NAMES:
        _example = _two_mat_example
    elif _name in _CONTOUR_NAMES:
        _example = _contour_example
    elif _name == "getStructuringElement":
        _example = _no_arg_example
    elif _name == "getRotationMatrix2D":
        _example = _no_arg_example
    else:
        _example = _mat_example
    _mat_op(_name, _fn, example=_example)

for _name in sorted(_UNCOVERED):
    _mat_op(_name, _no_cover_op(_name), example=None)

# Type-neutral utility APIs (Section 4.2): memory-to-memory helpers that
# are used adjacent to every other type; their partition placement follows
# their calling context.
_mat_op("cvtColor", lambda img, code=0: _gray(img), neutral=True,
        doc="Color-space conversion (type-neutral).")
_mat_op("copyTo", lambda img: _float(img).copy(), neutral=True,
        doc="Deep copy of a Mat (type-neutral).")
_mat_op("cvCreateMemStorage", lambda size=0: np.zeros(max(int(size), 1)),
        neutral=True, example=_no_arg_example,
        doc="Legacy memory-pool allocator (type-neutral).")
_mat_op("cvAlloc", lambda size=16: np.zeros(int(size)), neutral=True,
        example=_no_arg_example, doc="Legacy allocator (type-neutral).")


# ----------------------------------------------------------------------
# Visualizing APIs
# ----------------------------------------------------------------------


def _namedWindow(ctx: ExecutionContext, name: str) -> None:
    ctx.gui_write(label=name)
    ctx.kernel.gui.named_window(name)


_register(
    "namedWindow", _namedWindow, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    stateful=StatefulKind.GUI_STATE,
    example=_name_only_example,
    doc="Create a named window.",
)


def _imshow(ctx: ExecutionContext, name: str, image: Any) -> None:
    image = ctx.guard(image)
    ctx.gui_show(name, as_array(image).copy())


_register(
    "imshow", _imshow, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    stateful=StatefulKind.GUI_STATE,
    base_cost_ns=50_000,
    example=_window_example,
    doc="Display an image in a window.",
)


def _moveWindow(ctx: ExecutionContext, name: str, x: int = 0, y: int = 0) -> None:
    ctx.gui_write(label=name)
    ctx.kernel.gui.named_window(name)
    ctx.kernel.gui.move_window(name, x, y)


def _move_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("test-window", 5, 5), {})


_register(
    "moveWindow", _moveWindow, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    stateful=StatefulKind.GUI_STATE,
    example=_move_example,
    doc="Move a window.",
)


def _resizeWindow(ctx: ExecutionContext, name: str, w: int = 64, h: int = 64) -> None:
    ctx.gui_write(label=name)
    ctx.kernel.gui.named_window(name)


_register(
    "resizeWindow", _resizeWindow, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    stateful=StatefulKind.GUI_STATE,
    example=_move_example,
    doc="Resize a window.",
)


def _setWindowTitle(ctx: ExecutionContext, name: str, title: str = "") -> None:
    ctx.gui_write(label=name)
    ctx.kernel.gui.set_title(name, title)


def _title_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("test-window", "title"), {})


_register(
    "setWindowTitle", _setWindowTitle, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    stateful=StatefulKind.GUI_STATE,
    example=_title_example,
    doc="Set a window's title.",
)


def _destroyWindow(ctx: ExecutionContext, name: str) -> None:
    ctx.gui_write(label=name)
    ctx.kernel.gui.windows.pop(name, None)


_register(
    "destroyWindow", _destroyWindow, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    stateful=StatefulKind.GUI_STATE,
    example=_name_only_example,
    doc="Destroy one window.",
)


def _destroyAllWindows(ctx: ExecutionContext) -> int:
    ctx.gui_write(label="*")
    return ctx.kernel.gui.destroy_all()


_register(
    "destroyAllWindows", _destroyAllWindows, APIType.VISUALIZING,
    flows=(visualize_flow(),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    stateful=StatefulKind.GUI_STATE,
    example=_no_arg_example,
    doc="Destroy every window.",
)


def _pollKey(ctx: ExecutionContext) -> str:
    ctx.gui_access(label="keys")
    return ctx.kernel.gui.poll_key()


_register(
    "pollKey", _pollKey, APIType.VISUALIZING,
    flows=(read(Storage.GUI),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    base_cost_ns=8_000,
    example=_no_arg_example,
    doc="Poll for a pressed key.",
)


def _waitKey(ctx: ExecutionContext, delay: int = 0) -> str:
    ctx.gui_access(label="keys")
    return ctx.kernel.gui.poll_key()


_register(
    "waitKey", _waitKey, APIType.VISUALIZING,
    flows=(read(Storage.GUI),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    base_cost_ns=8_000,
    example=_no_arg_example,
    doc="Wait for a pressed key.",
)


def _getMouseWheelDelta(ctx: ExecutionContext) -> int:
    ctx.gui_access(label="mouse")
    return 0


_register(
    "getMouseWheelDelta", _getMouseWheelDelta, APIType.VISUALIZING,
    flows=(read(Storage.GUI),),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    base_cost_ns=5_000,
    example=_no_arg_example,
    doc="Read the mouse-wheel delta.",
)


def _selectROI(ctx: ExecutionContext, name: str, image: Any) -> Tuple[int, int, int, int]:
    image = ctx.guard(image)
    ctx.gui_show(name, as_array(image).copy())
    ctx.gui_access(label=name)
    h, w = _gray(image).shape[:2]
    return (0, 0, w // 2, h // 2)


_register(
    "selectROI", _selectROI, APIType.VISUALIZING,
    flows=(visualize_flow(), read(Storage.GUI)),
    syscalls=_GUI_SYSCALLS,
    init_syscalls=_GUI_INIT_SYSCALLS,
    example=_window_example,
    doc="Interactively select a region of interest.",
)


# ----------------------------------------------------------------------
# Storing APIs
# ----------------------------------------------------------------------


def _imwrite(ctx: ExecutionContext, path: str, image: Any) -> bool:
    image = ctx.guard(image)
    ctx.write_file(path, as_array(image).copy())
    return True


_register(
    "imwrite", _imwrite, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    base_cost_ns=60_000,
    example=_store_example,
    doc="Encode and write an image file.",
)


def _imwritemulti(ctx: ExecutionContext, path: str, images: Any) -> bool:
    arrays = [as_array(ctx.guard(i)).copy() for i in images]
    ctx.write_file(path, arrays)
    return True


def _store_multi_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("/out/opencv/multi-out.tiff", [Mat(sample_image(11))]), {})


_register(
    "imwritemulti", _imwritemulti, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    base_cost_ns=90_000,
    example=_store_multi_example,
    doc="Write a multi-page image file.",
)


class VideoWriterHandle(DataObject):
    """Handle accumulating frames for one output video file."""

    kind = "video_writer"

    def __init__(self, path: str) -> None:
        super().__init__([])
        self.path = path


def _VideoWriter(ctx: ExecutionContext, path: str) -> VideoWriterHandle:
    ctx.write_file(path, [])
    return VideoWriterHandle(path)


def _writer_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("/out/opencv/out.avi",), {})


_register(
    "VideoWriter", _VideoWriter, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    stateful=StatefulKind.DATA_STATE,
    example=_writer_example,
    doc="Open a video file for writing.",
)


def _VideoWriter_write(
    ctx: ExecutionContext, writer: VideoWriterHandle, frame: Any
) -> None:
    frame = ctx.guard(frame)
    writer.data.append(as_array(frame).copy())
    ctx.write_file(writer.path, list(writer.data))


def _writer_write_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((VideoWriterHandle("/out/opencv/out.avi"), Mat(sample_image(12))), {})


_register(
    "VideoWriter_write", _VideoWriter_write, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    stateful=StatefulKind.DATA_STATE,
    base_cost_ns=45_000,
    example=_writer_write_example,
    doc="Append a frame to an output video.",
)


def _writeOpticalFlow(ctx: ExecutionContext, path: str, flow: Any) -> bool:
    flow = ctx.guard(flow)
    ctx.write_file(path, as_array(flow).copy())
    return True


def _flow_store_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("/out/opencv/out.flo", Mat(sample_image(13)[:, :, :2])), {})


_register(
    "writeOpticalFlow", _writeOpticalFlow, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    example=_flow_store_example,
    doc="Write a .flo optical-flow file.",
)
