"""Per-API-type system-call pools (Table 7 / Fig. 12).

The paper builds each agent's seccomp allowlist as the union of the
syscalls required by the framework APIs running in that agent, and
reports the resulting per-type list sizes for OpenCV: **43** for loading,
**22** for processing, **56** for visualizing, and **27** for storing
(Table 7).

The pools below are those unions.  Individual :class:`APISpec` records
declare the (much smaller, ~6-entry) sets their implementations actually
issue; the pool adds the calls required by framework-internal machinery
(thread pools, allocators, windowing toolkits) that the union across a
full framework picks up.  A unit test asserts that every syscall an API
actually executes is contained in its declared set, and every declared
set in its type's pool.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.apitypes import APIType
from repro.sim.syscalls import validate_names

LOADING_POOL: FrozenSet[str] = frozenset(validate_names([
    "openat", "open", "close", "read", "pread64", "readv",
    "fstat", "stat", "lstat", "newfstatat", "statx", "lseek",
    "brk", "mmap", "munmap", "madvise", "futex",
    "ioctl", "select", "poll", "ppoll",
    "epoll_create1", "epoll_ctl", "epoll_wait",
    "socket", "connect", "bind", "listen", "accept",
    "recvfrom", "recvmsg", "getsockname", "getsockopt", "setsockopt",
    "getcwd", "getdents64", "mkdir", "access", "faccessat", "memfd_create",
    "getpid", "getrandom", "clock_gettime",
]))

PROCESSING_POOL: FrozenSet[str] = frozenset(validate_names([
    "openat", "open", "read", "close", "fstat", "lseek",
    "brk", "mmap", "munmap", "mremap", "madvise", "futex",
    "getrandom", "gettimeofday", "clock_gettime", "sched_yield",
    "getpid", "sysinfo", "times", "getcwd", "prlimit64",
    "sched_getaffinity",
]))

VISUALIZING_POOL: FrozenSet[str] = frozenset(validate_names([
    "connect", "socket", "sendto", "sendmsg", "recvfrom", "recvmsg",
    "select", "poll", "ppoll",
    "epoll_create", "epoll_create1", "epoll_ctl", "epoll_wait",
    "eventfd2", "futex",
    "openat", "open", "close", "read", "write", "fstat", "stat", "lseek",
    "brk", "mmap", "munmap", "access",
    "getuid", "getgid", "geteuid", "getegid", "getpid", "getppid",
    "getcwd", "getrandom", "clock_gettime", "gettimeofday",
    "nanosleep", "clock_nanosleep",
    "pipe2", "dup", "dup3", "fcntl", "ioctl", "readlink", "getdents64",
    "memfd_create", "shmget", "shmat", "shmctl",
    "uname", "sysinfo",
    "getsockname", "getpeername", "setsockopt", "getsockopt",
]))

STORING_POOL: FrozenSet[str] = frozenset(validate_names([
    "openat", "open", "close", "write", "pwrite64", "writev",
    "fsync", "fdatasync", "fstat", "stat", "lstat", "lseek",
    "brk", "mmap", "munmap", "futex",
    "mkdir", "mkdirat", "rename", "unlink", "unlinkat", "umask",
    "uname", "access", "getcwd", "dup", "accept",
]))

POOLS: Dict[APIType, FrozenSet[str]] = {
    APIType.LOADING: LOADING_POOL,
    APIType.PROCESSING: PROCESSING_POOL,
    APIType.VISUALIZING: VISUALIZING_POOL,
    APIType.STORING: STORING_POOL,
}

#: Syscalls that only occur during first execution of some APIs and are
#: permitted solely during the initialization grace phase (Section 4.4.1).
INIT_ONLY_SYSCALLS: FrozenSet[str] = frozenset({"mprotect", "connect"})


def pool_for(api_type: APIType) -> FrozenSet[str]:
    """The paper's Table 7 allowlist for one API type."""
    try:
        return POOLS[api_type]
    except KeyError:
        raise ValueError(f"no syscall pool for {api_type}") from None
