"""minitf — the TensorFlow analogue.

Loading (``get_file`` downloads through a cache file and is categorized
as loading via the copy-via-file reduction of Section 4.2.1), a large
processing surface (shared operator library under ``tf.*`` qualnames plus
estimator training, which is the paper's canonical *stateful* processing
API), and storing (weights/images).  TensorFlow has no visualizing APIs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.apitypes import APIType
from repro.core.dataflow import Storage, load_flow, process_flow, store_flow
from repro.frameworks._oplib import (
    BINARY_OPS,
    NN_OPS,
    PROCESSING_SYSCALLS,
    REDUCTION_OPS,
    SHAPE_OPS,
    UNARY_OPS,
    as_array,
    register_tensor_ops,
)
from repro.frameworks.base import (
    APISpec,
    ExecutionContext,
    Framework,
    Model,
    StatefulKind,
    Tensor,
)

TENSORFLOW = Framework("tensorflow", version="2.4")

_FILE_LOAD_SYSCALLS = ("openat", "fstat", "read", "close", "brk", "lseek")
_NET_LOAD_SYSCALLS = ("socket", "connect", "recvfrom", "memfd_create", "read", "close", "brk")
_STORE_SYSCALLS = ("openat", "write", "close", "brk")

_SAMPLE_DATASET_DIR = "/testdata/tensorflow/images"
_SAMPLE_MODEL_PATH = "/testdata/tensorflow/saved_model"
_DATASET_URL = "https://datasets.example/flowers.tgz"


def sample_tensor(seed: int = 22, size: int = 12) -> Tensor:
    """A deterministic test tensor."""
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=(size, size)))


def _ensure_sample_files(ctx: ExecutionContext) -> None:
    fs = ctx.kernel.fs
    if not fs.exists(f"{_SAMPLE_DATASET_DIR}/index"):
        rng = np.random.default_rng(42)
        fs.write_file(f"{_SAMPLE_DATASET_DIR}/index", ["img-0", "img-1"])
        for i in range(2):
            fs.write_file(f"{_SAMPLE_DATASET_DIR}/img-{i}", rng.normal(size=(8, 8, 3)))
    if not fs.exists(_SAMPLE_MODEL_PATH):
        rng = np.random.default_rng(43)
        fs.write_file(
            _SAMPLE_MODEL_PATH,
            Model({"dense.kernel": rng.normal(size=(4, 4))}, architecture="keras"),
        )
    network = ctx.kernel.devices.network
    try:
        network.download(_DATASET_URL)
    except Exception:
        rng = np.random.default_rng(44)
        network.host_content(_DATASET_URL, rng.normal(size=(8, 8)))


def _tensor_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((sample_tensor(),), {})


register_tensor_ops(
    TENSORFLOW,
    families=[UNARY_OPS, REDUCTION_OPS, BINARY_OPS, SHAPE_OPS, NN_OPS],
    qualprefixes=["tf", "tf", "tf.math", "tf", "tf.nn"],
    object_cls=Tensor,
    example_args=_tensor_example,
)


def _register(
    name: str,
    impl,
    api_type: APIType,
    flows: tuple,
    syscalls: tuple,
    qualname: Optional[str] = None,
    stateful: StatefulKind = StatefulKind.STATELESS,
    static_opaque: bool = False,
    base_cost_ns: int = 40_000,
    example=None,
    doc: str = "",
) -> None:
    spec = APISpec(
        name=name,
        framework="tensorflow",
        qualname=qualname or f"tf.{name}",
        ground_truth=api_type,
        flows=flows,
        syscalls=syscalls,
        stateful=stateful,
        static_opaque=static_opaque,
        base_cost_ns=base_cost_ns,
        example_args=example,
        doc=doc,
    )
    TENSORFLOW.add(spec, impl)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def _get_file(ctx: ExecutionContext, url: str = _DATASET_URL) -> Any:
    """Download → cache file → read back (the Fig. 8 reduction example)."""
    payload = ctx.guard(ctx.download(url))
    return ctx.stage_via_tempfile(payload, label="keras-cache")


def _url_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_DATASET_URL,), {})


_register(
    "utils_get_file", _get_file, APIType.LOADING,
    flows=(load_flow(source=Storage.DEV),),
    syscalls=_NET_LOAD_SYSCALLS,
    qualname="tf.keras.utils.get_file",
    static_opaque=True,
    base_cost_ns=200_000,
    example=_url_example,
    doc="Download a dataset through a local cache file.",
)


def _image_dataset_from_directory(
    ctx: ExecutionContext, root: str = _SAMPLE_DATASET_DIR
) -> Any:
    index = ctx.guard(ctx.read_file(f"{root}/index"))
    return [Tensor(as_array(ctx.read_file(f"{root}/{name}"))) for name in index]


def _dir_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_DATASET_DIR,), {})


_register(
    "image_dataset_from_directory", _image_dataset_from_directory, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="tf.keras.preprocessing.image_dataset_from_directory",
    base_cost_ns=150_000,
    example=_dir_example,
    doc="Load an image dataset from a directory tree.",
)


def _load_model(ctx: ExecutionContext, path: str = _SAMPLE_MODEL_PATH) -> Model:
    payload = ctx.guard(ctx.read_file(path))
    if isinstance(payload, Model):
        return Model(dict(payload.data), architecture=payload.architecture,
                     trojan=payload.trojan)
    return Model({"raw": as_array(payload)})


def _model_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_MODEL_PATH,), {})


_register(
    "keras_models_load_model", _load_model, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="tf.keras.models.load_model",
    base_cost_ns=180_000,
    example=_model_example,
    doc="Load a saved Keras model.",
)


def _tfrecord_dataset(ctx: ExecutionContext, path: str = _SAMPLE_MODEL_PATH) -> Any:
    payload = ctx.guard(ctx.read_file(path))
    return [payload]


_register(
    "data_TFRecordDataset", _tfrecord_dataset, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="tf.data.TFRecordDataset",
    base_cost_ns=100_000,
    example=_model_example,
    doc="Stream records from a TFRecord file.",
)


def _train_load_checkpoint(ctx: ExecutionContext, path: str = _SAMPLE_MODEL_PATH) -> Any:
    return ctx.guard(ctx.read_file(path))


_register(
    "train_load_checkpoint", _train_load_checkpoint, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    qualname="tf.train.load_checkpoint",
    base_cost_ns=120_000,
    example=_model_example,
    doc="Load a training checkpoint.",
)


# ----------------------------------------------------------------------
# TF-specific processing
# ----------------------------------------------------------------------


def _simple_processing(name: str, fn, qualname: Optional[str] = None,
                       stateful: StatefulKind = StatefulKind.STATELESS,
                       base_cost_ns: int = 25_000, example=_tensor_example,
                       doc: str = "") -> None:
    def impl(ctx: ExecutionContext, *args: Any, **kwargs: Any) -> Any:
        values = [ctx.guard(a) for a in args]
        result = fn(*values, **kwargs)
        nbytes = int(getattr(result, "nbytes", 8))
        ctx.mem_compute(nbytes=nbytes)
        if isinstance(result, np.ndarray):
            return Tensor(result)
        return result

    _register(
        name, impl, APIType.PROCESSING,
        flows=(process_flow(),),
        syscalls=PROCESSING_SYSCALLS,
        qualname=qualname,
        stateful=stateful,
        base_cost_ns=base_cost_ns,
        example=example,
        doc=doc,
    )


_simple_processing("convert_to_tensor",
                   lambda x: np.atleast_1d(as_array(x)).astype(np.float64))
_simple_processing("constant", lambda x=0.0: np.atleast_1d(as_array(x)).astype(np.float64))
_simple_processing("Variable", lambda x: as_array(x).astype(np.float64).copy(),
                   stateful=StatefulKind.DATA_STATE)
_simple_processing("one_hot", lambda x, depth=4: np.eye(int(depth))[
    np.clip(np.atleast_1d(as_array(x)).astype(np.int64), 0, int(depth) - 1) % int(depth)
])
_simple_processing("cast", lambda x: as_array(x).astype(np.float32))
_simple_processing("expand_dims_batch", lambda x: np.expand_dims(as_array(x), 0),
                   qualname="tf.expand_dims")
_simple_processing("reduce_all", lambda x: bool(np.all(as_array(x) > -np.inf)))
_simple_processing("image_resize", lambda x: np.repeat(
    np.repeat(np.atleast_2d(as_array(x)), 2, axis=0), 2, axis=1),
    qualname="tf.image.resize")
_simple_processing("image_rgb_to_grayscale",
                   lambda x: np.atleast_3d(as_array(x)).mean(axis=2),
                   qualname="tf.image.rgb_to_grayscale")
_simple_processing("image_per_image_standardization",
                   lambda x: (as_array(x) - as_array(x).mean())
                   / (as_array(x).std() + 1e-9),
                   qualname="tf.image.per_image_standardization")
_simple_processing("random_normal", lambda shape=4: np.zeros(int(shape)),
                   qualname="tf.random.normal", example=lambda ctx: ((4,), {}))
_simple_processing("GradientTape", lambda: {"watched": []},
                   qualname="tf.GradientTape",
                   example=lambda ctx: ((), {}),
                   stateful=StatefulKind.DATA_STATE)
_simple_processing("keras_Model_fit", lambda x: float(np.mean(np.square(as_array(x)))),
                   qualname="tf.keras.Model.fit",
                   stateful=StatefulKind.DATA_STATE,
                   base_cost_ns=400_000,
                   doc="One training epoch (stateful: optimizer slots).")
_simple_processing("keras_Model_predict", lambda x: as_array(x) * 0.5,
                   qualname="tf.keras.Model.predict", base_cost_ns=150_000)
def _estimator_train(ctx: ExecutionContext, batch: Any) -> Dict[str, float]:
    """One training step; the global step lives in process state and is
    what the periodic checkpoints preserve across restarts (A.2.4)."""
    batch = ctx.guard(batch)
    step = ctx.stateful_counter("tf.estimator.DNNClassifier.train/global_step")
    loss = float(np.mean(np.square(as_array(batch)))) / step
    ctx.mem_compute(nbytes=64)
    return {"global_step": step, "loss": loss}


_register(
    "estimator_DNNClassifier_train", _estimator_train, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=PROCESSING_SYSCALLS,
    qualname="tf.estimator.DNNClassifier.train",
    stateful=StatefulKind.DATA_STATE,
    base_cost_ns=400_000,
    example=_tensor_example,
    doc="Estimator training step (the paper's stateful example).",
)
_simple_processing("debugging_enable_dump_debug_info",
                   lambda x=None: True,
                   qualname="tf.debugging.experimental.enable_dump_debug_info",
                   stateful=StatefulKind.DATA_STATE,
                   example=lambda ctx: ((), {}),
                   doc="Profiling hook (state shared across APIs, A.6).")
_simple_processing("Session_run", lambda x: as_array(x) * 1.0,
                   qualname="tf.compat.v1.Session.run", base_cost_ns=120_000)


# ----------------------------------------------------------------------
# Storing
# ----------------------------------------------------------------------


def _save_weights(ctx: ExecutionContext, model: Any, path: str) -> None:
    from repro.frameworks.base import coerce_model

    model = coerce_model(ctx.guard(model))
    ctx.write_file(path, Model(dict(model.data), architecture=model.architecture))


def _save_weights_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    rng = np.random.default_rng(45)
    return ((Model({"w": rng.normal(size=(4, 4))}), "/out/tensorflow/weights.h5"), {})


_register(
    "Model_save_weights", _save_weights, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="tf.keras.Model.save_weights",
    base_cost_ns=150_000,
    example=_save_weights_example,
    doc="Serialize model weights.",
)


def _save_img(ctx: ExecutionContext, path: str, image: Any) -> None:
    image = ctx.guard(image)
    ctx.write_file(path, as_array(image).copy())


def _save_img_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("/out/tensorflow/image.png", sample_tensor(46)), {})


_register(
    "preprocessing_image_save_img", _save_img, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="tf.keras.preprocessing.image.save_img",
    base_cost_ns=80_000,
    example=_save_img_example,
    doc="Write an image array to disk.",
)


def _checkpoint_save(ctx: ExecutionContext, state: Any, path: str) -> None:
    from repro.frameworks.base import coerce_model

    state = coerce_model(ctx.guard(state))
    ctx.write_file(path, Model(dict(state.data), architecture=state.architecture))


def _checkpoint_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    rng = np.random.default_rng(47)
    return ((Model({"w": rng.normal(size=(2, 2))}), "/out/tensorflow/ckpt"), {})


_register(
    "train_Checkpoint_save", _checkpoint_save, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="tf.train.Checkpoint.save",
    stateful=StatefulKind.DATA_STATE,
    base_cost_ns=150_000,
    example=_checkpoint_example,
    doc="Save a training checkpoint.",
)
