"""Mini data-processing frameworks (OpenCV/PyTorch/TensorFlow/Caffe + utils).

Import :mod:`repro.frameworks.registry` (or use the re-exports below) to
get the frameworks with CVEs wired onto their vulnerable APIs.
"""

from repro.frameworks.base import (
    APISpec,
    Blob,
    DataObject,
    ExecutionContext,
    Frame,
    Framework,
    FrameworkAPI,
    Mat,
    Model,
    StatefulKind,
    Tensor,
    Tracer,
    is_crafted,
    is_data_object,
)
from repro.frameworks.registry import (
    FRAMEWORKS,
    register_framework,
    MAJOR_FRAMEWORKS,
    all_frameworks,
    get_api,
    get_framework,
    iter_apis,
)

__all__ = [
    "APISpec",
    "Blob",
    "DataObject",
    "ExecutionContext",
    "FRAMEWORKS",
    "Frame",
    "Framework",
    "FrameworkAPI",
    "MAJOR_FRAMEWORKS",
    "Mat",
    "Model",
    "StatefulKind",
    "Tensor",
    "Tracer",
    "all_frameworks",
    "get_api",
    "get_framework",
    "is_crafted",
    "is_data_object",
    "iter_apis",
    "register_framework",
]
