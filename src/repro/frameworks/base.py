"""Framework API model.

The mini-frameworks (``minicv``, ``minitorch``, ``minitf``, ``minicaffe``,
``miniutil``) declare their APIs as :class:`APISpec` records bound to real
(numpy-backed) implementations.  An API executes inside an
:class:`ExecutionContext` tied to one simulated process: every I/O helper
issues the corresponding syscalls through that process (so seccomp filters
apply) and records the resulting data flows (so the dynamic analysis can
observe them).

Vulnerabilities are modelled faithfully to the threat model: a vulnerable
API that receives a *crafted input* (an object exposing ``cve_id`` and
``trigger``) executes the exploit **in the process the API runs in** —
exactly the confinement question FreePart answers.
"""

from __future__ import annotations

import copy as _copy
import enum
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.apitypes import APIType
from repro.core.dataflow import Flow, FlowTrace, Storage, read, write
from repro.errors import ReproError
from repro.sim.devices import GUI_SOCKET_FD
from repro.sim.kernel import SimKernel
from repro.sim.memory import payload_nbytes
from repro.sim.process import SimProcess


class StatefulKind(enum.Enum):
    """Statefulness categories of Appendix A.2.4."""

    STATELESS = "stateless"
    INIT_ONLY = "init_only"       # state restored by re-running initialization
    GUI_STATE = "gui_state"       # state restored by re-running GUI calls
    DATA_STATE = "data_state"     # state must be checkpointed periodically


# ----------------------------------------------------------------------
# Data objects
# ----------------------------------------------------------------------


class DataObject:
    """Base class for framework data objects passed across API boundaries.

    Instances are the things the lazy-data-copy optimization passes by
    reference: they carry a payload (usually an ndarray) whose simulated
    size drives copy costs.
    """

    kind = "object"

    def __init__(self, data: Any = None) -> None:
        self.data = data

    @property
    def nbytes(self) -> int:
        return payload_nbytes(self.data)

    def copy(self) -> "DataObject":
        """Deep copy: a new object with duplicated payload."""
        duplicate = _copy.copy(self)
        duplicate.data = _copy.deepcopy(self.data)
        return duplicate

    def __repr__(self) -> str:
        return f"{type(self).__name__}(nbytes={self.nbytes})"


class Mat(DataObject):
    """OpenCV-style image matrix."""

    kind = "mat"

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(np.shape(self.data)) if self.data is not None else ()


class Tensor(DataObject):
    """PyTorch/TensorFlow-style tensor."""

    kind = "tensor"

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(np.shape(self.data)) if self.data is not None else ()


class Blob(DataObject):
    """Caffe-style blob."""

    kind = "blob"


class Model(DataObject):
    """A loaded model: weights plus metadata.

    ``data`` is a dict of weight arrays.  ``payload`` may carry a trojan
    (the StegoNet case study hides a malicious payload in the weights).
    """

    kind = "model"

    def __init__(
        self,
        data: Optional[Dict[str, np.ndarray]] = None,
        architecture: str = "generic",
        trojan: Any = None,
    ) -> None:
        super().__init__(data if data is not None else {})
        self.architecture = architecture
        self.trojan = trojan


class Frame(Mat):
    """A camera frame (a Mat with capture metadata)."""

    kind = "frame"

    def __init__(self, data: Any = None, index: int = 0) -> None:
        super().__init__(data)
        self.index = index


def is_data_object(value: Any) -> bool:
    """True for framework data objects and raw ndarrays."""
    return isinstance(value, (DataObject, np.ndarray))


def coerce_model(value: Any) -> Model:
    """View an arbitrary payload as a Model (serializers accept both)."""
    if isinstance(value, Model):
        return value
    if isinstance(value, DataObject):
        return Model({"raw": np.asarray(value.data)}, architecture=value.kind)
    return Model({"raw": np.asarray(value)}, architecture="raw")


def is_crafted(value: Any) -> bool:
    """Duck-typed check for exploit-carrying inputs."""
    return getattr(value, "cve_id", None) is not None and hasattr(value, "trigger")


# ----------------------------------------------------------------------
# API specification
# ----------------------------------------------------------------------

ExampleArgs = Callable[["ExecutionContext"], Tuple[tuple, dict]]
Implementation = Callable[..., Any]


@dataclass(frozen=True)
class APISpec:
    """Declarative description of one framework API."""

    name: str                      # bare function name, e.g. "imread"
    framework: str                 # "opencv" | "pytorch" | "tensorflow" | "caffe" | ...
    qualname: str                  # e.g. "cv2.imread"
    ground_truth: APIType          # the type a perfect analysis finds
    flows: Tuple[Flow, ...] = ()   # declared data-flow pattern (Fig. 8)
    syscalls: Tuple[str, ...] = () # syscalls needed on every execution
    init_syscalls: Tuple[str, ...] = ()  # needed only on first execution
    stateful: StatefulKind = StatefulKind.STATELESS
    neutral: bool = False          # type-neutral utility API (Section 4.2)
    static_opaque: bool = False    # flows hidden behind indirect calls
    base_cost_ns: int = 20_000     # virtual compute cost per call
    cost_ns_per_byte: float = 0.05 # virtual compute cost per payload byte
    vulnerabilities: Tuple[str, ...] = ()  # CVE ids exploitable through it
    example_args: Optional[ExampleArgs] = None  # dynamic-analysis test case
    doc: str = ""

    @property
    def has_test_case(self) -> bool:
        return self.example_args is not None

    def with_vulnerabilities(self, *cve_ids: str) -> "APISpec":
        """A copy of this spec carrying the given CVE ids."""
        return replace(self, vulnerabilities=tuple(cve_ids))


class FrameworkAPI:
    """A spec bound to its implementation."""

    def __init__(self, spec: APISpec, impl: Implementation) -> None:
        self.spec = spec
        self.impl = impl

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def qualname(self) -> str:
        return self.spec.qualname

    def __call__(self, ctx: "ExecutionContext", *args: Any, **kwargs: Any) -> Any:
        return ctx.invoke(self, *args, **kwargs)

    def __repr__(self) -> str:
        return f"FrameworkAPI({self.spec.qualname})"


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------


@dataclass
class Tracer:
    """Records the flows and syscalls of traced API executions."""

    flows: FlowTrace = field(default_factory=FlowTrace)
    syscalls: List[str] = field(default_factory=list)
    calls: List[str] = field(default_factory=list)

    def record_flow(self, flow: Flow) -> None:
        """Append one observed data flow."""
        self.flows.record(flow)

    def record_syscall(self, name: str) -> None:
        """Append one executed syscall name."""
        self.syscalls.append(name)

    def record_call(self, qualname: str) -> None:
        """Append one invoked API qualname."""
        self.calls.append(qualname)

    def distinct_syscalls(self) -> List[str]:
        """Distinct syscalls in first-seen order."""
        seen: List[str] = []
        for name in self.syscalls:
            if name not in seen:
                seen.append(name)
        return seen


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------


class ExecutionContext:
    """Everything an API implementation needs to run inside one process."""

    def __init__(
        self,
        kernel: SimKernel,
        process: SimProcess,
        tracer: Optional[Tracer] = None,
        state_label: str = "initialization",
        charge_costs: bool = True,
    ) -> None:
        self.kernel = kernel
        self.process = process
        self.tracer = tracer
        self.state_label = state_label
        self.charge_costs = charge_costs
        self.current_spec: Optional[APISpec] = None
        self._init_seen: set = set()

    # -- invocation ----------------------------------------------------

    def invoke(self, api: FrameworkAPI, *args: Any, **kwargs: Any) -> Any:
        """Run an API in this context: costs, init syscalls, exploit scan."""
        spec = api.spec
        previous = self.current_spec
        self.current_spec = spec
        if self.tracer is not None:
            self.tracer.record_call(spec.qualname)
        span_tracer = self.kernel.tracer
        try:
            if span_tracer.enabled:
                with span_tracer.span(
                    spec.qualname, category="compute",
                    pid=self.process.pid,
                    api_type=spec.ground_truth.value,
                ):
                    return self._invoke_body(api, spec, args, kwargs)
            return self._invoke_body(api, spec, args, kwargs)
        finally:
            self.current_spec = previous

    def _invoke_body(
        self, api: FrameworkAPI, spec: APISpec, args: tuple, kwargs: dict
    ) -> Any:
        self._charge_compute(spec, args, kwargs)
        self._first_execution_syscalls(spec)
        for value in list(args) + list(kwargs.values()):
            self.guard(value)
        return api.impl(self, *args, **kwargs)

    def _charge_compute(self, spec: APISpec, args: tuple, kwargs: dict) -> None:
        if not self.charge_costs:
            return
        arg_bytes = sum(
            payload_nbytes(v)
            for v in list(args) + list(kwargs.values())
            if is_data_object(v)
        )
        self.kernel.clock.advance(
            spec.base_cost_ns + int(spec.cost_ns_per_byte * arg_bytes)
        )

    def _first_execution_syscalls(self, spec: APISpec) -> None:
        """Issue the init-only syscalls on an API's first run here.

        Initialization needs are per-*process* (a library is mprotect'ed
        into place once, the GUI socket is connected once), so syscalls
        another API of this process already performed are skipped — this
        is what lets the runtime close the init grace phase after the
        agent's first request.
        """
        if spec.qualname in self._init_seen:
            return
        self._init_seen.add(spec.qualname)
        already_done = set(self.process.syscalls_used())
        for name in spec.init_syscalls:
            if name not in already_done:
                self.syscall(name)

    # -- stateful-API internal state (Appendix A.2.4) ---------------------

    def stateful_counter(self, key: str, increment: int = 1) -> int:
        """Advance and return a per-process counter for a stateful API.

        Training-style APIs (estimator.train, optimizer.step, ...) keep
        their progress here; it is destroyed with the process on a crash
        and only survives through the agent's periodic checkpoints.
        """
        value = int(self.process.framework_state.get(key, 0)) + increment
        self.process.framework_state[key] = value
        return value

    # -- exploit guard ---------------------------------------------------

    def guard(self, value: Any) -> Any:
        """Fire an exploit if ``value`` targets the current API.

        Returns the benign cover payload for crafted inputs (whether or
        not the exploit fired), so non-vulnerable APIs can still process
        attack-supplied data, and returns other values unchanged.
        """
        if not is_crafted(value):
            return value
        spec = self.current_spec
        if spec is not None and value.cve_id in spec.vulnerabilities:
            value.trigger(self)
        return getattr(value, "cover", value)

    # -- syscall + flow recording ----------------------------------------

    def syscall(
        self,
        name: str,
        fd: Optional[int] = None,
        path: Optional[str] = None,
        nbytes: int = 0,
    ) -> None:
        """Enter a syscall through this context's process and trace it."""
        self.process.syscall(name, fd=fd, path=path, nbytes=nbytes)
        if self.tracer is not None:
            self.tracer.record_syscall(name)

    def record_flow(self, flow: Flow) -> None:
        """Record one observed data flow on the tracer, if any."""
        if self.tracer is not None:
            self.tracer.record_flow(flow)

    # -- storage helpers (each = syscalls + a recorded flow) -------------

    def read_file(self, path: str) -> Any:
        """Load a file: W(MEM, R(FILE))."""
        self.syscall("openat", path=path)
        self.syscall("fstat", path=path)
        entry = self.kernel.fs.stat(path)
        self.syscall("lseek", path=path)
        self.syscall("read", path=path, nbytes=entry.nbytes)
        self.syscall("brk")  # allocate the decoded buffer
        payload = self.kernel.fs.read_file(path, pid=self.process.pid)
        self.syscall("close", path=path)
        self.record_flow(write(Storage.MEM, Storage.FILE, nbytes=entry.nbytes))
        return payload

    def write_file(self, path: str, payload: Any) -> None:
        """Store to a file: W(FILE, R(MEM))."""
        nbytes = payload_nbytes(payload)
        self.syscall("openat", path=path)
        self.syscall("write", path=path, nbytes=nbytes)
        self.kernel.fs.write_file(path, payload, pid=self.process.pid)
        self.syscall("close", path=path)
        self.record_flow(write(Storage.FILE, Storage.MEM, nbytes=nbytes))

    def stage_via_tempfile(self, payload: Any, label: str = "") -> Any:
        """Copy data through a temporary cache file (Section 4.2.1).

        The cache is a memory-backed file (``memfd_create``), so loaders
        that stage downloads stay within the loading agent's allowlist —
        which excludes the disk-write syscalls (Section 5.3).  The file
        flows are still recorded with a shared label so the analyzer can
        apply the copy-via-file reduction.
        """
        tmp = self.kernel.fs.tempfile()
        label = label or tmp
        nbytes = payload_nbytes(payload)
        self.syscall("memfd_create", path=tmp)
        self.kernel.fs.write_file(tmp, payload, pid=self.process.pid)
        self.record_flow(
            Flow(source=Storage.MEM, dest=Storage.FILE, label=label, nbytes=nbytes)
        )
        self.syscall("read", path=tmp, nbytes=nbytes)
        result = self.kernel.fs.read_file(tmp, pid=self.process.pid)
        self.syscall("close", path=tmp)
        self.record_flow(
            Flow(source=Storage.FILE, dest=Storage.MEM, label=label, nbytes=nbytes)
        )
        return result

    def camera_frame(self) -> Optional[np.ndarray]:
        """Grab a frame: W(MEM, R(DEV))."""
        camera = self.kernel.devices.camera
        if not camera.opened:
            camera.open()
            self.syscall("openat", path="/dev/video0")
        self.syscall("ioctl", fd=camera.fd)
        self.syscall("select", fd=camera.fd)
        frame = camera.read_frame()
        if frame is not None:
            self.record_flow(
                write(Storage.MEM, Storage.DEV, label="camera",
                      nbytes=payload_nbytes(frame))
            )
        return frame

    def download(self, url: str) -> Any:
        """Fetch from the network: W(MEM, R(DEV))."""
        network = self.kernel.devices.network
        if not network.is_connected(self.process.pid):
            self.syscall("socket")
            self.syscall("connect", fd=network.fd)
            network.connect(self.process.pid, destination=url)
        self.syscall("recvfrom", fd=network.fd)
        payload = network.download(url)
        self.record_flow(
            write(Storage.MEM, Storage.DEV, label="network",
                  nbytes=payload_nbytes(payload))
        )
        return payload

    def net_send(self, destination: str, payload: Any) -> None:
        """Send to the network: W(DEV, R(MEM))."""
        network = self.kernel.devices.network
        if not network.is_connected(self.process.pid):
            self.syscall("socket")
            self.syscall("connect", fd=network.fd)
            network.connect(self.process.pid, destination=destination)
        self.syscall("sendto", fd=network.fd, nbytes=payload_nbytes(payload))
        network.send(self.process.pid, destination, payload)
        self.record_flow(
            write(Storage.DEV, Storage.MEM, label="network",
                  nbytes=payload_nbytes(payload))
        )

    def gui_show(self, window: str, image: Any) -> None:
        """Display an image: W(GUI, R(MEM))."""
        gui = self.kernel.gui
        if not gui.is_connected(self.process.pid):
            self.syscall("connect", fd=GUI_SOCKET_FD)
            gui.connect(self.process.pid)
        self.syscall("sendto", fd=GUI_SOCKET_FD, nbytes=payload_nbytes(image))
        self.syscall("futex")
        gui.show(window, image)
        self.record_flow(
            write(Storage.GUI, Storage.MEM, label=window,
                  nbytes=payload_nbytes(image))
        )

    def gui_access(self, nbytes: int = 0, label: str = "") -> None:
        """Touch GUI state without displaying: R(GUI)."""
        gui = self.kernel.gui
        if not gui.is_connected(self.process.pid):
            self.syscall("connect", fd=GUI_SOCKET_FD)
            gui.connect(self.process.pid)
        self.syscall("select", fd=GUI_SOCKET_FD)
        self.record_flow(read(Storage.GUI, label=label, nbytes=nbytes))

    def gui_write(self, nbytes: int = 0, label: str = "") -> None:
        """Mutate GUI state (window move/title): W(GUI, R(MEM))."""
        gui = self.kernel.gui
        if not gui.is_connected(self.process.pid):
            self.syscall("connect", fd=GUI_SOCKET_FD)
            gui.connect(self.process.pid)
        self.syscall("sendto", fd=GUI_SOCKET_FD, nbytes=nbytes)
        self.record_flow(
            write(Storage.GUI, Storage.MEM, label=label, nbytes=nbytes)
        )

    def mem_compute(self, nbytes: int = 0, label: str = "") -> None:
        """Record a memory-to-memory computation: W(MEM, R(MEM))."""
        if nbytes:
            self.syscall("brk")
        self.record_flow(
            write(Storage.MEM, Storage.MEM, label=label, nbytes=nbytes)
        )


# ----------------------------------------------------------------------
# Framework registry
# ----------------------------------------------------------------------


class Framework:
    """A named collection of framework APIs."""

    def __init__(self, name: str, version: str = "1.0") -> None:
        self.name = name
        self.version = version
        self._apis: Dict[str, FrameworkAPI] = {}

    def register(self, spec: APISpec) -> Callable[[Implementation], FrameworkAPI]:
        """Decorator binding an implementation to a spec."""

        def bind(impl: Implementation) -> FrameworkAPI:
            api = FrameworkAPI(spec, impl)
            if spec.name in self._apis:
                raise ReproError(
                    f"{self.name} already has an API named {spec.name!r}"
                )
            self._apis[spec.name] = api
            return api

        return bind

    def add(self, spec: APISpec, impl: Implementation) -> FrameworkAPI:
        """Register an implementation under a spec (non-decorator form)."""
        return self.register(spec)(impl)

    def get(self, name: str) -> FrameworkAPI:
        """Look up an API by bare name (ReproError if absent)."""
        try:
            return self._apis[name]
        except KeyError:
            raise ReproError(
                f"framework {self.name!r} has no API named {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._apis

    def __iter__(self) -> Iterator[FrameworkAPI]:
        return iter(self._apis.values())

    def __len__(self) -> int:
        return len(self._apis)

    @property
    def api_names(self) -> List[str]:
        return list(self._apis)

    def apis_of_type(self, api_type: APIType) -> List[FrameworkAPI]:
        """All APIs whose ground-truth type matches."""
        return [a for a in self if a.spec.ground_truth is api_type]

    def covered(self) -> List[FrameworkAPI]:
        """APIs with a dynamic-analysis test case (Table 11 numerator)."""
        return [a for a in self if a.spec.has_test_case]

    def vulnerable_apis(self) -> List[FrameworkAPI]:
        """APIs carrying at least one CVE."""
        return [a for a in self if a.spec.vulnerabilities]

    def replace_spec(self, name: str, spec: APISpec) -> None:
        """Swap the spec of a registered API (used to attach CVEs)."""
        api = self.get(name)
        self._apis[name] = FrameworkAPI(spec, api.impl)
