"""minicaffe — the Caffe analogue.

Proto/HDF5 loading, net construction + forward/backward processing, and
proto/HDF5 storing (Table 4's Caffe rows).  Caffe has no visualizing
APIs.  A subset of the shared operator library is registered under the
``caffe.layers`` prefix to model the layer catalogue.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.apitypes import APIType
from repro.core.dataflow import Storage, load_flow, process_flow, store_flow
from repro.frameworks._oplib import (
    NN_OPS,
    PROCESSING_SYSCALLS,
    UNARY_OPS,
    as_array,
    register_tensor_ops,
)
from repro.frameworks.base import (
    APISpec,
    Blob,
    ExecutionContext,
    Framework,
    Model,
    StatefulKind,
)

CAFFE = Framework("caffe", version="1.0")

_FILE_LOAD_SYSCALLS = ("openat", "fstat", "read", "close", "brk", "lseek")
_STORE_SYSCALLS = ("openat", "write", "close", "brk")

_SAMPLE_PROTO_PATH = "/testdata/caffe/net.prototxt"
_SAMPLE_WEIGHTS_PATH = "/testdata/caffe/net.caffemodel"
_SAMPLE_HDF5_PATH = "/testdata/caffe/data.h5"


def sample_blob(seed: int = 23, size: int = 10) -> Blob:
    """A deterministic test blob."""
    rng = np.random.default_rng(seed)
    return Blob(rng.normal(size=(size, size)))


def _ensure_sample_files(ctx: ExecutionContext) -> None:
    fs = ctx.kernel.fs
    if not fs.exists(_SAMPLE_PROTO_PATH):
        fs.write_file(_SAMPLE_PROTO_PATH, {"layers": ["conv1", "relu1", "fc1"]})
    if not fs.exists(_SAMPLE_WEIGHTS_PATH):
        rng = np.random.default_rng(51)
        fs.write_file(
            _SAMPLE_WEIGHTS_PATH,
            Model({"conv1": rng.normal(size=(3, 3))}, architecture="caffenet"),
        )
    if not fs.exists(_SAMPLE_HDF5_PATH):
        rng = np.random.default_rng(52)
        fs.write_file(_SAMPLE_HDF5_PATH, rng.normal(size=(6, 6)))


def _blob_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return ((sample_blob(),), {})


register_tensor_ops(
    CAFFE,
    families=[UNARY_OPS, NN_OPS],
    qualprefixes=["caffe.layers", "caffe.layers"],
    object_cls=Blob,
    example_args=_blob_example,
    skip=("erf", "grid_sample", "pixel_shuffle"),
)


def _register(
    name: str,
    impl,
    api_type: APIType,
    flows: tuple,
    syscalls: tuple,
    qualname: Optional[str] = None,
    stateful: StatefulKind = StatefulKind.STATELESS,
    base_cost_ns: int = 40_000,
    example=None,
    doc: str = "",
) -> None:
    spec = APISpec(
        name=name,
        framework="caffe",
        qualname=qualname or f"caffe.{name}",
        ground_truth=api_type,
        flows=flows,
        syscalls=syscalls,
        stateful=stateful,
        base_cost_ns=base_cost_ns,
        example_args=example,
        doc=doc,
    )
    CAFFE.add(spec, impl)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


def _proto_loader(name: str, path_default: str) -> None:
    def impl(ctx: ExecutionContext, path: str = path_default) -> Any:
        return ctx.guard(ctx.read_file(path))

    def example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
        _ensure_sample_files(ctx)
        return ((path_default,), {})

    _register(
        name, impl, APIType.LOADING,
        flows=(load_flow(source=Storage.FILE),),
        syscalls=_FILE_LOAD_SYSCALLS,
        base_cost_ns=90_000,
        example=example,
        doc=f"caffe.{name}: parse a persisted structure from disk.",
    )


_proto_loader("ReadProtoFromTextFile", _SAMPLE_PROTO_PATH)
_proto_loader("ReadProtoFromBinaryFile", _SAMPLE_WEIGHTS_PATH)
_proto_loader("hdf5_load_nd_dataset", _SAMPLE_HDF5_PATH)
_proto_loader("ReadImageToDatum", _SAMPLE_HDF5_PATH)


def _net(ctx: ExecutionContext, proto_path: str = _SAMPLE_PROTO_PATH,
         weights_path: str = _SAMPLE_WEIGHTS_PATH) -> Model:
    proto = ctx.guard(ctx.read_file(proto_path))
    weights = ctx.guard(ctx.read_file(weights_path))
    layers = proto.get("layers", []) if isinstance(proto, dict) else []
    data: Dict[str, np.ndarray] = {}
    if isinstance(weights, Model):
        data.update(weights.data)
    return Model(data, architecture="+".join(layers) or "caffenet",
                 trojan=getattr(weights, "trojan", None))


def _net_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    _ensure_sample_files(ctx)
    return ((_SAMPLE_PROTO_PATH, _SAMPLE_WEIGHTS_PATH), {})


_register(
    "Net", _net, APIType.LOADING,
    flows=(load_flow(source=Storage.FILE),),
    syscalls=_FILE_LOAD_SYSCALLS,
    base_cost_ns=200_000,
    example=_net_example,
    doc="Construct a net from a prototxt + caffemodel pair.",
)


# ----------------------------------------------------------------------
# Processing
# ----------------------------------------------------------------------


def _forward(ctx: ExecutionContext, net: Model, blob: Any) -> Blob:
    blob = ctx.guard(blob)
    arr = as_array(blob).astype(np.float64)
    for weight in net.data.values():
        kernel = np.asarray(weight, dtype=np.float64)
        scale = float(np.abs(kernel).mean() + 0.1)
        arr = np.maximum(arr * min(scale, 2.0), 0)
    ctx.mem_compute(nbytes=int(arr.nbytes))
    return Blob(arr)


def _forward_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    rng = np.random.default_rng(53)
    return ((Model({"conv1": rng.normal(size=(3, 3))}), sample_blob(54)), {})


_register(
    "Forward", _forward, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=PROCESSING_SYSCALLS,
    base_cost_ns=200_000,
    example=_forward_example,
    doc="Run the net forward.",
)


def _backward(ctx: ExecutionContext, net: Model, blob: Any) -> Blob:
    blob = ctx.guard(blob)
    arr = as_array(blob).astype(np.float64)
    grads = np.gradient(arr)[0] if arr.size > 1 else arr
    ctx.mem_compute(nbytes=int(np.asarray(grads).nbytes))
    return Blob(np.asarray(grads))


_register(
    "Backward", _backward, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=PROCESSING_SYSCALLS,
    stateful=StatefulKind.DATA_STATE,
    base_cost_ns=250_000,
    example=_forward_example,
    doc="Run the net backward (stateful: gradient blobs).",
)


def _copy_trained_layers(ctx: ExecutionContext, net: Any, source: Any) -> Model:
    from repro.frameworks.base import coerce_model

    net = coerce_model(ctx.guard(net))
    source = coerce_model(ctx.guard(source))
    net.data.update(source.data)
    ctx.mem_compute(nbytes=sum(
        int(np.asarray(w).nbytes) for w in source.data.values()
    ))
    return net


def _copy_layers_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    rng = np.random.default_rng(55)
    return (
        (Model({}, architecture="a"), Model({"fc": rng.normal(size=(2, 2))})),
        {},
    )


_register(
    "CopyTrainedLayersFrom", _copy_trained_layers, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=PROCESSING_SYSCALLS,
    base_cost_ns=120_000,
    example=_copy_layers_example,
    doc="Copy weights between nets in memory (Table 4 DP example).",
)


def _solver_step(ctx: ExecutionContext, net: Model, blob: Any) -> float:
    blob = ctx.guard(blob)
    loss = float(np.mean(np.square(as_array(blob))))
    ctx.mem_compute(nbytes=64)
    return loss


_register(
    "Solver_step", _solver_step, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=PROCESSING_SYSCALLS,
    qualname="caffe.Solver.step",
    stateful=StatefulKind.DATA_STATE,
    base_cost_ns=300_000,
    example=_forward_example,
    doc="One solver iteration (stateful: momentum buffers).",
)


def _blobs(ctx: ExecutionContext, net: Model) -> Dict[str, Blob]:
    ctx.mem_compute(nbytes=64)
    return {name: Blob(np.asarray(w, dtype=np.float64).copy())
            for name, w in net.data.items()}


def _blobs_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    rng = np.random.default_rng(56)
    return ((Model({"conv1": rng.normal(size=(2, 2))}),), {})


_register(
    "Net_blobs", _blobs, APIType.PROCESSING,
    flows=(process_flow(),),
    syscalls=PROCESSING_SYSCALLS,
    qualname="caffe.Net.blobs",
    example=_blobs_example,
    doc="Expose the net's intermediate blobs.",
)


# ----------------------------------------------------------------------
# Storing
# ----------------------------------------------------------------------


def _hdf5_save_string(ctx: ExecutionContext, path: str, value: str) -> None:
    ctx.write_file(path, str(ctx.guard(value)))


def _hdf5_save_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (("/out/caffe/out.h5", "payload"), {})


_register(
    "hdf5_save_string", _hdf5_save_string, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    example=_hdf5_save_example,
    doc="Write a string attribute into an HDF5 file.",
)


def _write_proto(ctx: ExecutionContext, proto: Any, path: str) -> None:
    proto = ctx.guard(proto)
    if isinstance(proto, dict):
        payload = dict(proto)
    else:
        payload = {"proto": type(proto).__name__}
    ctx.write_file(path, payload)


def _write_proto_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    return (({"layers": ["conv1"]}, "/out/caffe/out.prototxt"), {})


_register(
    "WriteProtoToTextFile", _write_proto, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    example=_write_proto_example,
    doc="Serialize a proto message as text.",
)


def _snapshot(ctx: ExecutionContext, net: Any, path: str) -> None:
    from repro.frameworks.base import coerce_model

    net = coerce_model(ctx.guard(net))
    ctx.write_file(path, Model(dict(net.data), architecture=net.architecture))


def _snapshot_example(ctx: ExecutionContext) -> Tuple[tuple, dict]:
    rng = np.random.default_rng(57)
    return ((Model({"fc": rng.normal(size=(2, 2))}), "/out/caffe/snap.caffemodel"), {})


_register(
    "Snapshot", _snapshot, APIType.STORING,
    flows=(store_flow(),),
    syscalls=_STORE_SYSCALLS,
    qualname="caffe.Solver.snapshot",
    stateful=StatefulKind.DATA_STATE,
    base_cost_ns=150_000,
    example=_snapshot_example,
    doc="Snapshot solver state to disk.",
)
