"""Framework state tracking and temporal permission enforcement (Fig. 3).

The runtime infers the framework's current state from the type of the
last framework API invoked.  On every state *transition*, all data
objects defined during the previous state — in the host program process
and in every agent process — are made read-only with ``mprotect``.

This module is pure mechanism; the runtime drives it once per hooked API
call.  It is part of the trusted runtime support, so the ``mprotect``
calls it issues are not subject to the agents' seccomp filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.apitypes import APIType, FrameworkState
from repro.sim.memory import Permission
from repro.sim.process import SimProcess


@dataclass(frozen=True)
class Transition:
    """One framework state change."""

    previous: FrameworkState
    current: FrameworkState
    protected_buffers: int
    at_ns: int


class TemporalStateMachine:
    """Tracks the five framework states and enforces Fig. 3 permissions."""

    def __init__(
        self,
        processes: Callable[[], Iterable[SimProcess]],
        enforce: bool = True,
        annotated_tags: Iterable[str] = (),
    ) -> None:
        self._processes = processes
        self.enforce = enforce
        #: Host-program data structures the user annotated for protection
        #: (Section 4.4.3: custom structures need a memory-layout
        #: annotation; framework objects in agent processes are covered
        #: by the built-in definitions and always protected).
        self.annotated_tags = frozenset(annotated_tags)
        self.state = FrameworkState.INITIALIZATION
        self.transitions: List[Transition] = []
        self.protected_total = 0

    @property
    def state_label(self) -> str:
        return self.state.value

    def observe_call(self, api_type: APIType, neutral: bool = False) -> Optional[Transition]:
        """Update the state for one framework API invocation.

        Neutral APIs run in the current state and never transition.
        Returns the transition performed, if any.
        """
        if neutral or not api_type.is_concrete:
            return None
        new_state = FrameworkState.for_api_type(api_type)
        if new_state is self.state:
            return None
        previous = self.state
        self.state = new_state
        protected = self._protect_state(previous) if self.enforce else 0
        clock_ns = 0
        for process in self._processes():
            clock_ns = process.clock.now_ns
            break
        transition = Transition(
            previous=previous,
            current=new_state,
            protected_buffers=protected,
            at_ns=clock_ns,
        )
        self.transitions.append(transition)
        return transition

    def _protect_state(self, state: FrameworkState) -> int:
        """Make every buffer defined during ``state`` read-only."""
        protected = 0
        label = state.value
        for process in self._processes():
            if not process.alive:
                continue
            host_process = process.role == "host"
            for buffer in process.memory.buffers_in_state(label):
                if host_process and buffer.tag not in self.annotated_tags:
                    continue  # unannotated host variables stay writable
                if process.memory.is_writable(buffer.buffer_id):
                    process.memory.protect_buffer(buffer.buffer_id, Permission.ro())
                    protected += 1
        self.protected_total += protected
        return protected

    def reset(self) -> None:
        self.state = FrameworkState.INITIALIZATION
        self.transitions.clear()
        self.protected_total = 0

    def transition_count(self) -> int:
        return len(self.transitions)

    def states_visited(self) -> Tuple[FrameworkState, ...]:
        visited: List[FrameworkState] = [FrameworkState.INITIALIZATION]
        for transition in self.transitions:
            if transition.current not in visited:
                visited.append(transition.current)
        return tuple(visited)
