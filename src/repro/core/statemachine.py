"""Framework state tracking and temporal permission enforcement (Fig. 3).

The runtime infers the framework's current state from the type of the
last framework API invoked.  On every state *transition*, all data
objects defined during the previous state — in the host program process
and in every agent process — are made read-only with ``mprotect``.

This module is pure mechanism; the runtime drives it once per hooked API
call.  It is part of the trusted runtime support, so the ``mprotect``
calls it issues are not subject to the agents' seccomp filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.apitypes import APIType, FrameworkState
from repro.obs.tracer import NULL_TRACER
from repro.sim.memory import Permission
from repro.sim.process import SimProcess


@dataclass(frozen=True)
class Transition:
    """One framework state change."""

    previous: FrameworkState
    current: FrameworkState
    protected_buffers: int
    at_ns: int


# ----------------------------------------------------------------------
# Pure transition semantics (shared by the runtime and the static
# verifier, which replays call traces without processes or enforcement)
# ----------------------------------------------------------------------


def next_state(
    state: FrameworkState, api_type: APIType, neutral: bool = False
) -> Optional[FrameworkState]:
    """The state one API call moves the framework into, or None.

    Returns ``None`` when the call does not transition: neutral APIs run
    in the current state, and calls of the current state's own type stay
    put.  This is the single source of truth for the Fig. 3 semantics;
    :meth:`TemporalStateMachine.observe_call` and the static verifier's
    :func:`simulate_transitions` both consult it.
    """
    if neutral or not api_type.is_concrete:
        return None
    new_state = FrameworkState.for_api_type(api_type)
    return None if new_state is state else new_state


@dataclass(frozen=True)
class SimulatedStep:
    """One step of a replayed call trace (no enforcement performed)."""

    index: int
    api_type: APIType
    neutral: bool
    state_before: FrameworkState
    state_after: FrameworkState

    @property
    def transitioned(self) -> bool:
        """True when this call changed the framework state."""
        return self.state_before is not self.state_after


def simulate_transitions(
    calls: Sequence[Tuple[APIType, bool]],
    initial: FrameworkState = FrameworkState.INITIALIZATION,
) -> List[SimulatedStep]:
    """Replay ``(api_type, neutral)`` observations through the state machine.

    A pure function over the Fig. 3 semantics: no processes are touched
    and no permissions change.  The static policy verifier uses this to
    predict the state trace of a host program's call sites ahead of any
    deployment; tests use it to cross-check the enforcing machine.
    """
    steps: List[SimulatedStep] = []
    state = initial
    for index, (api_type, neutral) in enumerate(calls):
        new_state = next_state(state, api_type, neutral)
        after = new_state if new_state is not None else state
        steps.append(SimulatedStep(
            index=index,
            api_type=api_type,
            neutral=neutral,
            state_before=state,
            state_after=after,
        ))
        state = after
    return steps


class TemporalStateMachine:
    """Tracks the five framework states and enforces Fig. 3 permissions."""

    def __init__(
        self,
        processes: Callable[[], Iterable[SimProcess]],
        enforce: bool = True,
        annotated_tags: Iterable[str] = (),
        tracer=None,
    ) -> None:
        self._processes = processes
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.enforce = enforce
        #: Host-program data structures the user annotated for protection
        #: (Section 4.4.3: custom structures need a memory-layout
        #: annotation; framework objects in agent processes are covered
        #: by the built-in definitions and always protected).
        self.annotated_tags = frozenset(annotated_tags)
        self.state = FrameworkState.INITIALIZATION
        self.transitions: List[Transition] = []
        self.protected_total = 0

    @property
    def state_label(self) -> str:
        return self.state.value

    def observe_call(self, api_type: APIType, neutral: bool = False) -> Optional[Transition]:
        """Update the state for one framework API invocation.

        Neutral APIs run in the current state and never transition.
        Returns the transition performed, if any.
        """
        new_state = next_state(self.state, api_type, neutral)
        if new_state is None:
            return None
        previous = self.state
        self.state = new_state
        tracer = self.tracer
        clock_ns = 0
        first = next(iter(self._processes()), None)
        if tracer.enabled and first is not None:
            # The freeze span covers the mprotect storm the transition
            # triggers; the transition itself is an instant marker.
            tracer.instant("state_transition", category="state",
                           pid=first.pid, previous=previous.value,
                           current=new_state.value)
            with tracer.span("freeze", category="state", pid=first.pid,
                             state=previous.value) as span:
                protected = (
                    self._protect_state(previous) if self.enforce else 0
                )
                span.annotate(protected_buffers=protected)
        else:
            protected = self._protect_state(previous) if self.enforce else 0
        if first is not None:
            clock_ns = first.clock.now_ns
        transition = Transition(
            previous=previous,
            current=new_state,
            protected_buffers=protected,
            at_ns=clock_ns,
        )
        self.transitions.append(transition)
        return transition

    def _protect_state(self, state: FrameworkState) -> int:
        """Make every buffer defined during ``state`` read-only."""
        protected = 0
        label = state.value
        for process in self._processes():
            if not process.alive:
                continue
            host_process = process.role == "host"
            for buffer in process.memory.buffers_in_state(label):
                if host_process and buffer.tag not in self.annotated_tags:
                    continue  # unannotated host variables stay writable
                if process.memory.is_writable(buffer.buffer_id):
                    process.memory.protect_buffer(buffer.buffer_id, Permission.ro())
                    protected += 1
        self.protected_total += protected
        return protected

    def reset(self) -> None:
        self.state = FrameworkState.INITIALIZATION
        self.transitions.clear()
        self.protected_total = 0

    def transition_count(self) -> int:
        return len(self.transitions)

    def states_visited(self) -> Tuple[FrameworkState, ...]:
        visited: List[FrameworkState] = [FrameworkState.INITIALIZATION]
        for transition in self.transitions:
            if transition.current not in visited:
                visited.append(transition.current)
        return tuple(visited)
