"""The data-flow formalism of Fig. 8 and the categorization rules of Fig. 9.

Operations are modeled as ``W(S_dst, R(S_src))`` over four storage
classes: ``MEM``, ``FILE``, ``DEV``, ``GUI``.  A bare ``R(GUI)`` (reading
GUI state without writing anywhere observable) also occurs and is
represented by a flow with no destination.

This module also implements the *memory-copy-via-files* reduction of
Section 4.2.1: a write to a temporary file that is later read back is
collapsed into a memory-to-memory flow, so download-then-load APIs such as
``tf.keras.utils.get_file()`` categorize as data loading instead of
storing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.apitypes import APIType


class Storage(enum.Enum):
    """Origins/destinations of data (Fig. 8)."""

    MEM = "mem"
    FILE = "file"
    DEV = "dev"
    GUI = "gui"


@dataclass(frozen=True)
class Flow:
    """One data-transfer operation.

    ``dest=None`` encodes a bare read (``R(GUI)``), which Fig. 9 counts as
    a visualizing pattern.  ``label`` identifies a *specific* storage
    instance (e.g. a particular temporary file) so the file-copy reduction
    can pair the write with the read-back.
    """

    source: Storage
    dest: Optional[Storage] = Storage.MEM
    label: str = ""
    nbytes: int = 0

    def __str__(self) -> str:
        suffix = f"[{self.label}]" if self.label else ""
        if self.dest is None:
            return f"R({self.source.value}{suffix})"
        return f"W({self.dest.value}, R({self.source.value}{suffix}))"


def read(source: Storage, label: str = "", nbytes: int = 0) -> Flow:
    """A bare read operation ``R(source)``."""
    return Flow(source=source, dest=None, label=label, nbytes=nbytes)


def write(dest: Storage, source: Storage, label: str = "", nbytes: int = 0) -> Flow:
    """A transfer operation ``W(dest, R(source))``."""
    return Flow(source=source, dest=dest, label=label, nbytes=nbytes)


# Shorthand constructors for the patterns of Fig. 9.
def load_flow(label: str = "", source: Storage = Storage.FILE) -> Flow:
    """W(MEM, R(FILE|DEV)) — the data-loading pattern."""
    return write(Storage.MEM, source, label=label)


def process_flow(label: str = "") -> Flow:
    """W(MEM, R(MEM)) — the data-processing pattern."""
    return write(Storage.MEM, Storage.MEM, label=label)


def store_flow(label: str = "", dest: Storage = Storage.FILE) -> Flow:
    """W(FILE|DEV, R(MEM)) — the storing pattern."""
    return write(dest, Storage.MEM, label=label)


def visualize_flow(label: str = "") -> Flow:
    """W(GUI, R(MEM)) — the most common visualizing pattern."""
    return write(Storage.GUI, Storage.MEM, label=label)


def reduce_file_copies(flows: Sequence[Flow]) -> List[Flow]:
    """Collapse copy-via-temporary-file patterns into MEM→MEM flows.

    A pair ``W(FILE[x], R(MEM))`` followed by ``W(MEM, R(FILE[x]))`` on a
    *labelled* file instance is a data hand-off through storage, not a
    storing + loading pair; both flows are replaced by a single
    ``W(MEM, R(MEM))``.  Unlabelled file flows (real input/output files)
    are never reduced.
    """
    flows = list(flows)
    reduced: List[Flow] = []
    consumed: Set[int] = set()
    for i, flow in enumerate(flows):
        if i in consumed:
            continue
        is_tmp_store = (
            flow.dest is Storage.FILE
            and flow.source is Storage.MEM
            and flow.label != ""
        )
        if is_tmp_store:
            for j in range(i + 1, len(flows)):
                later = flows[j]
                if (
                    j not in consumed
                    and later.dest is Storage.MEM
                    and later.source is Storage.FILE
                    and later.label == flow.label
                ):
                    consumed.add(j)
                    reduced.append(process_flow(label=flow.label))
                    break
            else:
                reduced.append(flow)
        else:
            reduced.append(flow)
    return reduced


def categorize_flows(flows: Sequence[Flow]) -> Optional[APIType]:
    """Apply the Fig. 9 rules to a (reduced) flow set.

    Rules, in the order the paper states them:

    1. any ``W(MEM, R(FILE|DEV))`` → data loading;
    2. only ``W(MEM, R(MEM))`` operations → data processing;
    3. any GUI-touching flow (``W(GUI, ·)``, ``W(·, R(GUI))``, ``R(GUI)``)
       → visualizing;
    4. any ``W(FILE|DEV, R(MEM))`` → storing.

    Visualizing is checked first because GUI access is the distinguishing
    feature even when memory flows are also present; then loading, then
    storing, then the pure-processing fallback.  Returns ``None`` for an
    empty flow set (uncategorizable without more evidence).
    """
    flows = reduce_file_copies(flows)
    if not flows:
        return None

    def touches_gui(flow: Flow) -> bool:
        return flow.dest is Storage.GUI or flow.source is Storage.GUI

    if any(touches_gui(f) for f in flows):
        return APIType.VISUALIZING
    if any(
        f.dest is Storage.MEM and f.source in (Storage.FILE, Storage.DEV)
        for f in flows
    ):
        return APIType.LOADING
    if any(
        f.dest in (Storage.FILE, Storage.DEV) and f.source is Storage.MEM
        for f in flows
    ):
        return APIType.STORING
    if all(
        f.dest is Storage.MEM and f.source is Storage.MEM for f in flows
    ):
        return APIType.PROCESSING
    return None


@dataclass
class FlowTrace:
    """An ordered, appendable collection of observed flows."""

    flows: List[Flow] = field(default_factory=list)

    def record(self, flow: Flow) -> None:
        self.flows.append(flow)

    def extend(self, flows: Iterable[Flow]) -> None:
        self.flows.extend(flows)

    def categorize(self) -> Optional[APIType]:
        return categorize_flows(self.flows)

    def distinct(self) -> Tuple[Flow, ...]:
        """Flows deduplicated by (source, dest, label), order-preserving."""
        seen = set()
        unique: List[Flow] = []
        for flow in self.flows:
            key = (flow.source, flow.dest, flow.label)
            if key not in seen:
                seen.add(key)
                unique.append(flow)
        return tuple(unique)
