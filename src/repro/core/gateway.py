"""API gateways: how host programs invoke framework APIs.

An application (``repro.apps``) is written once against the
:class:`ApiGateway` interface; the gateway decides *where* each framework
API executes:

* :class:`NativeGateway` — everything in the host program process, no
  isolation (the unprotected baseline every overhead number is relative
  to, and the configuration in which exploits reach critical data);
* ``FreePartGateway`` (``repro.core.runtime``) — FreePart's agent
  processes, temporal permissions, and syscall restriction;
* the baseline gateways (``repro.baselines``) — the five prior techniques
  of Table 1.

The gateway also exposes the *host program's own* operations: allocating
and accessing critical data in the host address space (``template``,
``self.speed``, user profiles) and host-initiated networking.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.apitypes import APIType
from repro.frameworks.base import DataObject, ExecutionContext, FrameworkAPI
from repro.frameworks.registry import get_api
from repro.obs.metrics import MetricsRegistry
from repro.sim.kernel import SimKernel
from repro.sim.memory import Buffer, MemoryLayout
from repro.sim.process import SimProcess

#: Pseudo-framework for tracing annotations.  ``gateway.call("obs",
#: "mark", ...)`` is dispatched to the span tracer as an instant event,
#: never to the framework registry — host programs can mark phases in
#: their pipelines without registering an API.  The static checker's
#: dead-api rule skips these sites for the same reason.
OBS_FRAMEWORK = "obs"


@dataclass(frozen=True)
class CallRecord:
    """One framework API invocation as seen by the gateway."""

    framework: str
    name: str
    qualname: str
    api_type: APIType


@dataclass(frozen=True)
class ApiCall:
    """One framework API invocation described as data (not yet dispatched).

    The serving layer ships whole pipelines as sequences of these so the
    gateway can coalesce adjacent same-agent calls into batched IPC.
    """

    framework: str
    name: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()


@dataclass
class GatewayStats:
    """Counters every gateway keeps (Table 6 / Table 12 inputs).

    .. deprecated::
        ``GatewayStats`` is now a compatibility shim over the
        :mod:`repro.obs.metrics` registry: every :meth:`record` also
        increments the machine-wide ``gateway.api_calls`` and
        ``gateway.calls.<type>`` counters on the owning kernel's
        ``metrics`` registry.  The per-gateway ``calls`` list and its
        accessors remain supported, but new aggregation code should read
        the registry instead.
    """

    calls: List[CallRecord] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def record(self, record: CallRecord) -> None:
        """Append one call record (and feed the metrics registry)."""
        self.calls.append(record)
        self.registry.counter("gateway.api_calls").inc()
        self.registry.counter(
            f"gateway.calls.{record.api_type.value}"
        ).inc()

    def total_calls(self) -> int:
        """Number of framework API calls recorded."""
        return len(self.calls)

    def counts_by_type(self) -> Dict[APIType, Tuple[int, int]]:
        """type → (unique APIs, total call instances)."""
        by_type: Dict[APIType, Dict[str, int]] = {}
        for record in self.calls:
            by_type.setdefault(record.api_type, {})
            by_type[record.api_type][record.qualname] = (
                by_type[record.api_type].get(record.qualname, 0) + 1
            )
        return {
            api_type: (len(counts), sum(counts.values()))
            for api_type, counts in by_type.items()
        }

    def unique_qualnames(self) -> List[str]:
        """Distinct called qualnames in first-seen order."""
        seen: List[str] = []
        for record in self.calls:
            if record.qualname not in seen:
                seen.append(record.qualname)
        return seen


class ApiGateway(abc.ABC):
    """The host program's view of the framework + host-code operations."""

    def __init__(self, kernel: SimKernel, host: SimProcess) -> None:
        self.kernel = kernel
        self.host = host
        self.stats = GatewayStats(registry=kernel.metrics)
        self._host_buffers: Dict[str, int] = {}

    # -- tracing annotations -------------------------------------------

    def _obs_annotation(self, name: str, args: Tuple[Any, ...],
                        kwargs: Dict[str, Any]) -> None:
        """Dispatch an ``obs.*`` call site to the span tracer."""
        tracer = self.kernel.tracer
        if tracer.enabled:
            attrs = {f"arg{i}": repr(v) for i, v in enumerate(args)}
            attrs.update({k: repr(v) for k, v in kwargs.items()})
            tracer.instant(f"obs.{name}", category="annotation",
                           pid=self.host.pid, **attrs)
        return None

    # -- framework API dispatch ----------------------------------------

    @abc.abstractmethod
    def call(self, framework: str, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke a framework API and return its (possibly remote) result."""

    @abc.abstractmethod
    def materialize(self, value: Any) -> Any:
        """Bring a (possibly remote) result's data into the host program."""

    def call_many(self, calls: "List[ApiCall]") -> List[Any]:
        """Dispatch a sequence of calls, returning one result per call.

        The default simply loops over :meth:`call`; gateways that can
        coalesce adjacent same-agent calls into one IPC round trip (the
        serving layer's batching) override this.
        """
        return [
            self.call(c.framework, c.name, *c.args, **dict(c.kwargs))
            for c in calls
        ]

    def _resolve_api(self, framework: str, name: str) -> FrameworkAPI:
        return get_api(framework, name)

    # -- host program data (critical variables) -------------------------

    @property
    def state_label(self) -> str:
        """Origin-state label for buffers the host defines right now."""
        return "initialization"

    def host_alloc(self, tag: str, payload: Any) -> Buffer:
        """Define a host-program variable (e.g. ``template``)."""
        buffer = self.host.memory.alloc_object(
            payload, tag=tag, origin_state=self.state_label
        )
        self._host_buffers[tag] = buffer.buffer_id
        return buffer

    def host_read(self, tag: str) -> Any:
        """Read a host variable by tag."""
        return self.host.memory.load(self._host_buffer_id(tag))

    def host_write(self, tag: str, payload: Any) -> None:
        """Overwrite a host variable (page permissions apply)."""
        self.host.memory.store(self._host_buffer_id(tag), payload)

    def host_buffer(self, tag: str) -> Buffer:
        """The simulated buffer backing a host variable."""
        return self.host.memory.get_buffer(self._host_buffer_id(tag))

    def _host_buffer_id(self, tag: str) -> int:
        try:
            return self._host_buffers[tag]
        except KeyError:
            raise KeyError(f"host program has no variable tagged {tag!r}") from None

    # -- host program I/O -------------------------------------------------

    def host_read_file(self, path: str) -> Any:
        """Host-code file read (e.g. ``fread(fopen("userprofile.xml"))``)."""
        self.host.syscall("openat", path=path)
        self.host.syscall("read", path=path)
        payload = self.kernel.fs.read_file(path, pid=self.host.pid)
        self.host.syscall("close", path=path)
        return payload

    def host_write_file(self, path: str, payload: Any) -> None:
        """Host-code file write (results the app persists itself)."""
        self.host.syscall("openat", path=path)
        self.host.syscall("write", path=path)
        self.kernel.fs.write_file(path, payload, pid=self.host.pid)
        self.host.syscall("close", path=path)

    def send(self, destination: str, payload: Any) -> None:
        """Host-code networking (Fig. 10 line 12: notify a server)."""
        network = self.kernel.devices.network
        if not network.is_connected(self.host.pid):
            self.host.syscall("socket")
            self.host.syscall("connect", fd=network.fd)
            network.connect(self.host.pid, destination=destination)
        self.host.syscall("sendto", fd=network.fd)
        network.send(self.host.pid, destination, payload)

    # -- topology ---------------------------------------------------------

    @property
    def process_count(self) -> int:
        """Processes this technique runs the program across (host only
        by default; partitioned gateways override)."""
        return 1

    # -- teardown ---------------------------------------------------------

    def shutdown(self) -> None:
        """Release gateway resources (agents, channels)."""


class NativeGateway(ApiGateway):
    """No isolation: framework APIs run inside the host program process.

    This is the configuration the paper's overhead numbers normalize
    against, and the one in which every evaluated exploit succeeds.
    """

    def __init__(self, kernel: SimKernel, host: Optional[SimProcess] = None) -> None:
        if host is None:
            host = kernel.spawn("host-program", role="host", charge=False)
        super().__init__(kernel, host)
        self._ctx = ExecutionContext(kernel, self.host)

    def call(self, framework: str, name: str, *args: Any, **kwargs: Any) -> Any:
        """Run the API directly in the host process."""
        if framework == OBS_FRAMEWORK:
            return self._obs_annotation(name, args, kwargs)
        api = self._resolve_api(framework, name)
        spec = api.spec
        self.stats.record(CallRecord(
            framework=spec.framework, name=spec.name,
            qualname=spec.qualname, api_type=spec.ground_truth,
        ))
        return self._ctx.invoke(api, *args, **kwargs)

    def materialize(self, value: Any) -> Any:
        """Unwrap a data object to its payload (no copy needed)."""
        if isinstance(value, DataObject):
            return value.data
        return value
