"""FreePart core: analysis, partitioning, RPC, enforcement, runtime.

Heavier members (gateway, runtime) are exported lazily to keep the
``frameworks ↔ core`` import graph acyclic: ``repro.core.apitypes`` and
``repro.core.dataflow`` are imported by the framework layer, while the
gateway/runtime modules import the framework layer back.
"""

from typing import Any

from repro.core.apitypes import APIType, CONCRETE_TYPES, FrameworkState

__all__ = [
    "APIType",
    "ApiGateway",
    "CONCRETE_TYPES",
    "Categorization",
    "CategorizedAPI",
    "FrameworkState",
    "FreePart",
    "FreePartConfig",
    "FreePartGateway",
    "HybridAnalyzer",
    "FrameworkNamespace",
    "NativeGateway",
    "PartitionPlan",
    "RunReport",
    "four_way_plan",
    "hook",
    "hook_all",
    "split_processing_plan",
]

_LAZY_EXPORTS = {
    "ApiGateway": ("repro.core.gateway", "ApiGateway"),
    "NativeGateway": ("repro.core.gateway", "NativeGateway"),
    "Categorization": ("repro.core.hybrid", "Categorization"),
    "CategorizedAPI": ("repro.core.hybrid", "CategorizedAPI"),
    "HybridAnalyzer": ("repro.core.hybrid", "HybridAnalyzer"),
    "PartitionPlan": ("repro.core.partitioner", "PartitionPlan"),
    "four_way_plan": ("repro.core.partitioner", "four_way_plan"),
    "split_processing_plan": ("repro.core.partitioner", "split_processing_plan"),
    "FrameworkNamespace": ("repro.core.hooks", "FrameworkNamespace"),
    "hook": ("repro.core.hooks", "hook"),
    "hook_all": ("repro.core.hooks", "hook_all"),
    "FreePart": ("repro.core.runtime", "FreePart"),
    "FreePartConfig": ("repro.core.runtime", "FreePartConfig"),
    "FreePartGateway": ("repro.core.runtime", "FreePartGateway"),
    "RunReport": ("repro.core.runtime", "RunReport"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
