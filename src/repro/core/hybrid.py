"""Hybrid API categorization (Section 4.2): static first, dynamic fallback.

The driver runs the static analyzer over every API; wherever the static
walk is incomplete (indirect calls) or inconclusive, the dynamic tracer
resolves the category.  The result also carries each API's syscall
profile (declared steady-state + init-only syscalls, verified against the
dynamic trace) — the input to the syscall-restriction policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.apitypes import APIType
from repro.core.dynamic_analysis import DynamicAnalyzer, DynamicResult
from repro.core.static_analysis import StaticAnalyzer, StaticResult
from repro.errors import UncategorizableAPI
from repro.frameworks.base import FrameworkAPI, StatefulKind


@dataclass(frozen=True)
class CategorizedAPI:
    """One API's hybrid-analysis verdict."""

    qualname: str
    framework: str
    name: str
    api_type: APIType
    method: str  # "static" | "dynamic"
    neutral: bool
    stateful: StatefulKind
    syscalls: Tuple[str, ...]
    init_syscalls: Tuple[str, ...]
    covered: bool
    matches_ground_truth: bool


@dataclass
class Categorization:
    """The full categorization of a set of APIs."""

    entries: Dict[str, CategorizedAPI] = field(default_factory=dict)

    def add(self, entry: CategorizedAPI) -> None:
        self.entries[entry.qualname] = entry

    def get(self, qualname: str) -> CategorizedAPI:
        try:
            return self.entries[qualname]
        except KeyError:
            raise UncategorizableAPI(
                f"{qualname} was not part of the analyzed API set"
            ) from None

    def __contains__(self, qualname: str) -> bool:
        return qualname in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def of_type(self, api_type: APIType, include_neutral: bool = False) -> List[CategorizedAPI]:
        return [
            e for e in self.entries.values()
            if e.api_type is api_type and (include_neutral or not e.neutral)
        ]

    def neutrals(self) -> List[CategorizedAPI]:
        return [e for e in self.entries.values() if e.neutral]

    def counts_by_type(self) -> Dict[APIType, int]:
        counts = {t: 0 for t in APIType}
        for entry in self.entries.values():
            counts[entry.api_type] += 1
        return counts

    def accuracy(self) -> float:
        """Fraction of APIs whose verdict matches the spec ground truth."""
        if not self.entries:
            return 1.0
        good = sum(1 for e in self.entries.values() if e.matches_ground_truth)
        return good / len(self.entries)

    def by_method(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries.values():
            counts[entry.method] = counts.get(entry.method, 0) + 1
        return counts


class HybridAnalyzer:
    """Static-then-dynamic categorizer (Fig. 5, offline phase)."""

    def __init__(self, dynamic: Optional[DynamicAnalyzer] = None) -> None:
        self.static = StaticAnalyzer()
        self.dynamic = dynamic if dynamic is not None else DynamicAnalyzer()

    def categorize_api(self, api: FrameworkAPI) -> CategorizedAPI:
        spec = api.spec
        static_result = self.static.analyze(spec)
        method = "static"
        category = static_result.category
        dynamic_result: Optional[DynamicResult] = None
        if static_result.needs_dynamic:
            dynamic_result = self.dynamic.analyze(api)
            if dynamic_result.covered and dynamic_result.category is not None:
                category = dynamic_result.category
                method = "dynamic"
        if category is None:
            raise UncategorizableAPI(
                f"{spec.qualname}: static walk "
                f"{'incomplete' if not static_result.complete else 'inconclusive'}"
                " and no dynamic test case resolves it"
            )
        return CategorizedAPI(
            qualname=spec.qualname,
            framework=spec.framework,
            name=spec.name,
            api_type=category,
            method=method,
            neutral=spec.neutral,
            stateful=spec.stateful,
            syscalls=spec.syscalls,
            init_syscalls=spec.init_syscalls,
            covered=spec.has_test_case,
            matches_ground_truth=category is spec.ground_truth,
        )

    def categorize(self, apis: Iterable[FrameworkAPI]) -> Categorization:
        result = Categorization()
        for api in apis:
            result.add(self.categorize_api(api))
        return result

    def categorize_framework(self, framework) -> Categorization:
        return self.categorize(list(framework))


def categorize_used_apis(apis: Sequence[FrameworkAPI]) -> Categorization:
    """Convenience wrapper used by the runtime's offline phase."""
    return HybridAnalyzer().categorize(apis)


# ----------------------------------------------------------------------
# External call sites (the static partition linter's entry point)
# ----------------------------------------------------------------------

#: Per-API verdict cache keyed by framework name.  Each entry remembers
#: the Framework object it was built against so re-registering a
#: framework under the same name invalidates its stale verdicts.
_CALL_SITE_CACHE: Dict[str, Tuple[object, Dict[str, CategorizedAPI]]] = {}

#: One analyzer shared by every cached call-site lookup (the dynamic
#: tracer's scratch kernels are per-call, so sharing is safe).
_CALL_SITE_ANALYZER: Optional[HybridAnalyzer] = None


def categorize_call_site(framework_name: str, api_name: str) -> CategorizedAPI:
    """Hybrid verdict for one *external* call site ``framework.api``.

    Host-program analyses (``repro.staticcheck``) resolve the call sites
    they find in user source through this function instead of
    re-categorizing whole frameworks per site.  Verdicts are cached
    per API; the cache self-invalidates when a framework is re-registered
    under the same name.

    Raises :class:`~repro.errors.ReproError` for an unknown framework or
    API name and :class:`~repro.errors.UncategorizableAPI` when neither
    analysis phase can type the API.
    """
    global _CALL_SITE_ANALYZER
    from repro.frameworks.registry import get_framework

    framework = get_framework(framework_name)
    api = framework.get(api_name)
    cached = _CALL_SITE_CACHE.get(framework_name)
    if cached is None or cached[0] is not framework:
        cached = (framework, {})
        _CALL_SITE_CACHE[framework_name] = cached
    verdicts = cached[1]
    entry = verdicts.get(api.spec.qualname)
    if entry is None:
        if _CALL_SITE_ANALYZER is None:
            _CALL_SITE_ANALYZER = HybridAnalyzer()
        entry = _CALL_SITE_ANALYZER.categorize_api(api)
        verdicts[api.spec.qualname] = entry
    return entry


def clear_call_site_cache() -> None:
    """Drop every cached call-site verdict (tests re-register frameworks)."""
    _CALL_SITE_CACHE.clear()
