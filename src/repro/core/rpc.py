"""RPC message model and object references (Sections 4.3, 4.3.2).

FreePart's API hooking is a remote procedure call with *exactly-once*
semantics for live agents; restarted agents downgrade to *at-least-once*
(Section 4.4.2).  The lazy-data-copy optimization replaces bulk payloads
with :class:`ObjectRef` values — (owning process, buffer id) pairs, the
paper's "origin" of an object's data — that agents dereference on first
use, copying directly from the owning process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StaleObjectRef

#: Simulated wire size of a reference (pid + buffer id + metadata).
REF_WIRE_BYTES = 64


@dataclass(frozen=True)
class ObjectRef:
    """A reference to a data object living in another process."""

    owner_pid: int
    owner_generation: int
    buffer_id: int
    payload_bytes: int
    kind: str = "object"

    @property
    def nbytes(self) -> int:
        """Wire size: a reference carries no data (LDC's whole point)."""
        return REF_WIRE_BYTES


class RemoteHandle:
    """The host program's opaque view of a remote data object.

    Host code passes handles onwards to other framework APIs; the runtime
    resolves them back to :class:`ObjectRef` values.  Dereferencing the
    data in the host requires an explicit ``gateway.materialize`` (which
    is what makes host-side dereferences rare and the lazy fraction high).
    """

    __slots__ = ("ref",)

    def __init__(self, ref: ObjectRef) -> None:
        self.ref = ref

    @property
    def nbytes(self) -> int:
        return REF_WIRE_BYTES

    @property
    def payload_bytes(self) -> int:
        return self.ref.payload_bytes

    def __repr__(self) -> str:
        return (
            f"RemoteHandle(pid={self.ref.owner_pid}, "
            f"buf={self.ref.buffer_id}, {self.ref.payload_bytes}B)"
        )


@dataclass(frozen=True)
class RpcRequest:
    """One API-execution request (Fig. 10's ``request()``)."""

    seq: int
    api_qualname: str
    args: Tuple[Any, ...]
    kwargs: Tuple[Tuple[str, Any], ...]
    state_label: str

    @property
    def nbytes(self) -> int:
        cached = getattr(self, "_nbytes", None)
        if cached is not None:
            return cached
        from repro.sim.memory import payload_nbytes

        total = 96  # header: seq + ids + state
        for value in self.args:
            total += payload_nbytes(value, frozen=True)
        for _, value in self.kwargs:
            total += payload_nbytes(value, frozen=True)
        # Requests are frozen, so the size never changes: cache it for
        # the retransmit/reply-cache paths that re-frame the same object.
        object.__setattr__(self, "_nbytes", total)
        return total


@dataclass(frozen=True)
class RpcResponse:
    """The result (or error) of one request (``agent_ret()``)."""

    seq: int
    value: Any = None
    error: Optional[str] = None

    @property
    def nbytes(self) -> int:
        cached = getattr(self, "_nbytes", None)
        if cached is not None:
            return cached
        from repro.sim.memory import payload_nbytes

        total = 64 + payload_nbytes(self.value, frozen=True)
        object.__setattr__(self, "_nbytes", total)
        return total


#: Wire size of the batch envelope (count + flags + checksum).
BATCH_HEADER_BYTES = 32
#: Per-item framing inside a batch (offset + length of each part).
#: Legacy per-message-envelope framing; kept for the savings arithmetic.
BATCH_ITEM_FRAME_BYTES = 16
#: Header bytes every RpcRequest carries (see RpcRequest.nbytes).
REQUEST_HEADER_BYTES = 96
#: Header bytes every RpcResponse carries (see RpcResponse.nbytes).
RESPONSE_HEADER_BYTES = 64
#: Fused framing: one offset-table entry per item (u32 offset + u32 len).
BATCH_OFFSET_ENTRY_BYTES = 8
#: Fused framing: the per-item header shrinks to seq + api id + state tag
#: because channel/session framing is hoisted into the batch envelope.
FUSED_ITEM_HEADER_BYTES = 24


@dataclass(frozen=True)
class BatchChain:
    """A placeholder argument: "the result of an earlier item in this batch".

    ``offset`` counts backwards (1 = the immediately preceding item).
    Chained intermediates are resolved *inside* the agent during batch
    execution, so they never cross the IPC boundary at all — the
    strongest form of the lazy-data-copy argument.
    """

    offset: int = 1

    #: Wire size of the placeholder (an index, not data).
    nbytes: int = 16


@dataclass(frozen=True)
class RpcBatchRequest:
    """Several adjacent same-agent requests framed as ONE IPC message.

    The serving layer coalesces consecutive calls a request makes to the
    same agent so the whole group pays one ring-buffer round trip instead
    of one per call.  Framing is *fused*: a 32-byte batch envelope with an
    offset table (8 bytes per item) locating each item, and a reduced
    24-byte per-item header — the full 96-byte request header would
    duplicate channel/session framing the envelope already carries.
    Payload bytes are unchanged, so byte accounting stays honest while
    both the *message count* (fixed per-message latency) and the per-item
    envelope overhead collapse.
    """

    requests: Tuple[RpcRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def nbytes(self) -> int:
        cached = getattr(self, "_nbytes", None)
        if cached is not None:
            return cached
        total = BATCH_HEADER_BYTES
        for request in self.requests:
            total += (
                BATCH_OFFSET_ENTRY_BYTES
                + FUSED_ITEM_HEADER_BYTES
                + (request.nbytes - REQUEST_HEADER_BYTES)
            )
        object.__setattr__(self, "_nbytes", total)
        return total

    @property
    def fused_savings(self) -> int:
        """Bytes saved vs the per-message-envelope framing of this batch
        (16-byte item frame + full 96-byte header per item)."""
        per_item = (
            BATCH_ITEM_FRAME_BYTES
            + REQUEST_HEADER_BYTES
            - BATCH_OFFSET_ENTRY_BYTES
            - FUSED_ITEM_HEADER_BYTES
        )
        return per_item * len(self.requests)


@dataclass(frozen=True)
class RpcBatchResponse:
    """The per-item results of a batch, framed as ONE IPC message."""

    responses: Tuple[RpcResponse, ...]

    def __len__(self) -> int:
        return len(self.responses)

    @property
    def nbytes(self) -> int:
        cached = getattr(self, "_nbytes", None)
        if cached is not None:
            return cached
        total = BATCH_HEADER_BYTES
        for response in self.responses:
            total += (
                BATCH_OFFSET_ENTRY_BYTES
                + FUSED_ITEM_HEADER_BYTES
                + (response.nbytes - RESPONSE_HEADER_BYTES)
            )
        object.__setattr__(self, "_nbytes", total)
        return total

    @property
    def fused_savings(self) -> int:
        """Bytes saved vs per-message-envelope framing of the responses."""
        per_item = (
            BATCH_ITEM_FRAME_BYTES
            + RESPONSE_HEADER_BYTES
            - BATCH_OFFSET_ENTRY_BYTES
            - FUSED_ITEM_HEADER_BYTES
        )
        return per_item * len(self.responses)


class SequenceTracker:
    """Enforces exactly-once execution per agent channel.

    Each request carries a sequence number; the tracker records every
    *execution* of a number, so a duplicated or retransmitted request
    that actually re-runs the API body shows up as a retry and breaks
    ``exactly_once``.  The agent's reply cache turns such deliveries
    into cache hits instead — recorded here as suppressed duplicates —
    which is what keeps stateful APIs from double-applying when a lost
    reply forces the sender to retransmit (the at-least-once protocol's
    dedup half).
    """

    def __init__(self) -> None:
        self._seq = itertools.count(1)
        self.executed: Dict[int, int] = {}
        self.retries = 0
        #: Deliveries answered from the reply cache without re-running
        #: the API body (duplicated messages, retried requests).
        self.duplicates_suppressed = 0

    def next_seq(self) -> int:
        return next(self._seq)

    def record_execution(self, seq: int) -> None:
        count = self.executed.get(seq, 0)
        if count >= 1:
            self.retries += 1
        self.executed[seq] = count + 1

    def record_duplicate(self, seq: int) -> None:
        """A delivery of ``seq`` was served from the reply cache."""
        self.duplicates_suppressed += 1

    def executions_of(self, seq: int) -> int:
        return self.executed.get(seq, 0)

    @property
    def exactly_once(self) -> bool:
        return all(count == 1 for count in self.executed.values())


class ObjectStore:
    """Per-process registry of live data objects exposed through refs."""

    def __init__(self, process) -> None:
        self.process = process

    def register(self, payload: Any, state_label: str, tag: str = "") -> ObjectRef:
        """Allocate the payload in the owning process and hand out a ref."""
        from repro.sim.memory import payload_nbytes

        buffer = self.process.memory.alloc_object(
            payload, tag=tag or "rpc-object", origin_state=state_label
        )
        return ObjectRef(
            owner_pid=self.process.pid,
            owner_generation=self.process.generation,
            buffer_id=buffer.buffer_id,
            payload_bytes=payload_nbytes(payload),
            kind=getattr(payload, "kind", type(payload).__name__),
        )

    def fetch(self, ref: ObjectRef) -> Any:
        """Read a locally owned object (no copy)."""
        if ref.owner_pid != self.process.pid:
            raise StaleObjectRef(
                f"ref owned by pid {ref.owner_pid}, store is pid {self.process.pid}"
            )
        if ref.owner_generation != self.process.generation:
            raise StaleObjectRef(
                f"ref generation {ref.owner_generation} predates restart "
                f"(current generation {self.process.generation})"
            )
        tracer = getattr(self.process, "tracer", None)
        if tracer is not None and tracer.enabled:
            tracer.instant("ldc_deref", category="copy",
                           pid=self.process.pid, buffer_id=ref.buffer_id,
                           kind=ref.kind, bytes=ref.payload_bytes)
        return self.process.memory.load(ref.buffer_id)
