"""Agent processes (Sections 4.3.1 and 4.4.2).

One :class:`AgentProcess` hosts all framework APIs of one partition.  It
owns a simulated process with a sealed seccomp filter, an object store
for lazy-data-copy references, an IPC channel pair to the host program,
and the restart machinery: when the process crashes (exploit, seccomp
kill, segfault) the kernel replaces it with a fresh process and the old
object store becomes stale — the paper intentionally does *not* restore a
crashed process's variables.

Stateful APIs (Appendix A.2.4) are checkpointed periodically so the
at-least-once re-execution after a restart can resume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.partitioner import Partition
from repro.core.rpc import (
    BatchChain,
    ObjectRef,
    ObjectStore,
    RpcBatchRequest,
    RpcBatchResponse,
    RpcRequest,
    RpcResponse,
    SequenceTracker,
)
from repro.errors import AgentUnavailable, StaleObjectRef
from repro.frameworks.base import (
    DataObject,
    ExecutionContext,
    FrameworkAPI,
    StatefulKind,
)
from repro.sim.filters import FilterSpec
from repro.sim.ipc import ChannelPair
from repro.sim.kernel import SimKernel
from repro.sim.process import SimProcess

#: How many stateful-API invocations pass between two checkpoints.
CHECKPOINT_INTERVAL = 16

RefResolver = Callable[[ObjectRef], Any]


@dataclass
class AgentStats:
    requests: int = 0
    restarts: int = 0
    crashes: int = 0
    stateful_calls: int = 0
    checkpoints: int = 0
    restored_from_checkpoint: int = 0


class AgentProcess:
    """One isolated agent process executing a partition's APIs."""

    def __init__(
        self,
        kernel: SimKernel,
        partition: Partition,
        filter_spec: Optional[FilterSpec] = None,
        restrict_syscalls: bool = True,
        max_restarts: Optional[int] = None,
    ) -> None:
        self.kernel = kernel
        self.partition = partition
        self.filter_spec = filter_spec
        self.restrict_syscalls = restrict_syscalls
        self.max_restarts = max_restarts
        self.stats = AgentStats()
        self.sequence = SequenceTracker()
        self._checkpoint: Dict[str, int] = {}
        #: Snapshot of the process's stateful-API internal state, taken
        #: every CHECKPOINT_INTERVAL stateful calls (Appendix A.2.4).
        self._checkpoint_state: Dict[str, Any] = {}
        #: Foreign objects already copied into this process: the lazy copy
        #: happens once per object, later dereferences are local reads.
        self._resident: Dict[Tuple[int, int, int], Any] = {}
        self.process = self._spawn()
        self.store = ObjectStore(self.process)
        self.ctx = ExecutionContext(kernel, self.process)
        # Channel names carry the pid so per-thread agent sets (Section 6)
        # never share a ring buffer.
        self.channel: ChannelPair = kernel.channel_pair(
            f"agent-{partition.index}-{partition.label}-{self.process.pid}"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _build_filter(self):
        if not self.restrict_syscalls or self.filter_spec is None:
            return None
        built = self.filter_spec.build()
        built.seal()
        return built

    def _spawn(self) -> SimProcess:
        return self.kernel.spawn(
            name=f"agent:{self.partition.label}",
            syscall_filter=self._build_filter(),
            role="agent",
        )

    @property
    def alive(self) -> bool:
        return self.process.alive

    def restart(self) -> None:
        """Replace a crashed process; variables are *not* restored.

        Raises :class:`AgentUnavailable` once the restart budget is
        spent — the anti-crash-loop guard for availability-first setups.
        """
        if self.max_restarts is not None and self.stats.restarts >= self.max_restarts:
            raise AgentUnavailable(
                f"agent {self.partition.label!r} exceeded its restart "
                f"budget ({self.max_restarts})"
            )
        replacement = self.kernel.restart(
            self.process,
            filter_spec=self.filter_spec if self.restrict_syscalls else None,
        )
        self.process = replacement
        self.store = ObjectStore(replacement)
        self.ctx = ExecutionContext(self.kernel, replacement)
        self._resident.clear()  # the old address space is gone
        self.stats.restarts += 1
        if self._checkpoint_state or self._checkpoint:
            # Stateful APIs resume from the last periodic checkpoint; any
            # progress since then is re-executed (at-least-once).
            replacement.framework_state.update(self._checkpoint_state)
            self.stats.restored_from_checkpoint += 1

    def require_alive(self) -> None:
        """Raise AgentUnavailable if the process crashed."""
        if not self.process.alive:
            raise AgentUnavailable(
                f"agent {self.partition.label!r} (pid {self.process.pid}) crashed"
            )

    def end_init_phase(self) -> None:
        """Close the seccomp init grace phase."""
        self.process.filter.end_init_phase()

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def execute(
        self,
        api: FrameworkAPI,
        request: RpcRequest,
        resolve_ref: RefResolver,
        ldc: bool,
    ) -> RpcResponse:
        """Run one API request inside this agent's process."""
        return self._execute_raw(api, request, resolve_ref, ldc)[0]

    def _execute_raw(
        self,
        api: FrameworkAPI,
        request: RpcRequest,
        resolve_ref: RefResolver,
        ldc: bool,
    ) -> Tuple[RpcResponse, Any]:
        """Run a request; also return the un-wrapped result for chaining."""
        self.require_alive()
        self.sequence.record_execution(request.seq)
        self.stats.requests += 1
        args = tuple(
            self._materialize(value, resolve_ref, request.state_label)
            for value in request.args
        )
        kwargs = {
            key: self._materialize(value, resolve_ref, request.state_label)
            for key, value in request.kwargs
        }
        self.ctx.state_label = request.state_label
        result = self.ctx.invoke(api, *args, **kwargs)
        self._track_statefulness(api)
        if ldc and isinstance(result, DataObject):
            ref = self.store.register(
                result, state_label=request.state_label, tag=api.spec.qualname
            )
            return RpcResponse(seq=request.seq, value=ref), result
        return RpcResponse(seq=request.seq, value=result), result

    def execute_batch(
        self,
        apis: "List[FrameworkAPI]",
        batch: RpcBatchRequest,
        resolve_ref: RefResolver,
        ldc: bool,
    ) -> RpcBatchResponse:
        """Run a coalesced group of requests in one dispatch.

        Items execute in order; a crash mid-batch propagates after the
        completed prefix has already mutated agent state, exactly like a
        partially processed ring buffer would.  ``apis`` pairs positionally
        with ``batch.requests``.  :class:`BatchChain` placeholder arguments
        are resolved against earlier items' raw results *inside* this
        process, so chained intermediates never touch the IPC path.
        """
        if len(apis) != len(batch.requests):
            raise ValueError(
                f"batch shape mismatch: {len(apis)} APIs for "
                f"{len(batch.requests)} requests"
            )
        raw_results: List[Any] = []
        responses: List[RpcResponse] = []
        for index, (api, request) in enumerate(zip(apis, batch.requests)):
            request = self._resolve_chains(request, index, raw_results)
            response, raw = self._execute_raw(api, request, resolve_ref, ldc)
            raw_results.append(raw)
            responses.append(response)
        return RpcBatchResponse(responses=tuple(responses))

    def _resolve_chains(
        self, request: RpcRequest, index: int, raw_results: List[Any]
    ) -> RpcRequest:
        """Substitute BatchChain placeholders with earlier raw results."""

        def resolve(value: Any) -> Any:
            if isinstance(value, BatchChain):
                at = index - value.offset
                if at < 0 or at >= len(raw_results):
                    raise ValueError(
                        f"batch item {index} chains to item {at}, which "
                        "has not executed"
                    )
                return raw_results[at]
            if isinstance(value, (list, tuple)):
                resolved = [resolve(item) for item in value]
                return (
                    type(value)(resolved)
                    if isinstance(value, tuple)
                    else resolved
                )
            return value

        has_chain = any(
            isinstance(v, BatchChain) for v in request.args
        ) or any(isinstance(v, BatchChain) for _, v in request.kwargs)
        if not has_chain:
            return request
        import dataclasses as _dc

        return _dc.replace(
            request,
            args=tuple(resolve(v) for v in request.args),
            kwargs=tuple((k, resolve(v)) for k, v in request.kwargs),
        )

    def _materialize(
        self, value: Any, resolve_ref: RefResolver, state_label: str
    ) -> Any:
        """Dereference an ObjectRef argument (the lazy copy, Fig. 11)."""
        if isinstance(value, (list, tuple)):
            resolved = [
                self._materialize(item, resolve_ref, state_label)
                for item in value
            ]
            return type(value)(resolved) if isinstance(value, tuple) else resolved
        if not isinstance(value, ObjectRef):
            return value
        if (
            value.owner_pid == self.process.pid
            and value.owner_generation == self.process.generation
        ):
            # Already resident: the reference chain collapsed to zero copies.
            return self.store.fetch(value)
        key = (value.owner_pid, value.owner_generation, value.buffer_id)
        if key in self._resident:
            # Copied on an earlier dereference; now a local read.
            return self._resident[key]
        payload = resolve_ref(value)
        source = self.kernel.process(value.owner_pid)
        self.kernel.transfer(
            source,
            self.process,
            payload,
            tag=f"ldc:{value.kind}",
            origin_state=state_label,
            lazy=True,
            count_message=False,
        )
        self._resident[key] = payload
        return payload

    def fetch_local(self, ref: ObjectRef) -> Any:
        """Read an object this agent owns (used by the runtime resolver)."""
        return self.store.fetch(ref)

    def _track_statefulness(self, api: FrameworkAPI) -> None:
        if api.spec.stateful is not StatefulKind.DATA_STATE:
            return
        self.stats.stateful_calls += 1
        key = api.spec.qualname
        self._checkpoint[key] = self._checkpoint.get(key, 0) + 1
        if self.stats.stateful_calls % CHECKPOINT_INTERVAL == 0:
            self._take_checkpoint()

    def _take_checkpoint(self) -> None:
        """Periodically persist stateful-API state (Appendix A.2.4)."""
        import copy as _copy

        cost = self.kernel.clock.cost_model
        self._checkpoint_state = _copy.deepcopy(self.process.framework_state)
        state_bytes = 256 * max(
            len(self._checkpoint) + len(self._checkpoint_state), 1
        )
        charge_ns = int(cost.checkpoint_ns_per_byte * state_bytes)
        tracer = self.kernel.tracer
        if tracer.enabled:
            with tracer.span("checkpoint", category="checkpoint",
                             pid=self.process.pid, bytes=state_bytes,
                             agent=self.partition.label):
                self.kernel.clock.advance(charge_ns)
        else:
            self.kernel.clock.advance(charge_ns)
        self.stats.checkpoints += 1

    @property
    def checkpointed_state(self) -> Dict[str, int]:
        return dict(self._checkpoint)
