"""Agent processes (Sections 4.3.1 and 4.4.2).

One :class:`AgentProcess` hosts all framework APIs of one partition.  It
owns a simulated process with a sealed seccomp filter, an object store
for lazy-data-copy references, an IPC channel pair to the host program,
and the restart machinery: when the process crashes (exploit, seccomp
kill, segfault) the kernel replaces it with a fresh process and the old
object store becomes stale — the paper intentionally does *not* restore a
crashed process's variables.

Stateful APIs (Appendix A.2.4) are checkpointed periodically so the
at-least-once re-execution after a restart can resume them.  Checkpoints
are written as sealed generations (state snapshot + checksum): a write
torn mid-way by a fault fails validation and restore falls back to the
previous intact generation.  A small reply cache gives duplicated or
retransmitted requests exactly-once *effect* while the process lives;
the cache dies with the process, which is what downgrades restarted
agents to at-least-once (Section 4.4.2).
"""

from __future__ import annotations

import hashlib
import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.partitioner import Partition
from repro.core.rpc import (
    BatchChain,
    ObjectRef,
    ObjectStore,
    RpcBatchRequest,
    RpcBatchResponse,
    RpcRequest,
    RpcResponse,
    SequenceTracker,
)
from repro.errors import AgentUnavailable, ProcessCrashed, StaleObjectRef
from repro.faults.plan import FaultKind
from repro.frameworks.base import (
    DataObject,
    ExecutionContext,
    FrameworkAPI,
    StatefulKind,
)
from repro.sim.filters import FilterSpec
from repro.sim.ipc import ChannelPair
from repro.sim.kernel import SimKernel
from repro.sim.process import SimProcess

#: How many stateful-API invocations pass between two checkpoints.
CHECKPOINT_INTERVAL = 16

#: How many checkpoint generations an agent retains for fallback.
CHECKPOINT_HISTORY = 3

#: Replies remembered for duplicate suppression (per agent process).
REPLY_CACHE_SIZE = 256

#: First restart retries immediately; subsequent attempts in the same
#: repair (a restart storm) back off exponentially from this base.
RESTART_BACKOFF_BASE_NS = 100_000
RESTART_BACKOFF_CAP_NS = 10_000_000

RefResolver = Callable[[ObjectRef], Any]


def _fingerprint(value: Any) -> str:
    """A stable content digest for one framework-state value."""
    import numpy as np

    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(value.tobytes()).hexdigest()
        return f"ndarray:{value.shape}:{value.dtype}:{digest}"
    if isinstance(value, dict):
        inner = ",".join(
            f"{key}={_fingerprint(item)}"
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        inner = ",".join(_fingerprint(item) for item in value)
        return f"{type(value).__name__}[{inner}]"
    data = getattr(value, "data", None)
    if isinstance(data, np.ndarray):
        return f"{type(value).__name__}({_fingerprint(data)})"
    return f"{type(value).__name__}:{value!r}"


def checkpoint_checksum(state: Dict[str, Any]) -> str:
    """Content checksum sealing one checkpoint's state snapshot."""
    hasher = hashlib.sha256()
    for key in sorted(state):
        hasher.update(key.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(_fingerprint(state[key]).encode("utf-8"))
        hasher.update(b"\x01")
    return hasher.hexdigest()


@dataclass(frozen=True)
class CheckpointRecord:
    """One sealed checkpoint generation.

    ``checksum`` is computed over the *intended* snapshot before the
    write; a torn write stores a truncated ``state`` under the full
    checksum, so :meth:`validate` catches it and restore falls back.
    """

    generation: int
    items: int
    state: Dict[str, Any]
    checksum: str

    def validate(self) -> bool:
        """Whether the stored state matches the sealed checksum."""
        return (
            len(self.state) == self.items
            and checkpoint_checksum(self.state) == self.checksum
        )


@dataclass
class AgentStats:
    requests: int = 0
    restarts: int = 0
    crashes: int = 0
    stateful_calls: int = 0
    checkpoints: int = 0
    restored_from_checkpoint: int = 0
    #: Deliveries answered from the reply cache instead of re-executing.
    deduped_requests: int = 0
    #: Checkpoint writes that were torn by an injected fault.
    checkpoint_failures: int = 0
    #: Torn records detected (and skipped) while restoring.
    torn_checkpoints_detected: int = 0
    #: Virtual time spent backing off between restart attempts.
    restart_backoff_ns: int = 0


class AgentProcess:
    """One isolated agent process executing a partition's APIs."""

    def __init__(
        self,
        kernel: SimKernel,
        partition: Partition,
        filter_spec: Optional[FilterSpec] = None,
        restrict_syscalls: bool = True,
        max_restarts: Optional[int] = None,
        zero_copy: bool = False,
    ) -> None:
        self.kernel = kernel
        self.partition = partition
        self.filter_spec = filter_spec
        self.restrict_syscalls = restrict_syscalls
        self.max_restarts = max_restarts
        #: Dereference large ObjectRefs by remapping shared pages instead
        #: of copying bytes (zero-copy LDC); small payloads still copy.
        self.zero_copy = zero_copy
        self.stats = AgentStats()
        self.sequence = SequenceTracker()
        self._checkpoint: Dict[str, int] = {}
        #: Sealed checkpoint generations, oldest first; restore walks
        #: newest-to-oldest past torn records (Appendix A.2.4).
        self._checkpoints: List[CheckpointRecord] = []
        self._checkpoint_generations = itertools.count(1)
        #: Reply cache for duplicate suppression: seq -> (response, raw
        #: result).  Dies with the process — a restarted agent re-executes
        #: retried requests from its checkpoint (at-least-once).
        self._reply_cache: "OrderedDict[int, Tuple[RpcResponse, Any]]" = (
            OrderedDict()
        )
        #: Foreign objects already copied into this process: the lazy copy
        #: happens once per object, later dereferences are local reads.
        self._resident: Dict[Tuple[int, int, int], Any] = {}
        self.process = self._spawn()
        self.store = ObjectStore(self.process)
        self.ctx = ExecutionContext(kernel, self.process)
        # Channel names carry the pid so per-thread agent sets (Section 6)
        # never share a ring buffer.
        self.channel: ChannelPair = kernel.channel_pair(
            f"agent-{partition.index}-{partition.label}-{self.process.pid}"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _build_filter(self):
        if not self.restrict_syscalls or self.filter_spec is None:
            return None
        built = self.filter_spec.build()
        built.seal()
        return built

    def _spawn(self) -> SimProcess:
        return self.kernel.spawn(
            name=f"agent:{self.partition.label}",
            syscall_filter=self._build_filter(),
            role="agent",
        )

    @property
    def alive(self) -> bool:
        return self.process.alive

    def restart(self) -> None:
        """Replace a crashed process; variables are *not* restored.

        Handles restart storms: if the replacement itself crashes (an
        injected restart fault), further attempts back off exponentially
        on the virtual clock.  Raises :class:`AgentUnavailable` once the
        restart budget is spent — the anti-crash-loop guard for
        availability-first setups.  Every attempt (including failed
        ones) counts against the budget.
        """
        import copy as _copy

        attempt = 0
        while True:
            if (
                self.max_restarts is not None
                and self.stats.restarts >= self.max_restarts
            ):
                raise AgentUnavailable(
                    f"agent {self.partition.label!r} exceeded its restart "
                    f"budget ({self.max_restarts})"
                )
            if attempt > 0:
                backoff_ns = min(
                    RESTART_BACKOFF_BASE_NS << (attempt - 1),
                    RESTART_BACKOFF_CAP_NS,
                )
                tracer = self.kernel.tracer
                if tracer.enabled:
                    with tracer.span(
                        "restart_backoff", category="restart",
                        pid=self.process.pid, agent=self.partition.label,
                        attempt=attempt, backoff_ns=backoff_ns,
                    ):
                        self.kernel.clock.advance(backoff_ns)
                else:
                    self.kernel.clock.advance(backoff_ns)
                self.stats.restart_backoff_ns += backoff_ns
            replacement = self.kernel.restart(
                self.process,
                filter_spec=(
                    self.filter_spec if self.restrict_syscalls else None
                ),
            )
            self.process = replacement
            self.stats.restarts += 1
            faults = self.kernel.faults
            if faults.enabled and faults.restart_crash(self):
                # The replacement died before becoming serviceable —
                # a restart storm.  Back off and try again.
                replacement.crash("injected fault: restart-crash")
                self.stats.crashes += 1
                attempt += 1
                continue
            break
        self.store = ObjectStore(replacement)
        self.ctx = ExecutionContext(self.kernel, replacement)
        self._resident.clear()  # the old address space is gone
        self._reply_cache.clear()  # cached replies died with the process
        record = self._latest_valid_checkpoint(count_torn=True)
        if self._checkpoint or record is not None:
            # Stateful APIs resume from the last *intact* periodic
            # checkpoint; any progress since then is re-executed
            # (at-least-once).
            if record is not None:
                replacement.framework_state.update(
                    _copy.deepcopy(record.state)
                )
            self.stats.restored_from_checkpoint += 1

    def _latest_valid_checkpoint(
        self, count_torn: bool = False
    ) -> Optional[CheckpointRecord]:
        """Newest checkpoint generation that passes validation."""
        for record in reversed(self._checkpoints):
            if record.validate():
                return record
            if count_torn:
                self.stats.torn_checkpoints_detected += 1
        return None

    def require_alive(self) -> None:
        """Raise AgentUnavailable if the process crashed."""
        if not self.process.alive:
            raise AgentUnavailable(
                f"agent {self.partition.label!r} (pid {self.process.pid}) crashed"
            )

    def end_init_phase(self) -> None:
        """Close the seccomp init grace phase."""
        self.process.filter.end_init_phase()

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------

    def execute(
        self,
        api: FrameworkAPI,
        request: RpcRequest,
        resolve_ref: RefResolver,
        ldc: bool,
    ) -> RpcResponse:
        """Run one API request inside this agent's process."""
        return self._execute_raw(api, request, resolve_ref, ldc)[0]

    def _execute_raw(
        self,
        api: FrameworkAPI,
        request: RpcRequest,
        resolve_ref: RefResolver,
        ldc: bool,
    ) -> Tuple[RpcResponse, Any]:
        """Run a request; also return the un-wrapped result for chaining."""
        self.require_alive()
        faults = self.kernel.faults
        crash_point = (
            faults.rpc_crash_point(self, request) if faults.enabled else None
        )
        if crash_point is FaultKind.CRASH_BEFORE_EXECUTE:
            self._injected_crash(crash_point, request)
        cached = self._reply_cache.get(request.seq)
        if cached is not None:
            # Duplicate delivery (duplicated message or retransmitted
            # request): answer from the cache so stateful APIs are not
            # applied twice — exactly-once *effect* for live agents.
            self.sequence.record_duplicate(request.seq)
            self.stats.deduped_requests += 1
            return cached
        self.sequence.record_execution(request.seq)
        self.stats.requests += 1
        args = tuple(
            self._materialize(value, resolve_ref, request.state_label)
            for value in request.args
        )
        kwargs = {
            key: self._materialize(value, resolve_ref, request.state_label)
            for key, value in request.kwargs
        }
        self.ctx.state_label = request.state_label
        result = self.ctx.invoke(api, *args, **kwargs)
        self._track_statefulness(api)
        if crash_point is FaultKind.CRASH_AFTER_EXECUTE:
            # State applied, reply never produced: the retransmitted
            # request re-executes from the checkpoint after restart.
            self._injected_crash(crash_point, request)
        if ldc and isinstance(result, DataObject):
            ref = self.store.register(
                result, state_label=request.state_label, tag=api.spec.qualname
            )
            response = RpcResponse(seq=request.seq, value=ref)
        else:
            response = RpcResponse(seq=request.seq, value=result)
        self._cache_reply(request.seq, response, result)
        if crash_point is FaultKind.CRASH_MID_REPLY:
            # Reply produced (and cached) but the process dies before it
            # reaches the ring buffer.
            self._injected_crash(crash_point, request)
        return response, result

    def _cache_reply(self, seq: int, response: RpcResponse, raw: Any) -> None:
        self._reply_cache[seq] = (response, raw)
        while len(self._reply_cache) > REPLY_CACHE_SIZE:
            self._reply_cache.popitem(last=False)

    def _injected_crash(self, point: FaultKind, request: RpcRequest) -> None:
        self.process.crash(
            f"injected fault: {point.value} "
            f"({request.api_qualname} seq {request.seq})"
        )
        raise ProcessCrashed(
            f"agent {self.partition.label!r} (pid {self.process.pid}) "
            f"crashed by injected fault {point.value}"
        )

    def execute_batch(
        self,
        apis: "List[FrameworkAPI]",
        batch: RpcBatchRequest,
        resolve_ref: RefResolver,
        ldc: bool,
    ) -> RpcBatchResponse:
        """Run a coalesced group of requests in one dispatch.

        Items execute in order; a crash mid-batch propagates after the
        completed prefix has already mutated agent state, exactly like a
        partially processed ring buffer would.  ``apis`` pairs positionally
        with ``batch.requests``.  :class:`BatchChain` placeholder arguments
        are resolved against earlier items' raw results *inside* this
        process, so chained intermediates never touch the IPC path.
        """
        if len(apis) != len(batch.requests):
            raise ValueError(
                f"batch shape mismatch: {len(apis)} APIs for "
                f"{len(batch.requests)} requests"
            )
        raw_results: List[Any] = []
        responses: List[RpcResponse] = []
        for index, (api, request) in enumerate(zip(apis, batch.requests)):
            request = self._resolve_chains(request, index, raw_results)
            response, raw = self._execute_raw(api, request, resolve_ref, ldc)
            raw_results.append(raw)
            responses.append(response)
        return RpcBatchResponse(responses=tuple(responses))

    def _resolve_chains(
        self, request: RpcRequest, index: int, raw_results: List[Any]
    ) -> RpcRequest:
        """Substitute BatchChain placeholders with earlier raw results."""

        def resolve(value: Any) -> Any:
            if isinstance(value, BatchChain):
                at = index - value.offset
                if at < 0 or at >= len(raw_results):
                    raise ValueError(
                        f"batch item {index} chains to item {at}, which "
                        "has not executed"
                    )
                return raw_results[at]
            if isinstance(value, (list, tuple)):
                resolved = [resolve(item) for item in value]
                return (
                    type(value)(resolved)
                    if isinstance(value, tuple)
                    else resolved
                )
            return value

        has_chain = any(
            isinstance(v, BatchChain) for v in request.args
        ) or any(isinstance(v, BatchChain) for _, v in request.kwargs)
        if not has_chain:
            return request
        import dataclasses as _dc

        return _dc.replace(
            request,
            args=tuple(resolve(v) for v in request.args),
            kwargs=tuple((k, resolve(v)) for k, v in request.kwargs),
        )

    def _materialize(
        self, value: Any, resolve_ref: RefResolver, state_label: str
    ) -> Any:
        """Dereference an ObjectRef argument (the lazy copy, Fig. 11)."""
        if isinstance(value, (list, tuple)):
            resolved = [
                self._materialize(item, resolve_ref, state_label)
                for item in value
            ]
            return type(value)(resolved) if isinstance(value, tuple) else resolved
        if not isinstance(value, ObjectRef):
            return value
        if (
            value.owner_pid == self.process.pid
            and value.owner_generation == self.process.generation
        ):
            # Already resident: the reference chain collapsed to zero copies.
            return self.store.fetch(value)
        key = (value.owner_pid, value.owner_generation, value.buffer_id)
        if key in self._resident:
            # Copied on an earlier dereference; now a local read.
            return self._resident[key]
        payload = resolve_ref(value)
        source = self.kernel.process(value.owner_pid)
        self.kernel.transfer(
            source,
            self.process,
            payload,
            tag=f"ldc:{value.kind}",
            origin_state=state_label,
            lazy=True,
            count_message=False,
            zero_copy=self.zero_copy,
        )
        self._resident[key] = payload
        return payload

    def fetch_local(self, ref: ObjectRef) -> Any:
        """Read an object this agent owns (used by the runtime resolver)."""
        return self.store.fetch(ref)

    def _track_statefulness(self, api: FrameworkAPI) -> None:
        if api.spec.stateful is not StatefulKind.DATA_STATE:
            return
        self.stats.stateful_calls += 1
        key = api.spec.qualname
        self._checkpoint[key] = self._checkpoint.get(key, 0) + 1
        if self.stats.stateful_calls % CHECKPOINT_INTERVAL == 0:
            self._take_checkpoint()

    def _take_checkpoint(self) -> None:
        """Periodically persist stateful-API state (Appendix A.2.4).

        The snapshot is sealed with a content checksum *before* the
        write; an injected tear truncates the stored state but keeps the
        full-state checksum, so the record fails validation and restore
        falls back to the previous generation.
        """
        import copy as _copy

        cost = self.kernel.clock.cost_model
        state = _copy.deepcopy(self.process.framework_state)
        items = len(state)
        checksum = checkpoint_checksum(state)
        faults = self.kernel.faults
        tear_at = (
            faults.checkpoint_tear(self, items) if faults.enabled else None
        )
        if tear_at is not None:
            kept = sorted(state)[:tear_at]
            state = {key: state[key] for key in kept}
        record = CheckpointRecord(
            generation=next(self._checkpoint_generations),
            items=items,
            state=state,
            checksum=checksum,
        )
        self._checkpoints.append(record)
        del self._checkpoints[:-CHECKPOINT_HISTORY]
        state_bytes = 256 * max(len(self._checkpoint) + items, 1)
        charge_ns = int(cost.checkpoint_ns_per_byte * state_bytes)
        tracer = self.kernel.tracer
        if tracer.enabled:
            with tracer.span("checkpoint", category="checkpoint",
                             pid=self.process.pid, bytes=state_bytes,
                             agent=self.partition.label):
                self.kernel.clock.advance(charge_ns)
        else:
            self.kernel.clock.advance(charge_ns)
        self.stats.checkpoints += 1
        if tear_at is not None:
            self.stats.checkpoint_failures += 1

    @property
    def _checkpoint_state(self) -> Dict[str, Any]:
        """The newest intact checkpoint snapshot (compatibility view)."""
        record = self._latest_valid_checkpoint()
        return record.state if record is not None else {}

    @property
    def checkpointed_state(self) -> Dict[str, int]:
        return dict(self._checkpoint)
