"""Dynamic analysis: traced test-case executions (Section 4.2.2).

For every API with a test case (derived from the frameworks' example and
test suites, as the paper does with opencv_extra / torchtest / Caffe and
TensorFlow test suites), the analyzer runs the API in a **scratch kernel**
under a permissive filter with a tracer attached, and records:

* the observed data flows (after the copy-via-file reduction), and
* the distinct syscalls the execution issued (the per-API required-syscall
  profile of Fig. 12).

APIs without a test case are *uncovered* — Table 11 reports the coverage
ratio per framework, and the paper notes uncovered APIs are not used by
any evaluated program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.apitypes import APIType
from repro.core.dataflow import Flow, categorize_flows, reduce_file_copies
from repro.frameworks.base import ExecutionContext, FrameworkAPI, Tracer
from repro.sim.kernel import SimKernel


@dataclass
class DynamicResult:
    """Outcome of tracing one API's test case."""

    qualname: str
    covered: bool
    flows: Tuple[Flow, ...] = ()
    syscalls: Tuple[str, ...] = ()
    category: Optional[APIType] = None
    error: Optional[str] = None


class DynamicAnalyzer:
    """Executes test cases in isolated scratch kernels and traces them."""

    def __init__(self, repetitions: int = 1) -> None:
        self.repetitions = repetitions

    def analyze(self, api: FrameworkAPI) -> DynamicResult:
        spec = api.spec
        if spec.example_args is None:
            return DynamicResult(qualname=spec.qualname, covered=False)
        tracer = Tracer()
        error: Optional[str] = None
        for _ in range(max(1, self.repetitions)):
            kernel = SimKernel()
            process = kernel.spawn(
                f"trace:{spec.qualname}", role="analysis", charge=False
            )
            ctx = ExecutionContext(
                kernel, process, tracer=tracer, charge_costs=False
            )
            try:
                args, kwargs = spec.example_args(ctx)
                ctx.invoke(api, *args, **kwargs)
            except Exception as exc:  # trace what we can, report the failure
                error = f"{type(exc).__name__}: {exc}"
                break
        reduced = tuple(reduce_file_copies(tracer.flows.flows))
        return DynamicResult(
            qualname=spec.qualname,
            covered=True,
            flows=reduced,
            syscalls=tuple(tracer.distinct_syscalls()),
            category=categorize_flows(reduced),
            error=error,
        )

    def analyze_many(
        self, apis: Sequence[FrameworkAPI]
    ) -> Dict[str, DynamicResult]:
        return {api.spec.qualname: self.analyze(api) for api in apis}


@dataclass
class CoverageReport:
    """Table 11 row: dynamic-analysis coverage of one framework."""

    framework: str
    covered: int
    total: int
    code_coverage: float

    @property
    def api_coverage(self) -> float:
        if self.total == 0:
            return 0.0
        return self.covered / self.total

    def format_row(self) -> str:
        return (
            f"{self.framework:<12} {self.api_coverage * 100:5.1f}% "
            f"({self.covered}/{self.total})  code≈{self.code_coverage * 100:4.0f}%"
        )


def coverage_report(framework) -> CoverageReport:
    """Measure dynamic-analysis coverage of one framework.

    API coverage is exact (tested APIs / all APIs).  The code-coverage
    column approximates line coverage the way Coverage.py / llvm-cov
    would see it: covered APIs contribute their full body, uncovered APIs
    contribute only their (counted) entry stubs.
    """
    total = len(framework)
    covered = len(framework.covered())
    if total == 0:
        return CoverageReport(framework.name, 0, 0, 0.0)
    # Entry stubs are reachable even for untested APIs, so line coverage
    # sits a little above pure API coverage.
    stub_fraction = 0.25
    code_coverage = (covered + stub_fraction * (total - covered)) / total
    return CoverageReport(
        framework=framework.name,
        covered=covered,
        total=total,
        code_coverage=code_coverage,
    )
