"""API hooking façade (the LD_PRELOAD stand-in, Section 4.3).

The runtime dispatches through ``gateway.call("opencv", "imread", ...)``;
this module provides the interposition layer that makes hooked code look
like the original program (Fig. 10-a): a :class:`FrameworkNamespace` is a
drop-in module object whose attribute accesses resolve to hooked API
stubs, so application code reads

::

    cv2 = hook(gateway, "opencv")
    frame = cv2.imread("/in/img.png")
    cv2.imshow("w", cv2.GaussianBlur(frame))

exactly like the unpartitioned source, while every call is transparently
redirected to the right agent process.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.core.gateway import ApiGateway
from repro.errors import ReproError
from repro.frameworks.registry import get_framework


class HookedApi:
    """One hooked API stub: calling it issues the RPC."""

    __slots__ = ("_gateway", "_framework", "_name", "doc")

    def __init__(self, gateway: ApiGateway, framework: str, name: str) -> None:
        self._gateway = gateway
        self._framework = framework
        self._name = name
        #: The hooked API's documentation, from its spec.
        self.doc = get_framework(framework).get(name).spec.doc

    @property
    def qualname(self) -> str:
        return get_framework(self._framework).get(self._name).spec.qualname

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self._gateway.call(self._framework, self._name, *args, **kwargs)

    def __repr__(self) -> str:
        return f"<hooked {self.qualname}>"


class FrameworkNamespace:
    """A module-like object exposing a framework's hooked APIs."""

    def __init__(self, gateway: ApiGateway, framework: str) -> None:
        # Validate eagerly so typos fail at hook time, not call time.
        get_framework(framework)
        self._gateway = gateway
        self._framework = framework
        self._stubs: Dict[str, HookedApi] = {}

    def __getattr__(self, name: str) -> HookedApi:
        if name.startswith("_"):
            raise AttributeError(name)
        stub = self._stubs.get(name)
        if stub is None:
            framework = get_framework(self._framework)
            if name not in framework:
                raise AttributeError(
                    f"framework {self._framework!r} has no API named {name!r}"
                )
            stub = HookedApi(self._gateway, self._framework, name)
            self._stubs[name] = stub
        return stub

    def __dir__(self) -> List[str]:
        return sorted(get_framework(self._framework).api_names)

    def __repr__(self) -> str:
        return (
            f"<FrameworkNamespace {self._framework!r} via "
            f"{type(self._gateway).__name__}>"
        )


def hook(gateway: ApiGateway, framework: str) -> FrameworkNamespace:
    """Hook one framework's API surface through ``gateway``."""
    return FrameworkNamespace(gateway, framework)


def hook_all(gateway: ApiGateway, *frameworks: str) -> Dict[str, FrameworkNamespace]:
    """Hook several frameworks at once: name → namespace."""
    if not frameworks:
        raise ReproError("hook_all needs at least one framework name")
    return {name: hook(gateway, name) for name in frameworks}
