"""System-call restriction policy (Section 4.4.1, Table 7, Fig. 12).

Builds the seccomp-like :class:`~repro.sim.filters.FilterSpec` for each
agent partition:

* **allowlist** = the union of the required syscalls of the partition's
  APIs, widened to the framework-wide per-type pool (Table 7) — exactly
  the paper's "union of required system calls for all framework APIs
  within an agent process";
* **init-only** syscalls (``mprotect`` for library loading, ``connect``
  for the GUI/network handshake) permitted only during the first
  execution phase;
* **fd restrictions** for device-capable calls: each agent may only apply
  ``ioctl``/``connect``/``select``/``fcntl`` to the devices its type
  legitimately talks to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.apitypes import APIType
from repro.core.hybrid import CategorizedAPI, Categorization
from repro.core.partitioner import Partition, PartitionPlan
from repro.frameworks.syscall_pools import INIT_ONLY_SYSCALLS, pool_for
from repro.sim.devices import CAMERA_FD, GUI_SOCKET_FD, NETWORK_FD
from repro.sim.filters import FilterSpec

#: Designated device fds per API type (the fd-argument restriction).
DESIGNATED_FDS: Dict[APIType, FrozenSet[int]] = {
    APIType.LOADING: frozenset({CAMERA_FD, NETWORK_FD}),
    APIType.PROCESSING: frozenset(),
    APIType.VISUALIZING: frozenset({GUI_SOCKET_FD}),
    APIType.STORING: frozenset(),
}


def required_syscalls(entries: Iterable[CategorizedAPI]) -> FrozenSet[str]:
    """Union of the per-API steady-state syscall profiles (Fig. 12-b)."""
    union: Set[str] = set()
    for entry in entries:
        union.update(entry.syscalls)
    return frozenset(union)


def init_syscalls(entries: Iterable[CategorizedAPI]) -> FrozenSet[str]:
    """Union of init-only syscalls (always includes mprotect/connect)."""
    union: Set[str] = set(INIT_ONLY_SYSCALLS)
    for entry in entries:
        union.update(entry.init_syscalls)
    return frozenset(union)


def filter_spec_for_partition(
    partition: Partition,
    categorization: Categorization,
    widen_to_pool: bool = True,
    path_prefixes: Optional[Tuple[str, ...]] = None,
) -> FilterSpec:
    """The allowlist filter one agent process gets installed with.

    ``path_prefixes`` optionally designates the filesystem regions this
    agent's file syscalls may touch (the generalized designated-files
    check of Section 4.4.1).
    """
    entries = [
        categorization.get(qualname)
        for qualname in partition.qualnames
        if qualname in categorization
    ]
    allowed: Set[str] = set(required_syscalls(entries))
    if widen_to_pool:
        allowed.update(pool_for(partition.api_type))
    init_only = set(init_syscalls(entries)) - allowed
    fds = DESIGNATED_FDS.get(partition.api_type, frozenset())
    return FilterSpec(
        allowed=frozenset(allowed),
        init_only=frozenset(init_only),
        allowed_fds=fds if fds else None,
        allowed_path_prefixes=path_prefixes,
        description=f"agent filter for {partition.label}",
    )


def filter_specs_for_plan(
    plan: PartitionPlan,
    categorization: Categorization,
    widen_to_pool: bool = True,
) -> Dict[int, FilterSpec]:
    """Build one FilterSpec per partition of a plan."""
    return {
        partition.index: filter_spec_for_partition(
            partition, categorization, widen_to_pool=widen_to_pool
        )
        for partition in plan.partitions
    }


@dataclass(frozen=True)
class PolicyReport:
    """Summary of the syscall policy for reporting (Table 7)."""

    per_type_allowed: Dict[APIType, Tuple[str, ...]]
    per_type_counts: Dict[APIType, int]

    def format_rows(self) -> List[str]:
        rows = []
        labels = {
            APIType.LOADING: "Loading",
            APIType.PROCESSING: "Processing",
            APIType.VISUALIZING: "Visualizing",
            APIType.STORING: "Storing",
        }
        for api_type, label in labels.items():
            allowed = self.per_type_allowed[api_type]
            preview = ", ".join(allowed[:9])
            rows.append(f"{label} ({len(allowed)})  {preview}, ...")
        return rows


def policy_report() -> PolicyReport:
    """The Table 7 per-type allowlists (pool sizes 43/22/56/27)."""
    per_type_allowed = {
        api_type: tuple(sorted(pool_for(api_type)))
        for api_type in (
            APIType.LOADING, APIType.PROCESSING,
            APIType.VISUALIZING, APIType.STORING,
        )
    }
    per_type_counts = {t: len(v) for t, v in per_type_allowed.items()}
    return PolicyReport(per_type_allowed=per_type_allowed,
                        per_type_counts=per_type_counts)


#: Syscalls attack payloads characteristically need; used by tests to
#: assert the policy denies them where the paper says it does.
ATTACK_SYSCALLS = {
    "code_rewrite": ("mprotect",),
    "exfiltration": ("sendto", "sendmsg", "write"),
    "fork_bomb": ("fork", "clone", "execve"),
    "shared_memory_tamper": ("shm_open",),
}
