"""The FreePart runtime (Fig. 5): offline analysis → online enforcement.

:class:`FreePart` is the façade a user points at their application: it
runs the hybrid analysis over the framework APIs the program uses, builds
the partition plan and per-agent syscall filters, spawns the host and
agent processes, and returns a :class:`FreePartGateway` through which the
(unmodified) application code runs hooked.

Online, every framework API call becomes an RPC to the agent of its type,
the framework state machine advances and enforces temporal read-only
permissions, and lazy data copy keeps object payloads out of the host
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.agent import AgentProcess
from repro.core.apitypes import APIType, FrameworkState, api_type_of_state
from repro.core.gateway import OBS_FRAMEWORK, ApiGateway, CallRecord
from repro.core.hybrid import Categorization, HybridAnalyzer
from repro.core.partitioner import (
    PartitionPlan,
    four_way_plan,
    split_processing_plan,
    sub_partition_plan,
)
from repro.core.policy import filter_spec_for_partition, filter_specs_for_plan
from repro.core.rpc import ObjectRef, ObjectStore, RemoteHandle, RpcRequest
from repro.core.statemachine import TemporalStateMachine
from repro.errors import (
    AgentUnavailable,
    AnnotationError,
    ChannelFull,
    FrameworkCrash,
    ProcessCrashed,
    RpcError,
    SegmentationFault,
    StaleObjectRef,
    SyscallDenied,
)
from repro.frameworks.base import DataObject, FrameworkAPI
from repro.frameworks.registry import iter_apis
from repro.sim.filters import FilterSpec
from repro.sim.kernel import SimKernel
from repro.sim.memory import Buffer, MemoryLayout
from repro.sim.process import SimProcess

#: Backoff schedule for transient :class:`ChannelFull` on a send: first
#: retry after SEND_BACKOFF_BASE_NS, doubling up to the cap, at most
#: SEND_BACKOFF_RETRIES retries before the last error propagates.
SEND_BACKOFF_BASE_NS = 2_000
SEND_BACKOFF_CAP_NS = 64_000
SEND_BACKOFF_RETRIES = 4

#: How many times a gateway retransmits a request whose message (or
#: whose reply) was lost in flight before giving up with RpcError.
MAX_RPC_RETRANSMITS = 4


@dataclass(frozen=True)
class FreePartConfig:
    """Tunables of the runtime (each maps to a paper mechanism).

    ``ldc``
        Lazy data copy (Section 4.3.2).  Disabling it reproduces the 9.7%
        ablation of Section 5.2.
    ``restart_agents``
        Agent restart on crash (Section 4.4.2).  Users prioritizing
        security over availability can opt out.
    ``enforce_permissions``
        Temporal read-only enforcement (Section 4.4.3 / Fig. 3).
    ``restrict_syscalls``
        Per-agent seccomp allowlists (Section 4.4.1).
    ``partition_count``
        4 = the paper's default; >4 randomly splits the processing agent
        (the Fig. 4 sweep).
    ``strict_annotations``
        Require a :class:`MemoryLayout` annotation for every custom host
        data structure (the paper requires users to define the layout of
        protected custom data).
    ``subpartitions``
        Manual finer-grained agent splits (Appendix A.6); mutually
        exclusive with ``partition_count > 4``.
    """

    ldc: bool = True
    #: Zero-copy LDC: dereference large payloads by remapping shared
    #: pages (with COW downgrade on first write) instead of copying
    #: bytes.  Disable to reproduce the byte-copy LDC numbers.
    zero_copy: bool = True
    restart_agents: bool = True
    enforce_permissions: bool = True
    restrict_syscalls: bool = True
    widen_to_pool: bool = True
    partition_count: int = 4
    partition_seed: int = 0
    strict_annotations: bool = False
    annotations: Tuple[MemoryLayout, ...] = ()
    #: Manual sub-partitioning (Appendix A.6): api_type -> groups of
    #: qualnames, each group its own agent.  Sub-partitioned agents get
    #: *tight* (un-widened) filters — the finer-grained restriction the
    #: appendix discusses.
    subpartitions: Optional[Dict[APIType, Sequence[Sequence[str]]]] = None
    #: Designated filesystem regions per API type (generalizing the
    #: paper's designated-files argument check): file syscalls outside
    #: the agent's prefixes are seccomp-killed.  None disables the check.
    path_policies: Optional[Dict[APIType, Tuple[str, ...]]] = None
    #: Upper bound on restarts per agent (None = unbounded).  A crash
    #: loop — e.g. a malicious input replayed at a restarted agent —
    #: eventually leaves the agent down instead of thrashing.
    max_restarts_per_agent: Optional[int] = None
    #: How many times a dispatch retries the *same* request (same
    #: sequence number) after the agent crashed and was restarted.  The
    #: default 0 preserves crash-is-an-error semantics: one crash = one
    #: FrameworkCrash surfaced to the caller.  Serving setups raise this
    #: to mask faults behind at-least-once re-execution.
    rpc_retries: int = 0
    #: Span tracing (repro.obs).  The tracer only reads the virtual
    #: clock, so enabling it changes no reproduced number; disabled (the
    #: default) the no-op tracer costs hot paths a single flag check.
    trace: bool = False
    #: Per-partition seccomp filter overrides keyed by partition label
    #: (e.g. the tightened specs from ``repro check
    #: --emit-minimal-pools``).  A label present here replaces the
    #: policy-derived spec entirely; absent labels keep the default.
    filter_overrides: Optional[Dict[str, FilterSpec]] = None


@dataclass
class DispatchStats:
    """Per-gateway dispatch-cache counters.

    The cache keys on call site (framework, API name) and holds the
    resolved API plus its categorization entry; the whole cache is
    dropped whenever the framework state machine transitions, so a
    stale entry can never route around the freezing semantics.
    """

    hits: int = 0
    misses: int = 0
    #: Epoch changes (state-machine transitions) that flushed the cache.
    invalidations: int = 0
    #: Frame templates (re)built — once per agent, again after restart.
    frame_rebuilds: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class SecurityEvent:
    """One mitigated (or observed) security-relevant runtime event."""

    kind: str
    qualname: str
    agent: str
    detail: str
    at_ns: int


def build_filter_specs(
    plan: PartitionPlan,
    categorization: Categorization,
    config: FreePartConfig,
) -> Dict[int, Any]:
    """Per-partition seccomp filter specs (shared by gateways and pools)."""
    path_policies = config.path_policies or {}
    overrides = config.filter_overrides or {}
    return {
        partition.index: (
            overrides[partition.label]
            if partition.label in overrides
            else filter_spec_for_partition(
                partition,
                categorization,
                # Manually sub-partitioned agents (labelled "type#n") get
                # tight per-group filters (Appendix A.6); full-type agents
                # get the Table 7 pool.
                widen_to_pool=(
                    config.widen_to_pool and "#" not in partition.label
                ),
                path_prefixes=path_policies.get(partition.api_type),
            )
        )
        for partition in plan.partitions
    }


def build_agents(
    kernel: SimKernel,
    plan: PartitionPlan,
    categorization: Categorization,
    config: FreePartConfig,
    name_suffix: str = "",
) -> Dict[int, AgentProcess]:
    """Spawn one agent process per partition.

    The one-shot gateway calls this once; the serving layer calls it
    ``pool_size`` times per partition to stock its shared agent pools.
    """
    filter_specs = build_filter_specs(plan, categorization, config)
    agents = {
        partition.index: AgentProcess(
            kernel,
            partition,
            filter_spec=filter_specs.get(partition.index),
            restrict_syscalls=config.restrict_syscalls,
            max_restarts=config.max_restarts_per_agent,
            zero_copy=config.zero_copy,
        )
        for partition in plan.partitions
    }
    if name_suffix:
        for agent in agents.values():
            agent.process.name = f"{agent.process.name}:{name_suffix}"
    return agents


class FreePartGateway(ApiGateway):
    """The online runtime: hooked API dispatch with enforcement."""

    def __init__(
        self,
        kernel: SimKernel,
        host: SimProcess,
        plan: PartitionPlan,
        categorization: Categorization,
        config: FreePartConfig,
        agents: Optional[Dict[int, AgentProcess]] = None,
    ) -> None:
        super().__init__(kernel, host)
        self.plan = plan
        self.categorization = categorization
        self.config = config
        self.events: List[SecurityEvent] = []
        #: Requests retransmitted because the message or its reply was
        #: lost in flight (at-least-once recovery, deduped at the agent).
        self.retransmits = 0
        #: Sends retried after a transient ChannelFull.
        self.send_backoff_retries = 0
        #: Partition label of the most recent agent crash (breaker
        #: attribution in the serving layer).
        self.last_crash_partition: Optional[str] = None
        self.host_store = ObjectStore(host)
        self._host_refs: Dict[int, ObjectRef] = {}
        self.dispatch_stats = DispatchStats()
        #: Call-site dispatch cache: (framework, name) -> (api, entry).
        #: Flushed whenever the state machine's transition count moves.
        self._dispatch_cache: Dict[Tuple[str, str], Tuple[Any, Any]] = {}
        self._dispatch_epoch = 0
        #: Prebuilt RPC frame templates: partition index -> the process
        #: generation the template was built against.  A send is "framed"
        #: (cheaper fixed cost) only while the template matches the live
        #: process; restarts bump the generation and force a rebuild.
        self._frame_templates: Dict[int, int] = {}
        self._annotations = {a.tag: a for a in config.annotations}
        #: Agents may be injected (leased from a serving pool) instead of
        #: spawned per gateway; the gateway then shares, not owns, them.
        self.owns_agents = agents is None
        self.agents: Dict[int, AgentProcess] = (
            build_agents(kernel, plan, categorization, config)
            if agents is None
            else agents
        )
        self.machine = TemporalStateMachine(
            processes=self._all_processes,
            enforce=config.enforce_permissions,
            annotated_tags=[a.tag for a in config.annotations],
            tracer=kernel.tracer,
        )

    # ------------------------------------------------------------------
    # Process roster
    # ------------------------------------------------------------------

    def _all_processes(self) -> List[SimProcess]:
        processes = [self.host]
        processes.extend(agent.process for agent in self.agents.values())
        return processes

    @property
    def process_count(self) -> int:
        """Host program process + one agent per partition."""
        return 1 + len(self.agents)

    # ------------------------------------------------------------------
    # State-aware host allocation
    # ------------------------------------------------------------------

    @property
    def state_label(self) -> str:
        return self.machine.state_label

    def host_alloc(self, tag: str, payload: Any) -> Buffer:
        """Define a host variable; custom data may require an annotation."""
        if self.config.strict_annotations and not isinstance(payload, DataObject):
            if tag not in self._annotations:
                raise AnnotationError(
                    f"custom data structure {tag!r} needs a MemoryLayout "
                    "annotation for permission enforcement"
                )
        return super().host_alloc(tag, payload)

    # ------------------------------------------------------------------
    # Hooked API dispatch
    # ------------------------------------------------------------------

    def _route(self, framework: str, name: str):
        """Resolve an API, advance the state machine, pick its partition.

        Steady-state calls hit the per-call-site dispatch cache and skip
        re-resolution and re-categorization.  The cache is epoch-guarded
        by the state machine's transition count: any transition flushes
        it, so routing after a phase change always re-derives from live
        state — and non-neutral APIs drive ``observe_call`` on *every*
        dispatch, cached or not, so temporal freezing (and the
        frozen-write SIGSEGV it arms) can never be bypassed by a hit.
        """
        epoch = self.machine.transition_count()
        if epoch != self._dispatch_epoch:
            if self._dispatch_cache:
                self._dispatch_cache.clear()
                self.dispatch_stats.invalidations += 1
            self._dispatch_epoch = epoch
        key = (framework, name)
        cached = self._dispatch_cache.get(key)
        if cached is not None:
            self.dispatch_stats.hits += 1
            api, entry = cached
        else:
            self.dispatch_stats.misses += 1
            api = self._resolve_api(framework, name)
            entry = self.categorization.get(api.spec.qualname)
            self._dispatch_cache[key] = (api, entry)
        spec = api.spec

        if entry.neutral:
            # Type-neutral APIs run in the agent of the current state.
            effective_type = (
                api_type_of_state(self.machine.state) or APIType.PROCESSING
            )
            partition = self.plan.partition_for_type(effective_type)
        else:
            effective_type = entry.api_type
            self.machine.observe_call(entry.api_type)
            partition = self.plan.partition_of(spec.qualname)
            if partition is None:
                partition = self.plan.partition_for_type(entry.api_type)

        self.stats.record(CallRecord(
            framework=spec.framework, name=spec.name,
            qualname=spec.qualname, api_type=effective_type,
        ))
        return api, partition

    def _frame_ready(self, agent: AgentProcess) -> bool:
        """Whether a prebuilt frame template covers this agent right now.

        The first send to an agent pays full framing cost while the
        template is built; subsequent sends are "framed" (discounted
        fixed cost).  A restarted agent has a new process generation, so
        its template is rebuilt — the stale template can never frame a
        message for a process it was not built against.
        """
        index = agent.partition.index
        generation = agent.process.generation
        if self._frame_templates.get(index) == generation:
            return True
        self._frame_templates[index] = generation
        self.dispatch_stats.frame_rebuilds += 1
        return False

    def _ensure_agent(self, partition) -> AgentProcess:
        """The partition's agent, restarted first if it crashed."""
        agent = self.agents[partition.index]
        if not agent.alive:
            if not self.config.restart_agents:
                raise AgentUnavailable(
                    f"agent {partition.label!r} crashed and restart is disabled"
                )
            agent.restart()  # raises AgentUnavailable past the restart cap
        return agent

    def call(self, framework: str, name: str, *args: Any, **kwargs: Any) -> Any:
        """Hooked dispatch: route the API to its agent with enforcement."""
        if framework == OBS_FRAMEWORK:
            return self._obs_annotation(name, args, kwargs)
        tracer = self.kernel.tracer
        if not tracer.enabled:
            return self._dispatch_api(framework, name, args, kwargs)
        with tracer.span("rpc", category="rpc", pid=self.host.pid,
                         api=f"{framework}.{name}"):
            return self._dispatch_api(framework, name, args, kwargs)

    def _dispatch_api(
        self, framework: str, name: str, args: tuple, kwargs: dict
    ) -> Any:
        api, partition = self._route(framework, name)
        spec = api.spec
        agent = self._ensure_agent(partition)
        tracer = self.kernel.tracer
        if tracer.enabled and tracer.current is not None:
            tracer.current.annotate(
                qualname=spec.qualname,
                api_type=spec.ground_truth.value,
                agent=partition.label,
                agent_pid=agent.process.pid,
            )

        request = self._build_request(agent, spec.qualname, args, kwargs)

        def execute() -> Any:
            if not self.config.ldc:
                self._eager_copy_args(agent, args)
            return agent.execute(
                api, request, self._resolve_ref, ldc=self.config.ldc
            )

        crash_retries = 0
        while True:
            try:
                response = self._rpc_roundtrip(
                    agent, request, execute,
                    framed=self._frame_ready(agent),
                )
            except (ProcessCrashed, SyscallDenied, SegmentationFault) as exc:
                self._handle_agent_crash(agent, spec.qualname, exc)
                if crash_retries < self.config.rpc_retries and agent.alive:
                    # Retry the SAME request (same sequence number): the
                    # restarted agent re-executes from its checkpoint —
                    # the at-least-once downgrade of Section 4.4.2.
                    crash_retries += 1
                    continue
                raise FrameworkCrash(spec.qualname, exc) from exc
            break
        self._maybe_end_init(agent)
        return self._finish_value(agent, spec, response.value)

    # ------------------------------------------------------------------
    # Hardened request/response exchange
    # ------------------------------------------------------------------

    def _send_with_backoff(
        self, channel, sender_pid: int, kind: str, payload: Any,
        framed: bool = False,
    ):
        """Send, retrying transient fullness with exponential backoff.

        Permanent :class:`ChannelFull` (a message bigger than the ring
        buffer itself) propagates immediately — no amount of waiting can
        deliver it.  Transient fullness is retried up to
        SEND_BACKOFF_RETRIES times; the final error propagates.
        """
        backoff_ns = SEND_BACKOFF_BASE_NS
        attempt = 0
        while True:
            try:
                return channel.send(sender_pid, kind, payload, framed=framed)
            except ChannelFull as exc:
                if exc.permanent or attempt >= SEND_BACKOFF_RETRIES:
                    raise
                tracer = self.kernel.tracer
                if tracer.enabled:
                    with tracer.span(
                        "send_backoff", category="ipc", pid=sender_pid,
                        channel=channel.name, attempt=attempt + 1,
                        backoff_ns=backoff_ns,
                    ):
                        self.kernel.clock.advance(backoff_ns)
                else:
                    self.kernel.clock.advance(backoff_ns)
                self.send_backoff_retries += 1
                backoff_ns = min(backoff_ns * 2, SEND_BACKOFF_CAP_NS)
                attempt += 1

    def _rpc_roundtrip(
        self,
        agent: AgentProcess,
        payload: Any,
        execute,
        request_kind: str = "request",
        response_kind: str = "response",
        framed: bool = False,
    ) -> Any:
        """One at-least-once request/response exchange over the agent's
        ring buffers.

        A dropped request or reply is detected (the queue stays empty
        after the send) and the request is retransmitted with the same
        payload — the agent's reply cache turns re-deliveries into
        duplicates instead of double-executions.  Duplicated messages
        are drained and executed individually, exercising the dedup
        path.  Gives up with :class:`RpcError` after
        MAX_RPC_RETRANSMITS retransmissions.
        """
        channel = agent.channel
        attempts = 0
        while True:
            # Discard in-flight leftovers from an aborted earlier attempt
            # (a restarted agent's ring buffers start empty).  No-op on
            # the fault-free path.
            while channel.request.pending:
                channel.request.receive()
            while channel.response.pending:
                channel.response.receive()
            self._send_with_backoff(
                channel.request, self.host.pid, request_kind, payload,
                framed=framed,
            )
            if not channel.request.pending:
                # Request lost in flight: retransmit.
                attempts += 1
                self.retransmits += 1
                if attempts > MAX_RPC_RETRANSMITS:
                    raise RpcError(
                        f"request to agent {agent.partition.label!r} lost "
                        f"{attempts} times; giving up"
                    )
                continue
            response = None
            while channel.request.pending:
                channel.request.receive()
                # Each delivery (duplicates included) reaches the agent;
                # the reply cache makes re-execution a cache hit.
                response = execute()
            self._send_with_backoff(
                channel.response, agent.process.pid, response_kind, response,
                framed=framed,
            )
            if not channel.response.pending:
                # Reply lost in flight: retransmit the request; the
                # agent answers from its reply cache without re-applying
                # stateful effects.
                attempts += 1
                self.retransmits += 1
                if attempts > MAX_RPC_RETRANSMITS:
                    raise RpcError(
                        f"reply from agent {agent.partition.label!r} lost "
                        f"{attempts} times; giving up"
                    )
                continue
            delivered = None
            while channel.response.pending:
                delivered = channel.response.receive()
            return delivered.payload

    def _finish_value(self, agent: AgentProcess, spec, value: Any) -> Any:
        """Post-process one response value back into the host's view."""
        if isinstance(value, ObjectRef):
            return RemoteHandle(value)
        if not self.config.ldc and isinstance(value, DataObject):
            # Eager mode: the result is copied back into the host program.
            self.kernel.transfer(
                agent.process, self.host, value,
                tag=f"eager:{spec.name}",
                origin_state=self.machine.state_label,
                lazy=False, count_message=False,
            )
        return value

    def _build_request(
        self,
        agent: AgentProcess,
        qualname: str,
        args: tuple,
        kwargs: dict,
    ) -> RpcRequest:
        wrap = self._wrap_outbound if self.config.ldc else (lambda v: v)
        return RpcRequest(
            seq=agent.sequence.next_seq(),
            api_qualname=qualname,
            args=tuple(wrap(value) for value in args),
            kwargs=tuple((key, wrap(value)) for key, value in kwargs.items()),
            state_label=self.machine.state_label,
        )

    def _wrap_outbound(self, value: Any) -> Any:
        """Replace data objects with references (the LDC request path)."""
        if isinstance(value, (list, tuple)):
            wrapped = [self._wrap_outbound(item) for item in value]
            return type(value)(wrapped) if isinstance(value, tuple) else wrapped
        if isinstance(value, RemoteHandle):
            return value.ref
        if isinstance(value, DataObject):
            key = id(value)
            ref = self._host_refs.get(key)
            if ref is None:
                ref = self.host_store.register(
                    value, state_label=self.machine.state_label, tag="host-object"
                )
                self._host_refs[key] = ref
            return ref
        return value

    def _eager_copy_args(self, agent: AgentProcess, args: tuple) -> None:
        """Non-LDC mode: physically copy object arguments into the agent."""
        for value in args:
            if isinstance(value, DataObject):
                self.kernel.transfer(
                    self.host, agent.process, value,
                    tag="eager-arg",
                    origin_state=self.machine.state_label,
                    lazy=False, count_message=False,
                )

    def _resolve_ref(self, ref: ObjectRef) -> Any:
        """Find a reference's payload in whichever process owns it."""
        if ref.owner_pid == self.host.pid:
            return self.host_store.fetch(ref)
        for agent in self.agents.values():
            if (
                agent.process.pid == ref.owner_pid
                and agent.process.generation == ref.owner_generation
            ):
                return agent.fetch_local(ref)
        raise StaleObjectRef(
            f"no live process owns ref (pid={ref.owner_pid}, "
            f"gen={ref.owner_generation}); its agent probably crashed"
        )

    def _handle_agent_crash(
        self, agent: AgentProcess, qualname: str, exc: Exception
    ) -> None:
        agent.process.crash(str(exc))
        agent.stats.crashes += 1
        self.last_crash_partition = agent.partition.label
        self.events.append(SecurityEvent(
            kind=type(exc).__name__,
            qualname=qualname,
            agent=agent.partition.label,
            detail=str(exc),
            at_ns=self.kernel.clock.now_ns,
        ))
        if self.config.restart_agents:
            try:
                agent.restart()
            except AgentUnavailable:
                # Restart budget exhausted: the agent stays down; the
                # caller still sees this crash as a FrameworkCrash, and
                # subsequent dispatches surface AgentUnavailable.
                pass

    def _maybe_end_init(self, agent: AgentProcess) -> None:
        if (
            self.config.restrict_syscalls
            and agent.stats.requests >= 1
            and agent.process.filter.in_init_phase
        ):
            agent.end_init_phase()

    # ------------------------------------------------------------------
    # Host dereference (rare; counted as a non-lazy copy)
    # ------------------------------------------------------------------

    def materialize(self, value: Any) -> Any:
        """Copy a remote result's data into the host (counted non-lazy)."""
        if isinstance(value, RemoteHandle):
            ref = value.ref
            payload = self._resolve_ref(ref)
            if ref.owner_pid != self.host.pid:
                owner = self.kernel.process(ref.owner_pid)
                self.kernel.transfer(
                    owner, self.host, payload,
                    tag=f"materialize:{ref.kind}",
                    origin_state=self.machine.state_label,
                    lazy=False,
                )
            if isinstance(payload, DataObject):
                return payload.data
            return payload
        if isinstance(value, DataObject):
            return value.data
        return value

    # ------------------------------------------------------------------
    # Multi-threading (Section 6)
    # ------------------------------------------------------------------

    def for_thread(self, name: str = "worker") -> "FreePartGateway":
        """A gateway for another host thread.

        The paper: "for multi-threading processes, each thread will have
        its own set of four agent processes, hence avoiding race
        conditions."  The returned gateway shares this one's host
        process, plan, and categorization but owns fresh agents and an
        independent framework state machine.
        """
        sibling = FreePartGateway(
            kernel=self.kernel,
            host=self.host,
            plan=self.plan,
            categorization=self.categorization,
            config=self.config,
        )
        for agent in sibling.agents.values():
            agent.process.name = f"{agent.process.name}:{name}"
        return sibling

    # ------------------------------------------------------------------
    # Teardown / reporting
    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Close channels and exit all agent processes.

        Gateways running over *leased* pool agents leave them alone — the
        pool owns their lifecycle and will reuse them for other tenants.
        """
        if not self.owns_agents:
            return
        for agent in self.agents.values():
            agent.channel.close()
            if agent.process.alive:
                agent.process.exit()

    def agent_stats(self) -> Dict[str, Any]:
        """Per-agent statistics keyed by partition label."""
        return {
            agent.partition.label: agent.stats
            for agent in self.agents.values()
        }

    def total_restarts(self) -> int:
        """Agent restarts performed so far."""
        return sum(agent.stats.restarts for agent in self.agents.values())

    def total_crashes(self) -> int:
        """Agent crashes observed so far."""
        return sum(agent.stats.crashes for agent in self.agents.values())


@dataclass
class RunReport:
    """Everything a single application run produced (virtual metrics)."""

    app_name: str
    gateway: str
    virtual_seconds: float
    ipc_messages: int
    ipc_bytes: int
    lazy_copies: int
    lazy_copy_bytes: int
    nonlazy_copies: int
    nonlazy_copy_bytes: int
    api_calls: int
    transitions: int
    protected_buffers: int
    crashes: int
    restarts: int
    processes: int
    zero_copy_transfers: int = 0
    zero_copy_bytes: int = 0
    cow_downgrades: int = 0
    cow_bytes: int = 0
    framed_messages: int = 0
    failed: bool = False
    error: str = ""
    result: Any = None

    @property
    def data_transferred_bytes(self) -> int:
        return self.ipc_bytes + self.lazy_copy_bytes + self.zero_copy_bytes

    @property
    def lazy_fraction(self) -> float:
        lazy = self.lazy_copies + self.zero_copy_transfers
        total = lazy + self.nonlazy_copies
        return lazy / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the ``result`` payload is dropped)."""
        return {
            "app_name": self.app_name,
            "gateway": self.gateway,
            "virtual_seconds": self.virtual_seconds,
            "ipc_messages": self.ipc_messages,
            "ipc_bytes": self.ipc_bytes,
            "lazy_copies": self.lazy_copies,
            "lazy_copy_bytes": self.lazy_copy_bytes,
            "nonlazy_copies": self.nonlazy_copies,
            "nonlazy_copy_bytes": self.nonlazy_copy_bytes,
            "zero_copy_transfers": self.zero_copy_transfers,
            "zero_copy_bytes": self.zero_copy_bytes,
            "cow_downgrades": self.cow_downgrades,
            "cow_bytes": self.cow_bytes,
            "framed_messages": self.framed_messages,
            "data_transferred_bytes": self.data_transferred_bytes,
            "lazy_fraction": self.lazy_fraction,
            "api_calls": self.api_calls,
            "transitions": self.transitions,
            "protected_buffers": self.protected_buffers,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "processes": self.processes,
            "failed": self.failed,
            "error": self.error,
        }


class FreePart:
    """Offline + online driver (the top of Fig. 5)."""

    def __init__(
        self,
        kernel: Optional[SimKernel] = None,
        config: Optional[FreePartConfig] = None,
    ) -> None:
        self.kernel = kernel if kernel is not None else SimKernel()
        self.config = config if config is not None else FreePartConfig()
        if self.config.trace:
            self.kernel.enable_tracing()
        self._analyzer = HybridAnalyzer()
        self._categorization: Optional[Categorization] = None

    def analyze(
        self, apis: Optional[Sequence[FrameworkAPI]] = None
    ) -> Categorization:
        """Offline phase: hybrid categorization of the used APIs."""
        if apis is None:
            apis = iter_apis()
        self._categorization = self._analyzer.categorize(apis)
        return self._categorization

    def build_plan(self, categorization: Categorization) -> PartitionPlan:
        """Build the partition plan the config asks for."""
        if self.config.subpartitions:
            return sub_partition_plan(categorization, self.config.subpartitions)
        if self.config.partition_count <= 4:
            return four_way_plan(categorization)
        import random

        return split_processing_plan(
            categorization,
            self.config.partition_count,
            rng=random.Random(self.config.partition_seed),
        )

    def deploy(
        self,
        used_apis: Optional[Sequence[FrameworkAPI]] = None,
        host: Optional[SimProcess] = None,
        plan: Optional[PartitionPlan] = None,
    ) -> FreePartGateway:
        """Online phase: spawn host + agents and return the hooked gateway."""
        categorization = self._categorization
        if categorization is None or used_apis is not None:
            categorization = self.analyze(used_apis)
        if plan is None:
            plan = self.build_plan(categorization)
        if host is None:
            host = self.kernel.spawn("host-program", role="host", charge=False)
        return FreePartGateway(
            kernel=self.kernel,
            host=host,
            plan=plan,
            categorization=categorization,
            config=self.config,
        )
