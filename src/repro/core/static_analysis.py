"""Static analysis of framework API source (Section 4.2.2).

The real system walks LLVM IR / PyCG call graphs looking for data-loading
and storing syscalls, memory assignments, and GUI accesses.  Here the
"source" of an API is a synthesized IR derived from its spec: explicit
statements for statically visible flows, and :class:`IndirectCallStmt`
placeholders for flows hidden behind dynamic dispatch (``static_opaque``
APIs — the pandas/json/matplotlib cases of Table 2, hub downloads, etc.).

The analyzer collects the flows it can prove and reports whether the walk
was *complete*; incomplete results are handed to the dynamic analysis by
the hybrid driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.apitypes import APIType
from repro.core.dataflow import Flow, Storage, categorize_flows
from repro.frameworks.base import APISpec


# ----------------------------------------------------------------------
# Synthesized IR
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SyscallStmt:
    """A direct system-call site (``read(fd, buf)`` / ``write(...)``)."""

    syscall: str
    storage: Optional[Storage] = None
    direction: str = "read"  # "read" | "write"
    label: str = ""


@dataclass(frozen=True)
class AssignStmt:
    """A memory assignment ``x = y`` (the W(MEM, R(MEM)) evidence)."""

    dst: str = "x"
    src: str = "y"


@dataclass(frozen=True)
class GuiAccessStmt:
    """A statement touching a GUI object (``g_windows`` etc.)."""

    mode: str = "write"  # "read" | "write"
    label: str = ""


@dataclass(frozen=True)
class IndirectCallStmt:
    """A call through a pointer / dynamic dispatch: opaque to the walk."""

    hint: str = ""


Statement = Union[SyscallStmt, AssignStmt, GuiAccessStmt, IndirectCallStmt]

_LOAD_SYSCALLS = frozenset({"read", "pread64", "readv", "recvfrom", "recvmsg"})
_STORE_SYSCALLS = frozenset({"write", "pwrite64", "writev", "sendto", "sendmsg"})


def synthesize_ir(spec: APISpec) -> List[Statement]:
    """Build the statement list that stands in for an API's source code.

    Statically visible flows expand to the obvious statements; for an
    opaque API every flow collapses into one :class:`IndirectCallStmt`
    (the parser table / callback the real analysis cannot resolve).
    """
    statements: List[Statement] = []
    if spec.static_opaque:
        statements.append(IndirectCallStmt(hint=spec.qualname))
        statements.append(AssignStmt())
        return statements
    for flow in spec.flows:
        statements.extend(_statements_for_flow(flow))
    if not statements:
        statements.append(AssignStmt())
    return statements


def _statements_for_flow(flow: Flow) -> List[Statement]:
    source, dest = flow.source, flow.dest
    if dest is None:
        if source is Storage.GUI:
            return [GuiAccessStmt(mode="read", label=flow.label)]
        return [SyscallStmt("read", storage=source, direction="read",
                            label=flow.label)]
    if dest is Storage.GUI:
        return [GuiAccessStmt(mode="write", label=flow.label)]
    if source is Storage.GUI:
        return [GuiAccessStmt(mode="read", label=flow.label), AssignStmt()]
    if dest is Storage.MEM and source in (Storage.FILE, Storage.DEV):
        return [
            SyscallStmt("openat", storage=source, direction="read",
                        label=flow.label),
            SyscallStmt("read", storage=source, direction="read",
                        label=flow.label),
            AssignStmt(),
        ]
    if dest in (Storage.FILE, Storage.DEV) and source is Storage.MEM:
        return [
            SyscallStmt("openat", storage=dest, direction="write",
                        label=flow.label),
            SyscallStmt("write", storage=dest, direction="write",
                        label=flow.label),
        ]
    return [AssignStmt()]


# ----------------------------------------------------------------------
# Analyzer
# ----------------------------------------------------------------------


@dataclass
class StaticResult:
    """Outcome of the static walk over one API."""

    qualname: str
    flows: Tuple[Flow, ...]
    complete: bool
    category: Optional[APIType]

    @property
    def needs_dynamic(self) -> bool:
        """True when dynamic analysis must confirm or find the category."""
        return not self.complete or self.category is None


class StaticAnalyzer:
    """Walks synthesized IR and recovers the Fig. 8 flow set."""

    def analyze(self, spec: APISpec) -> StaticResult:
        flows: List[Flow] = []
        complete = True
        for statement in synthesize_ir(spec):
            if isinstance(statement, IndirectCallStmt):
                complete = False
            elif isinstance(statement, SyscallStmt):
                flow = self._flow_for_syscall(statement)
                if flow is not None:
                    flows.append(flow)
            elif isinstance(statement, GuiAccessStmt):
                if statement.mode == "read":
                    flows.append(Flow(source=Storage.GUI, dest=None,
                                      label=statement.label))
                else:
                    flows.append(Flow(source=Storage.MEM, dest=Storage.GUI,
                                      label=statement.label))
            elif isinstance(statement, AssignStmt):
                flows.append(Flow(source=Storage.MEM, dest=Storage.MEM))
        category = categorize_flows(flows) if complete else None
        if not complete and flows:
            # Partial evidence is still useful, but not conclusive.
            category = None
        return StaticResult(
            qualname=spec.qualname,
            flows=tuple(flows),
            complete=complete,
            category=category,
        )

    @staticmethod
    def _flow_for_syscall(statement: SyscallStmt) -> Optional[Flow]:
        if statement.storage is None:
            return None
        if statement.direction == "read" and statement.syscall in (
            _LOAD_SYSCALLS | {"openat"}
        ):
            if statement.syscall == "openat":
                return None  # open alone moves no data
            return Flow(source=statement.storage, dest=Storage.MEM,
                        label=statement.label)
        if statement.direction == "write" and statement.syscall in _STORE_SYSCALLS:
            return Flow(source=Storage.MEM, dest=statement.storage,
                        label=statement.label)
        return None


def analyze_specs(specs: Sequence[APISpec]) -> List[StaticResult]:
    """Run the static analyzer over a batch of API specs."""
    analyzer = StaticAnalyzer()
    return [analyzer.analyze(spec) for spec in specs]
