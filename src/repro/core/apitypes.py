"""API types and framework states (Sections 3.2 and 4.4.3).

FreePart categorizes framework APIs into four types following the typical
workflow of a data-processing application, plus a *type-neutral* category
for memory-to-memory utility APIs whose effective type depends on the
calling context (Section 4.2, "Type-neutral Framework APIs").

At runtime the framework is always in one of five states; the state is
simply the type of the last framework API invoked (Initialization before
any call).  State transitions drive the temporal memory-permission
enforcement of Fig. 3.
"""

from __future__ import annotations

import enum
from typing import Optional


class APIType(enum.Enum):
    """The four framework API categories (+ neutral)."""

    LOADING = "data_loading"
    PROCESSING = "data_processing"
    VISUALIZING = "visualizing"
    STORING = "storing"
    NEUTRAL = "neutral"

    @property
    def is_concrete(self) -> bool:
        """True for the four real types; False for NEUTRAL."""
        return self is not APIType.NEUTRAL


#: The four concrete types in pipeline order.
CONCRETE_TYPES = (
    APIType.LOADING,
    APIType.PROCESSING,
    APIType.VISUALIZING,
    APIType.STORING,
)


class FrameworkState(enum.Enum):
    """The five framework states of Section 4.4.3."""

    INITIALIZATION = "initialization"
    LOADING = "data_loading"
    PROCESSING = "data_processing"
    VISUALIZING = "visualizing"
    STORING = "storing"

    @classmethod
    def for_api_type(cls, api_type: APIType) -> "FrameworkState":
        """The state entered when an API of ``api_type`` is invoked."""
        mapping = {
            APIType.LOADING: cls.LOADING,
            APIType.PROCESSING: cls.PROCESSING,
            APIType.VISUALIZING: cls.VISUALIZING,
            APIType.STORING: cls.STORING,
        }
        try:
            return mapping[api_type]
        except KeyError:
            raise ValueError(
                f"{api_type} does not map to a framework state; neutral APIs "
                "run in the current state"
            ) from None


def state_label(state: FrameworkState) -> str:
    """The origin-state label recorded on buffers created in ``state``."""
    return state.value


def api_type_of_state(state: FrameworkState) -> Optional[APIType]:
    """Inverse of :meth:`FrameworkState.for_api_type` (None for init)."""
    mapping = {
        FrameworkState.LOADING: APIType.LOADING,
        FrameworkState.PROCESSING: APIType.PROCESSING,
        FrameworkState.VISUALIZING: APIType.VISUALIZING,
        FrameworkState.STORING: APIType.STORING,
    }
    return mapping.get(state)
