"""Simulated GUI subsystem — the ``GUI`` storage class of Fig. 8.

Models the pieces the paper cares about:

* **named windows** holding displayed images (``g_windows`` /
  ``cvNamedWindow`` in the paper's formalism) — these are the GUI-relevant
  objects whose access marks an API as *visualizing*;
* a **key-event queue** so interactive loops (``pollKey() == 's'``) can be
  driven deterministically by workloads;
* a **connection handshake**: the first visualizing API call needs a
  ``connect`` syscall to reach the GUI subsystem, which is exactly the
  init-phase-only syscall case of Section 4.4.1;
* a **recent-files list** (``Gtk::RecentManager``) for the MComix3
  information-leak case study (Section 5.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import GuiError


@dataclass
class Window:
    """A named window with the last image shown in it."""

    name: str
    image: Any = None
    x: int = 0
    y: int = 0
    title: str = ""
    shown_count: int = 0


class GuiSubsystem:
    """Machine-wide GUI state."""

    def __init__(self) -> None:
        self._windows: Dict[str, Window] = {}
        self._key_queue: List[str] = []
        self._connected_pids: set = set()
        self.recent_files: List[str] = []
        self.draw_operations = 0

    # ------------------------------------------------------------------
    # Connection (init-phase connect syscall)
    # ------------------------------------------------------------------

    def connect(self, pid: int) -> None:
        self._connected_pids.add(pid)

    def is_connected(self, pid: int) -> bool:
        return pid in self._connected_pids

    def require_connection(self, pid: int) -> None:
        if pid not in self._connected_pids:
            raise GuiError(f"process {pid} has no GUI connection")

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------

    def named_window(self, name: str) -> Window:
        window = self._windows.get(name)
        if window is None:
            window = Window(name=name)
            self._windows[name] = window
        return window

    def show(self, name: str, image: Any) -> Window:
        window = self.named_window(name)
        window.image = image
        window.shown_count += 1
        self.draw_operations += 1
        return window

    def move_window(self, name: str, x: int, y: int) -> None:
        window = self._windows.get(name)
        if window is None:
            raise GuiError(f"no window named {name!r}")
        window.x, window.y = x, y

    def set_title(self, name: str, title: str) -> None:
        self.named_window(name).title = title

    def window(self, name: str) -> Optional[Window]:
        return self._windows.get(name)

    @property
    def windows(self) -> Dict[str, Window]:
        return dict(self._windows)

    def destroy_all(self) -> int:
        count = len(self._windows)
        self._windows.clear()
        return count

    # ------------------------------------------------------------------
    # Keyboard events
    # ------------------------------------------------------------------

    def queue_keys(self, keys: str) -> None:
        """Schedule key presses consumed by ``poll_key`` in order."""
        self._key_queue.extend(keys)

    def poll_key(self) -> str:
        """Return the next queued key, or '' when the queue is empty."""
        if not self._key_queue:
            return ""
        return self._key_queue.pop(0)

    # ------------------------------------------------------------------
    # Recent files (MComix3 case study)
    # ------------------------------------------------------------------

    def add_recent_file(self, path: str) -> None:
        if path in self.recent_files:
            self.recent_files.remove(path)
        self.recent_files.insert(0, path)
