"""Simulated processes.

A :class:`SimProcess` owns an address space and a syscall filter and has a
lifecycle (running → crashed/exited).  Framework APIs "run in" a process
by issuing their syscalls through it — the filter check happens on every
entry, and a seccomp denial kills the process exactly like
``SECCOMP_RET_KILL_PROCESS`` would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.errors import ProcessCrashed, SyscallDenied
from repro.obs.tracer import NULL_TRACER
from repro.sim.clock import VirtualClock
from repro.sim.filters import SyscallFilter, permissive_filter
from repro.sim.memory import AddressSpace
from repro.sim.syscalls import SyscallInvocation


class ProcessState(enum.Enum):
    """Lifecycle states of a simulated process."""
    RUNNING = "running"
    CRASHED = "crashed"
    EXITED = "exited"


@dataclass
class CrashRecord:
    """Why and when a process died."""

    pid: int
    reason: str
    at_ns: int
    syscall: Optional[str] = None


class SimProcess:
    """One simulated OS process."""

    def __init__(
        self,
        pid: int,
        name: str,
        clock: VirtualClock,
        syscall_filter: Optional[SyscallFilter] = None,
        role: str = "host",
        tracer: Optional[Any] = None,
    ) -> None:
        self.pid = pid
        self.name = name
        self.role = role
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.memory = AddressSpace(pid, clock, tracer=self.tracer)
        self.filter = syscall_filter if syscall_filter is not None else permissive_filter()
        self.state = ProcessState.RUNNING
        self.crash_record: Optional[CrashRecord] = None
        self.syscall_log: List[SyscallInvocation] = []
        self.generation = 0  # bumped on restart
        #: Internal state kept by stateful framework APIs (training steps,
        #: accumulated gradients, ...).  Lives and dies with the process;
        #: the agent layer checkpoints it periodically (Appendix A.2.4).
        self.framework_state: dict = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.state is ProcessState.RUNNING

    def require_alive(self) -> None:
        if not self.alive:
            reason = self.crash_record.reason if self.crash_record else self.state.value
            raise ProcessCrashed(self.pid, reason)

    def crash(self, reason: str, syscall: Optional[str] = None) -> None:
        if self.state is ProcessState.RUNNING:
            self.state = ProcessState.CRASHED
            self.crash_record = CrashRecord(
                pid=self.pid, reason=reason, at_ns=self.clock.now_ns, syscall=syscall
            )

    def exit(self) -> None:
        if self.state is ProcessState.RUNNING:
            self.state = ProcessState.EXITED

    # ------------------------------------------------------------------
    # Syscall entry
    # ------------------------------------------------------------------

    def syscall(
        self,
        name: str,
        fd: Optional[int] = None,
        path: Optional[str] = None,
        nbytes: int = 0,
    ) -> SyscallInvocation:
        """Enter a syscall: filter check, cost, trace record.

        A denied call crashes the process (seccomp kill) and re-raises
        :class:`SyscallDenied` so the caller — typically an exploit payload
        or a hooked framework API — observes the failure.
        """
        self.require_alive()
        cost = self.clock.cost_model
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("syscall_check", category="filter_check",
                             pid=self.pid, syscall=name):
                self._checked_filter_entry(name, fd, path, nbytes)
            with tracer.span("syscall", category="syscall", pid=self.pid,
                             syscall=name):
                self.clock.advance(cost.syscall_ns)
        else:
            self._checked_filter_entry(name, fd, path, nbytes)
            self.clock.advance(cost.syscall_ns)
        record = SyscallInvocation(
            pid=self.pid, name=name, fd=fd, path=path, nbytes=nbytes, allowed=True
        )
        self.syscall_log.append(record)
        return record

    def _checked_filter_entry(
        self, name: str, fd: Optional[int], path: Optional[str], nbytes: int
    ) -> None:
        """Charge the filter check and run it; a denial crashes us."""
        self.clock.advance(self.clock.cost_model.syscall_filter_check_ns)
        try:
            self.filter.check(self.pid, name, fd=fd, path=path)
        except SyscallDenied:
            self.syscall_log.append(
                SyscallInvocation(
                    pid=self.pid, name=name, fd=fd, path=path, nbytes=nbytes,
                    allowed=False,
                )
            )
            self.crash(f"seccomp kill on {name}", syscall=name)
            raise

    def syscalls_used(self) -> List[str]:
        """Distinct syscall names this process successfully executed."""
        seen: List[str] = []
        for record in self.syscall_log:
            if record.allowed and record.name not in seen:
                seen.append(record.name)
        return seen

    def denied_syscalls(self) -> List[str]:
        return [r.name for r in self.syscall_log if not r.allowed]

    def __repr__(self) -> str:
        return (
            f"SimProcess(pid={self.pid}, name={self.name!r}, role={self.role!r}, "
            f"state={self.state.value})"
        )
