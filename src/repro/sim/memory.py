"""Simulated per-process virtual memory with page-level permissions.

This module stands in for the MMU + ``mprotect`` mechanism the paper uses
to enforce temporal read-only permissions on data objects (Fig. 3).  Each
:class:`AddressSpace` belongs to exactly one simulated process; a write
from one process can never reach another process's buffers because the
spaces are disjoint Python objects — the same guarantee real page tables
give.

Data objects (images, tensors, model weights) live in :class:`Buffer`
records: a page-aligned range plus an arbitrary Python payload.  Exploit
code operates on raw addresses (``raw_write``), while well-behaved
framework APIs operate on payloads (``load``/``store``); both paths go
through the same permission check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import SegmentationFault
from repro.sim.clock import VirtualClock

PAGE_SIZE = 4096
_HEAP_BASE = 0x0001_0000
_GUARD_PAGES = 1


class Permission(enum.IntFlag):
    """POSIX-style page protection bits."""

    NONE = 0
    READ = 1
    WRITE = 2
    EXEC = 4

    @classmethod
    def rw(cls) -> "Permission":
        return cls.READ | cls.WRITE

    @classmethod
    def ro(cls) -> "Permission":
        return cls.READ


def page_of(address: int) -> int:
    """Return the page index containing ``address``."""
    return address // PAGE_SIZE


def pages_spanned(address: int, size: int) -> range:
    """Return the range of page indices covered by ``[address, address+size)``."""
    if size <= 0:
        return range(page_of(address), page_of(address))
    return range(page_of(address), page_of(address + size - 1) + 1)


@dataclass
class SharedSegment:
    """Pages shared between address spaces by a zero-copy transfer.

    Instead of serializing a large payload through a channel, the kernel
    can remap the owning process's pages into the destination — the
    Polytope-style "move mappings, not bytes" crossing.  Every mapping
    of the segment references the same payload; a write through any
    mapping first triggers a copy-on-write downgrade (see
    :meth:`AddressSpace.store`), so the sharing is never observable.
    """

    segment_id: int
    nbytes: int
    payload: Any = None
    #: How many buffers currently map this segment.
    mappings: int = 0

    @property
    def npages(self) -> int:
        return (max(self.nbytes, 1) + PAGE_SIZE - 1) // PAGE_SIZE


@dataclass
class Buffer:
    """A contiguous allocation holding one data object.

    ``payload`` is the live Python object (numpy array, bytes, model
    weights, ...).  ``nbytes`` is the simulated size used for cost and
    permission accounting; it tracks the payload where possible.

    ``origin_state`` records the framework state during which the buffer
    was defined — FreePart's temporal permission enforcement flips every
    buffer of the *previous* state to read-only on a state transition.

    ``segment`` marks a zero-copy mapping: the buffer's pages belong to
    a :class:`SharedSegment` and the first write must pay the
    copy-on-write downgrade before it lands.
    """

    buffer_id: int
    pid: int
    address: int
    nbytes: int
    tag: str = ""
    payload: Any = None
    origin_state: str = "initialization"
    freed: bool = False
    segment: Optional[SharedSegment] = None

    @property
    def end(self) -> int:
        return self.address + self.nbytes

    def contains(self, address: int) -> bool:
        """Does the address fall inside this buffer?"""
        return self.address <= address < self.end


#: Memoized sizes for payloads declared immutable by their sender
#: (``payload_nbytes(..., frozen=True)``).  Keyed weakly so entries die
#: with their payloads; non-weakref-able payloads are simply recomputed.
_frozen_nbytes = None  # weakref.WeakKeyDictionary, populated lazily


def payload_nbytes(payload: Any, frozen: bool = False) -> int:
    """Best-effort simulated size of an arbitrary payload object.

    ``frozen=True`` declares the payload immutable for the rest of its
    life (RPC messages in flight, reply-cache entries, retransmit
    payloads) and memoizes the computed size, so resending the same
    message never re-walks its argument tree.
    """
    if payload is None:
        return 0
    if frozen:
        cached = _frozen_size_of(payload)
        if cached is not None:
            return cached
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        size = int(nbytes)
    elif isinstance(payload, (bytes, bytearray, memoryview)):
        size = len(payload)
    elif isinstance(payload, str):
        size = len(payload.encode("utf-8"))
    elif isinstance(payload, (int, float, bool)):
        size = 8
    elif isinstance(payload, (list, tuple, set, frozenset)):
        size = 16 + sum(payload_nbytes(item, frozen) for item in payload)
    elif isinstance(payload, dict):
        size = 16 + sum(
            payload_nbytes(k, frozen) + payload_nbytes(v, frozen)
            for k, v in payload.items()
        )
    else:
        size = 64
    if frozen:
        _memoize_frozen_size(payload, size)
    return size


def _frozen_cache() -> dict:
    global _frozen_nbytes
    if _frozen_nbytes is None:
        import weakref

        _frozen_nbytes = weakref.WeakKeyDictionary()
    return _frozen_nbytes


def _frozen_size_of(payload: Any) -> Optional[int]:
    try:
        return _frozen_cache().get(payload)
    except TypeError:  # unhashable payload: not cacheable
        return None


def _memoize_frozen_size(payload: Any, size: int) -> None:
    try:
        _frozen_cache()[payload] = size
    except TypeError:  # unhashable or non-weakref-able payload
        pass


class AddressSpace:
    """The virtual memory of a single simulated process."""

    def __init__(
        self,
        pid: int,
        clock: Optional[VirtualClock] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        self.pid = pid
        self.clock = clock
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer
        #: Machine-wide IPC/copy accounting (installed by the kernel at
        #: spawn time); copy-on-write downgrades report into it.
        self.accounting: Optional[Any] = None
        self._next_address = _HEAP_BASE
        self._next_buffer_id = 1
        self._buffers: Dict[int, Buffer] = {}
        self._page_permissions: Dict[int, Permission] = {}
        self.mprotect_calls = 0
        #: Copy-on-write downgrades performed on shared-segment buffers.
        self.cow_downgrades = 0
        self.cow_bytes = 0
        #: Write attempts the permission check denied (SIGSEGV delivered).
        self.write_denials = 0
        #: Writes that *completed* against a page lacking WRITE — an
        #: independent audit re-check after every successful store;
        #: the chaos campaign asserts this stays 0 under any fault
        #: schedule ("no frozen-page write ever succeeds").
        self.frozen_write_granted = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def alloc(
        self,
        nbytes: int,
        tag: str = "",
        payload: Any = None,
        origin_state: str = "initialization",
        permission: Permission = Permission.READ | Permission.WRITE,
    ) -> Buffer:
        """Allocate a page-aligned buffer and map its pages."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate a negative size ({nbytes})")
        nbytes = max(nbytes, 1)
        address = self._next_address
        npages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        self._next_address += (npages + _GUARD_PAGES) * PAGE_SIZE
        buffer = Buffer(
            buffer_id=self._next_buffer_id,
            pid=self.pid,
            address=address,
            nbytes=nbytes,
            tag=tag,
            payload=payload,
            origin_state=origin_state,
        )
        self._next_buffer_id += 1
        self._buffers[buffer.buffer_id] = buffer
        for page in pages_spanned(address, nbytes):
            self._page_permissions[page] = permission
        return buffer

    def alloc_object(
        self,
        payload: Any,
        tag: str = "",
        origin_state: str = "initialization",
    ) -> Buffer:
        """Allocate a buffer sized to hold ``payload``."""
        return self.alloc(
            payload_nbytes(payload),
            tag=tag,
            payload=payload,
            origin_state=origin_state,
        )

    def map_shared(
        self,
        segment: SharedSegment,
        tag: str = "",
        origin_state: str = "initialization",
    ) -> Buffer:
        """Map a shared segment's pages into this space (zero-copy).

        The buffer references the segment's payload without a byte copy;
        the caller (the kernel's transfer path) charges the page-remap
        cost.  Pages are mapped read-write like a private allocation —
        the first write through :meth:`store`/:meth:`raw_write` pays the
        copy-on-write downgrade *after* the ordinary permission check,
        so temporal freezing still faults before any COW happens.
        """
        buffer = self.alloc(
            segment.nbytes,
            tag=tag,
            payload=segment.payload,
            origin_state=origin_state,
        )
        buffer.segment = segment
        segment.mappings += 1
        return buffer

    def free(self, buffer_id: int) -> None:
        """Unmap a buffer; later accesses through it fault."""
        buffer = self.get_buffer(buffer_id)
        for page in pages_spanned(buffer.address, buffer.nbytes):
            self._page_permissions.pop(page, None)
        if buffer.segment is not None:
            buffer.segment.mappings -= 1
            buffer.segment = None
        buffer.freed = True
        buffer.payload = None
        del self._buffers[buffer_id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get_buffer(self, buffer_id: int) -> Buffer:
        """Look up a live buffer by id (faults if unmapped)."""
        try:
            return self._buffers[buffer_id]
        except KeyError:
            raise SegmentationFault(
                self.pid, 0, "access", f"buffer {buffer_id} is not mapped"
            ) from None

    def find_buffer(self, tag: str) -> Optional[Buffer]:
        """Return the most recently allocated live buffer with ``tag``."""
        match = None
        for buffer in self._buffers.values():
            if buffer.tag == tag:
                match = buffer
        return match

    def buffer_at(self, address: int) -> Optional[Buffer]:
        """The buffer containing an address, if any."""
        for buffer in self._buffers.values():
            if buffer.contains(address):
                return buffer
        return None

    def buffers(self) -> Iterator[Buffer]:
        """Iterate over the live buffers."""
        return iter(list(self._buffers.values()))

    def buffers_in_state(self, origin_state: str) -> List[Buffer]:
        """Buffers defined during one framework state."""
        return [b for b in self._buffers.values() if b.origin_state == origin_state]

    @property
    def resident_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    # ------------------------------------------------------------------
    # Permission checks and protection changes
    # ------------------------------------------------------------------

    def permission_of(self, address: int) -> Permission:
        """Page protection bits at an address."""
        return self._page_permissions.get(page_of(address), Permission.NONE)

    def check(self, address: int, nbytes: int, needed: Permission) -> None:
        """Fault unless every page in the range grants ``needed``."""
        for page in pages_spanned(address, max(nbytes, 1)):
            granted = self._page_permissions.get(page, Permission.NONE)
            if needed & ~granted:
                if needed & Permission.WRITE:
                    self.write_denials += 1
                raise SegmentationFault(
                    self.pid,
                    page * PAGE_SIZE,
                    needed.name.lower() if needed.name else str(needed),
                    f"page grants {granted!r}",
                )

    def _audit_write(self, address: int, nbytes: int) -> None:
        """Post-write audit: count any write that got past the check onto
        a non-writable page (must never happen; the chaos invariant)."""
        for page in pages_spanned(address, max(nbytes, 1)):
            granted = self._page_permissions.get(page, Permission.NONE)
            if not granted & Permission.WRITE:
                self.frozen_write_granted += 1
                return

    def mprotect(self, address: int, nbytes: int, permission: Permission) -> None:
        """Change page protections for a mapped range (must be mapped)."""
        spanned = pages_spanned(address, max(nbytes, 1))
        for page in spanned:
            if page not in self._page_permissions:
                raise SegmentationFault(
                    self.pid, page * PAGE_SIZE, "mprotect", "page is not mapped"
                )
        for page in spanned:
            self._page_permissions[page] = permission
        self.mprotect_calls += 1
        if self.clock is not None:
            tracer = self.tracer
            if tracer.enabled:
                with tracer.span("mprotect", category="mprotect",
                                 pid=self.pid, bytes=nbytes,
                                 permission=str(permission)):
                    self.clock.advance(self.clock.cost_model.mprotect_ns)
            else:
                self.clock.advance(self.clock.cost_model.mprotect_ns)

    def protect_buffer(self, buffer_id: int, permission: Permission) -> None:
        """mprotect an entire buffer's page range."""
        buffer = self.get_buffer(buffer_id)
        self.mprotect(buffer.address, buffer.nbytes, permission)

    def is_writable(self, buffer_id: int) -> bool:
        """Is every page of the buffer writable?"""
        buffer = self.get_buffer(buffer_id)
        try:
            self.check(buffer.address, buffer.nbytes, Permission.WRITE)
        except SegmentationFault:
            return False
        return True

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def load(self, buffer_id: int) -> Any:
        """Read a buffer's payload (checks READ permission)."""
        buffer = self.get_buffer(buffer_id)
        self.check(buffer.address, buffer.nbytes, Permission.READ)
        return buffer.payload

    def store(self, buffer_id: int, payload: Any) -> Buffer:
        """Replace a buffer's payload (checks WRITE permission).

        The simulated size is updated to follow the payload; growth beyond
        the currently mapped pages extends the mapping, modelling a
        ``realloc`` performed by the owning process.
        """
        buffer = self.get_buffer(buffer_id)
        self.check(buffer.address, buffer.nbytes, Permission.WRITE)
        self._cow_downgrade(buffer)
        new_nbytes = max(payload_nbytes(payload), 1)
        old_pages = set(pages_spanned(buffer.address, buffer.nbytes))
        new_pages = set(pages_spanned(buffer.address, new_nbytes))
        for page in new_pages - old_pages:
            self._page_permissions[page] = Permission.READ | Permission.WRITE
        for page in old_pages - new_pages:
            self._page_permissions.pop(page, None)
        buffer.payload = payload
        buffer.nbytes = new_nbytes
        self._audit_write(buffer.address, buffer.nbytes)
        return buffer

    def raw_write(self, address: int, nbytes: int, value: Any = None) -> Buffer:
        """Write ``nbytes`` at a raw address, as exploit payloads do.

        Returns the buffer that was corrupted.  Faults if the address is
        unmapped or read-only — this is exactly the check that makes the
        temporal-permission mitigation of Fig. 3 effective.
        """
        self.check(address, nbytes, Permission.WRITE)
        buffer = self.buffer_at(address)
        if buffer is None:
            raise SegmentationFault(self.pid, address, "write", "no buffer mapped")
        self._cow_downgrade(buffer)
        if value is not None:
            buffer.payload = value
        self._audit_write(address, nbytes)
        return buffer

    def _cow_downgrade(self, buffer: Buffer) -> None:
        """First write to a shared-segment mapping: copy, then detach.

        Runs strictly *after* the permission check — a frozen (read-only)
        shared page still faults before any COW work happens, preserving
        the temporal-freezing semantics the zero-copy path must not
        weaken.  Charges the byte-copy cost the zero-copy transfer
        deferred and downgrades the buffer to a private allocation.
        """
        segment = buffer.segment
        if segment is None:
            return
        buffer.segment = None
        segment.mappings -= 1
        self.cow_downgrades += 1
        self.cow_bytes += buffer.nbytes
        if self.accounting is not None:
            self.accounting.record_cow(buffer.nbytes)
        if self.clock is not None:
            cost = self.clock.cost_model.copy_cost(buffer.nbytes)
            tracer = self.tracer
            if tracer.enabled:
                with tracer.span("cow_copy", category="zero_copy",
                                 pid=self.pid, bytes=buffer.nbytes,
                                 segment=segment.segment_id):
                    self.clock.advance(cost)
            else:
                self.clock.advance(cost)

    def raw_read(self, address: int, nbytes: int) -> Any:
        """Read from a raw address, as info-leak payloads do."""
        self.check(address, nbytes, Permission.READ)
        buffer = self.buffer_at(address)
        if buffer is None:
            raise SegmentationFault(self.pid, address, "read", "no buffer mapped")
        return buffer.payload


@dataclass
class MemoryLayout:
    """A user-provided annotation describing a protected data structure.

    The paper requires users to define "the memory layout of a customized
    data structure (e.g., buffer location and size of `template`)" so the
    runtime can set memory access permissions on it.
    """

    name: str
    tag: str
    nbytes: int
    constructor: str = ""
    accessors: tuple = field(default_factory=tuple)

    def validate(self) -> None:
        """Raise AnnotationError on an incomplete annotation."""
        from repro.errors import AnnotationError

        if not self.name:
            raise AnnotationError("annotation needs a name")
        if not self.tag:
            raise AnnotationError(f"annotation {self.name!r} needs a buffer tag")
        if self.nbytes <= 0:
            raise AnnotationError(
                f"annotation {self.name!r} needs a positive size, got {self.nbytes}"
            )
