"""The simulated kernel: process table, shared resources, data movement.

One :class:`SimKernel` is one machine.  It owns the virtual clock, the
filesystem, the device board, the GUI subsystem, the IPC accounting, and
the process table, and it provides the two data-movement primitives the
runtime builds on:

``transfer``
    Copy a payload from one process's address space into another's,
    charging copy cost and updating the lazy/non-lazy counters.  This is
    *the* operation whose count and volume the paper reports in Tables 9
    and 12.
``restart``
    Replace a crashed process with a fresh one of the same role, with a
    newly built (sealed) filter — the paper's agent-restart support.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ProcessNotFound
from repro.faults.injector import NULL_INJECTOR
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRegistry
from repro.obs.tracer import NULL_TRACER
from repro.sim.clock import CostModel, VirtualClock
from repro.sim.devices import DeviceBoard
from repro.sim.files import SimFileSystem
from repro.sim.filters import FilterSpec, SyscallFilter
from repro.sim.gui import GuiSubsystem
from repro.sim.ipc import ChannelPair, IpcAccounting
from repro.sim.memory import (
    PAGE_SIZE,
    Buffer,
    SharedSegment,
    payload_nbytes,
)
from repro.sim.process import ProcessState, SimProcess

#: Smallest payload worth remapping instead of copying (4 pages): below
#: this the page-table updates cost more than the byte copy they avoid,
#: so small transfers always take the copy path regardless of the flag.
ZERO_COPY_MIN_BYTES = 4 * PAGE_SIZE


class SimKernel:
    """A single simulated machine."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        self.clock = VirtualClock(cost_model=cost_model or CostModel())
        #: Span tracer (repro.obs).  The no-op default costs hot paths a
        #: single ``enabled`` check; ``enable_tracing`` swaps in a real one.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Machine-wide metrics registry (repro.obs.metrics).
        self.metrics = MetricsRegistry()
        #: Dimensional time-series registry (repro.obs.timeseries):
        #: windowed, labeled observations stamped from this clock.
        self.series = TimeSeriesRegistry(self.clock)
        #: Fault injector (repro.faults).  The no-op default costs hot
        #: paths a single ``enabled`` check; ``inject_faults`` arms one.
        self.faults = NULL_INJECTOR
        self.fs = SimFileSystem()
        self.devices = DeviceBoard()
        self.gui = GuiSubsystem()
        self.ipc = IpcAccounting()
        self._pids = itertools.count(100)
        self._segment_ids = itertools.count(1)
        self._processes: Dict[int, SimProcess] = {}
        self._channels: Dict[str, ChannelPair] = {}
        self.spawned_processes = 0
        self.restarted_processes = 0
        #: Audit trail of security-relevant events (exploit attempts and
        #: their outcomes); appended to by the attack layer, inspected by
        #: the evaluation harness.
        self.security_events: List[Any] = []

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def enable_tracing(self):
        """Install a real span tracer on this machine (idempotent).

        Existing processes and channels hold their own tracer reference,
        so the swap walks the live topology too.  Returns the tracer.
        """
        if self.tracer.enabled:
            return self.tracer
        from repro.obs.tracer import SpanTracer

        tracer = SpanTracer(self.clock)
        self.tracer = tracer
        for process in self._processes.values():
            process.tracer = tracer
            process.memory.tracer = tracer
            tracer.name_track(process.pid, process.name)
        for pair in self._channels.values():
            pair.request.tracer = tracer
            pair.response.tracer = tracer
        return tracer

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def inject_faults(self, injector):
        """Install a fault injector on this machine.

        Channels created before the call hold their own injector
        reference (like tracers), so the swap walks the live topology.
        Passing :data:`~repro.faults.injector.NULL_INJECTOR` disarms
        injection again.  Returns the injector.
        """
        self.faults = injector
        injector.attach(self)
        for pair in self._channels.values():
            pair.request.faults = injector
            pair.response.faults = injector
        return injector

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def spawn(
        self,
        name: str,
        syscall_filter: Optional[SyscallFilter] = None,
        role: str = "host",
        charge: bool = True,
    ) -> SimProcess:
        """Create a new simulated process (charges spawn cost unless disabled)."""
        pid = next(self._pids)
        process = SimProcess(
            pid=pid, name=name, clock=self.clock,
            syscall_filter=syscall_filter, role=role,
            tracer=self.tracer,
        )
        process.memory.accounting = self.ipc
        self._processes[pid] = process
        self.spawned_processes += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.name_track(pid, name)
            span_name = "agent_spawn" if role == "agent" else "spawn"
            if charge:
                with tracer.span(span_name, category="spawn", pid=pid,
                                 process=name):
                    self.clock.advance(
                        self.clock.cost_model.process_spawn_ns
                    )
            else:
                tracer.instant(span_name, category="spawn", pid=pid,
                               process=name)
        elif charge:
            self.clock.advance(self.clock.cost_model.process_spawn_ns)
        return process

    def process(self, pid: int) -> SimProcess:
        """Look up a process by pid (ProcessNotFound if absent)."""
        try:
            return self._processes[pid]
        except KeyError:
            raise ProcessNotFound(f"no process with pid {pid}") from None

    def processes(self, role: Optional[str] = None) -> List[SimProcess]:
        """All processes, optionally filtered by role."""
        found = list(self._processes.values())
        if role is not None:
            found = [p for p in found if p.role == role]
        return found

    def living(self) -> List[SimProcess]:
        """Processes still running."""
        return [p for p in self._processes.values() if p.alive]

    def kill(self, pid: int, reason: str = "killed") -> None:
        """Crash a process by pid."""
        self.process(pid).crash(reason)

    def restart(
        self,
        process: SimProcess,
        filter_spec: Optional[FilterSpec] = None,
    ) -> SimProcess:
        """Replace a dead process with a fresh one of the same identity.

        The replacement keeps the name and role but gets a brand-new
        address space (the paper intentionally does not restore variable
        values of a crashed process — the crash may have been an attack)
        and a freshly built, sealed filter.
        """
        new_filter = filter_spec.build() if filter_spec is not None else None
        if new_filter is not None:
            new_filter.seal()
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("restart", category="restart", pid=process.pid,
                             process=process.name) as span:
                replacement = self.spawn(
                    name=process.name,
                    syscall_filter=new_filter,
                    role=process.role,
                    charge=False,
                )
                span.annotate(new_pid=replacement.pid)
                self.clock.advance(self.clock.cost_model.process_restart_ns)
        else:
            replacement = self.spawn(
                name=process.name,
                syscall_filter=new_filter,
                role=process.role,
                charge=False,
            )
            self.clock.advance(self.clock.cost_model.process_restart_ns)
        replacement.generation = process.generation + 1
        self.restarted_processes += 1
        return replacement

    # ------------------------------------------------------------------
    # IPC channels
    # ------------------------------------------------------------------

    def channel_pair(self, name: str) -> ChannelPair:
        """Get-or-create a named request/response channel pair."""
        pair = self._channels.get(name)
        if pair is None:
            pair = ChannelPair(
                name, self.clock, self.ipc, tracer=self.tracer,
                faults=self.faults,
            )
            self._channels[name] = pair
        return pair

    # ------------------------------------------------------------------
    # Cross-process data movement
    # ------------------------------------------------------------------

    def transfer(
        self,
        source: SimProcess,
        destination: SimProcess,
        payload: Any,
        tag: str = "",
        origin_state: str = "initialization",
        lazy: bool = False,
        count_message: bool = True,
        zero_copy: bool = False,
    ) -> Buffer:
        """Copy a payload into ``destination``'s address space.

        ``lazy=True`` marks the copy as a direct agent-to-agent transfer
        performed on first dereference (the LDC path); ``lazy=False`` is a
        copy routed eagerly through message serialization.  Both charge
        per-byte copy cost; pass ``count_message=False`` when the payload
        already rode in an accounted IPC message (the RPC layer does this
        to avoid double-counting message traffic).

        ``zero_copy=True`` asks for the remap path: payloads of at least
        :data:`ZERO_COPY_MIN_BYTES` cross as a shared-page segment —
        page-table updates charged per page instead of a per-byte copy —
        and the destination's first write to a frozen-eligible mapping
        pays the deferred copy (COW downgrade in
        :class:`~repro.sim.memory.AddressSpace`).  Smaller payloads fall
        back to the copy path silently.
        """
        source.require_alive()
        destination.require_alive()
        nbytes = payload_nbytes(payload)
        cost = self.clock.cost_model
        tracer = self.tracer
        if zero_copy and nbytes >= ZERO_COPY_MIN_BYTES:
            segment = SharedSegment(
                segment_id=next(self._segment_ids),
                nbytes=nbytes,
                payload=payload,
            )
            remap_ns = cost.remap_cost(segment.npages)
            if tracer.enabled:
                if count_message:
                    with tracer.span("ipc_message", category="ipc",
                                     pid=destination.pid, bytes=nbytes,
                                     tag=tag):
                        self.clock.advance(cost.ipc_message_ns)
                        self.ipc.record_message(nbytes)
                with tracer.span("page_remap", category="zero_copy",
                                 pid=destination.pid, bytes=nbytes, tag=tag,
                                 src=source.pid, pages=segment.npages,
                                 segment=segment.segment_id):
                    self.clock.advance(remap_ns)
                    self.ipc.record_zero_copy(nbytes)
            else:
                if count_message:
                    self.clock.advance(cost.ipc_message_ns)
                    self.ipc.record_message(nbytes)
                self.clock.advance(remap_ns)
                self.ipc.record_zero_copy(nbytes)
            return destination.memory.map_shared(
                segment, tag=tag, origin_state=origin_state
            )
        if tracer.enabled:
            if count_message:
                with tracer.span("ipc_message", category="ipc",
                                 pid=destination.pid, bytes=nbytes, tag=tag):
                    self.clock.advance(cost.ipc_message_ns)
                    self.ipc.record_message(nbytes)
            with tracer.span("ldc_copy" if lazy else "copy", category="copy",
                             pid=destination.pid, bytes=nbytes, tag=tag,
                             src=source.pid, lazy=lazy):
                self.clock.advance(cost.copy_cost(nbytes))
                self.ipc.record_copy(nbytes, lazy=lazy)
        else:
            if count_message:
                self.clock.advance(cost.ipc_message_ns)
                self.ipc.record_message(nbytes)
            self.clock.advance(cost.copy_cost(nbytes))
            self.ipc.record_copy(nbytes, lazy=lazy)
        return destination.memory.alloc(
            nbytes, tag=tag, payload=payload, origin_state=origin_state
        )

    @property
    def data_transferred_bytes(self) -> int:
        """Total bytes moved between processes (messages + direct copies
        + bytes made visible by zero-copy remaps)."""
        return (
            self.ipc.message_bytes
            + self.ipc.lazy_copy_bytes
            + self.ipc.zero_copy_bytes
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Machine-wide counters for reports."""
        return {
            "virtual_seconds": self.clock.now_seconds,
            "processes": len(self._processes),
            "alive": len(self.living()),
            "spawned": self.spawned_processes,
            "restarted": self.restarted_processes,
            "ipc_messages": self.ipc.messages,
            "ipc_bytes": self.ipc.message_bytes,
            "lazy_copies": self.ipc.lazy_copies,
            "nonlazy_copies": self.ipc.nonlazy_copies,
            "zero_copy_transfers": self.ipc.zero_copy_transfers,
            "zero_copy_bytes": self.ipc.zero_copy_bytes,
            "cow_downgrades": self.ipc.cow_downgrades,
            "cow_bytes": self.ipc.cow_bytes,
            "framed_messages": self.ipc.framed_messages,
        }
