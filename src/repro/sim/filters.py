"""seccomp-BPF-like per-process system-call filters.

Reproduces the three properties FreePart relies on (Section 4.4.1):

* an **allowlist** of syscall names — anything else kills the process;
* **NO_NEW_PRIVS sealing** — once installed, the filter cannot be loosened
  or replaced, so a compromised agent cannot re-enable ``mprotect``;
* **fd-argument checks** for device-capable syscalls (``ioctl``,
  ``connect``, ``select``, ``fcntl``): they may only operate on the file
  descriptors that were designated at install time;
* an **initialization grace phase** for syscalls that frameworks only need
  on their first execution (``mprotect`` to load libraries, ``connect`` to
  reach the GUI subsystem) — the paper "first executes all the framework
  APIs and then restricts them afterwards".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from repro.errors import FilterSealed, SyscallDenied
from repro.sim.syscalls import lookup


@dataclass
class FilterDecision:
    """Outcome of evaluating one syscall against a filter."""

    allowed: bool
    reason: str = ""


class SyscallFilter:
    """An installable, sealable syscall allowlist for one process."""

    def __init__(
        self,
        allowed: Iterable[str] = (),
        init_only: Iterable[str] = (),
        allowed_fds: Optional[Iterable[int]] = None,
        allowed_path_prefixes: Optional[Iterable[str]] = None,
    ) -> None:
        self._allowed: Set[str] = set()
        self._init_only: Set[str] = set()
        self._allowed_fds: Optional[FrozenSet[int]] = (
            frozenset(allowed_fds) if allowed_fds is not None else None
        )
        self._allowed_path_prefixes: Optional[Tuple[str, ...]] = (
            tuple(allowed_path_prefixes)
            if allowed_path_prefixes is not None else None
        )
        self._sealed = False
        self._init_phase = True
        self.denials = 0
        for name in allowed:
            self.allow(name)
        for name in init_only:
            self.allow_during_init(name)

    # ------------------------------------------------------------------
    # Configuration (only before sealing)
    # ------------------------------------------------------------------

    def allow(self, name: str) -> None:
        """Add a syscall to the allowlist (validates the name)."""
        self._require_unsealed("allow")
        lookup(name)
        self._allowed.add(name)

    def allow_during_init(self, name: str) -> None:
        """Permit a syscall only while the initialization phase lasts."""
        self._require_unsealed("allow_during_init")
        lookup(name)
        self._init_only.add(name)

    def restrict_fds(self, fds: Iterable[int]) -> None:
        """Designate the only fds device-capable syscalls may touch."""
        self._require_unsealed("restrict_fds")
        self._allowed_fds = frozenset(fds)

    def restrict_paths(self, prefixes: Iterable[str]) -> None:
        """Designate the only path prefixes file syscalls may touch.

        This is the generalization of the paper's designated-files check:
        the runtime knows which parts of the (simulated) filesystem each
        agent type legitimately works with.
        """
        self._require_unsealed("restrict_paths")
        self._allowed_path_prefixes = tuple(prefixes)

    def seal(self) -> None:
        """Install the filter with NO_NEW_PRIVS: no further changes."""
        self._sealed = True

    def end_init_phase(self) -> None:
        """Close the initialization grace phase.

        Unlike configuration changes this *tightens* the filter, so it is
        permitted after sealing (the runtime support performs it once the
        first execution of every framework API has completed).
        """
        self._init_phase = False

    def _require_unsealed(self, operation: str) -> None:
        if self._sealed:
            raise FilterSealed(
                f"cannot {operation}: filter sealed with NO_NEW_PRIVS"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def in_init_phase(self) -> bool:
        return self._init_phase

    @property
    def allowed_names(self) -> FrozenSet[str]:
        return frozenset(self._allowed)

    @property
    def init_only_names(self) -> FrozenSet[str]:
        return frozenset(self._init_only)

    @property
    def allowed_fds(self) -> Optional[FrozenSet[int]]:
        return self._allowed_fds

    @property
    def allowed_path_prefixes(self) -> Optional[Tuple[str, ...]]:
        return self._allowed_path_prefixes

    def would_allow(
        self,
        name: str,
        fd: Optional[int] = None,
        path: Optional[str] = None,
    ) -> FilterDecision:
        """Evaluate a syscall without recording a denial."""
        entry = lookup(name)
        if name in self._allowed:
            permitted = True
        elif name in self._init_only and self._init_phase:
            permitted = True
        else:
            return FilterDecision(False, "not in allowlist")
        if permitted and entry.needs_fd_check and self._allowed_fds is not None:
            if fd is not None and fd not in self._allowed_fds:
                return FilterDecision(
                    False, f"fd {fd} not designated for {name}"
                )
        if (
            permitted
            and path is not None
            and self._allowed_path_prefixes is not None
            and entry.category == "file"
        ):
            if not any(path.startswith(p) for p in self._allowed_path_prefixes):
                return FilterDecision(
                    False, f"path {path!r} not designated for {name}"
                )
        return FilterDecision(True)

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------

    def check(
        self,
        pid: int,
        name: str,
        fd: Optional[int] = None,
        path: Optional[str] = None,
    ) -> None:
        """Raise :class:`SyscallDenied` unless the call is permitted."""
        decision = self.would_allow(name, fd=fd, path=path)
        if not decision.allowed:
            self.denials += 1
            raise SyscallDenied(pid, name, decision.reason)


def permissive_filter() -> SyscallFilter:
    """A filter that allows every known syscall (host/unprotected runs)."""
    from repro.sim.syscalls import SYSCALL_TABLE

    return SyscallFilter(allowed=SYSCALL_TABLE.keys())


@dataclass
class FilterSpec:
    """Declarative description of a filter, built by the policy layer."""

    allowed: FrozenSet[str] = frozenset()
    init_only: FrozenSet[str] = frozenset()
    allowed_fds: Optional[FrozenSet[int]] = None
    allowed_path_prefixes: Optional[Tuple[str, ...]] = None
    description: str = ""
    extras: dict = field(default_factory=dict)

    def build(self) -> SyscallFilter:
        return SyscallFilter(
            allowed=self.allowed,
            init_only=self.init_only,
            allowed_fds=self.allowed_fds,
            allowed_path_prefixes=self.allowed_path_prefixes,
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (sorted; ``--emit-minimal-pools``)."""
        return {
            "allowed": sorted(self.allowed),
            "init_only": sorted(self.init_only),
            "allowed_fds": (
                sorted(self.allowed_fds)
                if self.allowed_fds is not None else None
            ),
            "allowed_path_prefixes": (
                list(self.allowed_path_prefixes)
                if self.allowed_path_prefixes is not None else None
            ),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FilterSpec":
        """Rebuild a spec emitted by :meth:`to_dict` (install path)."""
        fds = payload.get("allowed_fds")
        prefixes = payload.get("allowed_path_prefixes")
        return cls(
            allowed=frozenset(payload.get("allowed", ())),
            init_only=frozenset(payload.get("init_only", ())),
            allowed_fds=frozenset(fds) if fds is not None else None,
            allowed_path_prefixes=(
                tuple(prefixes) if prefixes is not None else None
            ),
            description=payload.get("description", ""),
        )
