"""Simulated system-call table.

A trimmed-down x86-64 Linux syscall table covering everything the paper's
framework APIs need (Fig. 12, Table 7) plus the calls attack payloads try
to make (``mprotect``, ``fork``, ``connect``, ``sendto``, ``shm_open``,
...).  Each entry records whether the call needs the additional
*file-descriptor argument check* FreePart applies to device-capable calls
(``ioctl``, ``connect``, ``select``, ``fcntl``) and a coarse category used
for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import UnknownSyscall


@dataclass(frozen=True)
class Syscall:
    """One entry in the simulated syscall table."""

    name: str
    number: int
    category: str
    needs_fd_check: bool = False


# Calls whose arguments FreePart additionally restricts because they can
# reach arbitrary devices depending on the fd they are handed (Section
# 4.4.1 of the paper).
FD_CHECKED_SYSCALLS = frozenset({"ioctl", "connect", "select", "fcntl"})

_RAW_TABLE: List = [
    # (name, number, category)
    ("read", 0, "file"),
    ("write", 1, "file"),
    ("open", 2, "file"),
    ("close", 3, "file"),
    ("stat", 4, "file"),
    ("fstat", 5, "file"),
    ("lstat", 6, "file"),
    ("poll", 7, "io-mux"),
    ("lseek", 8, "file"),
    ("mmap", 9, "memory"),
    ("mprotect", 10, "memory"),
    ("munmap", 11, "memory"),
    ("brk", 12, "memory"),
    ("rt_sigaction", 13, "signal"),
    ("rt_sigprocmask", 14, "signal"),
    ("ioctl", 16, "device"),
    ("pread64", 17, "file"),
    ("pwrite64", 18, "file"),
    ("readv", 19, "file"),
    ("writev", 20, "file"),
    ("access", 21, "file"),
    ("pipe", 22, "ipc"),
    ("select", 23, "io-mux"),
    ("sched_yield", 24, "process"),
    ("mremap", 25, "memory"),
    ("msync", 26, "memory"),
    ("mincore", 27, "memory"),
    ("madvise", 28, "memory"),
    ("shmget", 29, "ipc"),
    ("shmat", 30, "ipc"),
    ("shmctl", 31, "ipc"),
    ("dup", 32, "file"),
    ("dup2", 33, "file"),
    ("pause", 34, "process"),
    ("nanosleep", 35, "time"),
    ("getitimer", 36, "time"),
    ("alarm", 37, "time"),
    ("setitimer", 38, "time"),
    ("getpid", 39, "process"),
    ("sendfile", 40, "network"),
    ("socket", 41, "network"),
    ("connect", 42, "network"),
    ("accept", 43, "network"),
    ("sendto", 44, "network"),
    ("recvfrom", 45, "network"),
    ("sendmsg", 46, "network"),
    ("recvmsg", 47, "network"),
    ("shutdown", 48, "network"),
    ("bind", 49, "network"),
    ("listen", 50, "network"),
    ("getsockname", 51, "network"),
    ("getpeername", 52, "network"),
    ("socketpair", 53, "network"),
    ("setsockopt", 54, "network"),
    ("getsockopt", 55, "network"),
    ("clone", 56, "process"),
    ("fork", 57, "process"),
    ("vfork", 58, "process"),
    ("execve", 59, "process"),
    ("exit", 60, "process"),
    ("wait4", 61, "process"),
    ("kill", 62, "signal"),
    ("uname", 63, "misc"),
    ("fcntl", 72, "file"),
    ("flock", 73, "file"),
    ("fsync", 74, "file"),
    ("fdatasync", 75, "file"),
    ("truncate", 76, "file"),
    ("ftruncate", 77, "file"),
    ("getdents", 78, "file"),
    ("getcwd", 79, "file"),
    ("chdir", 80, "file"),
    ("fchdir", 81, "file"),
    ("rename", 82, "file"),
    ("mkdir", 83, "file"),
    ("rmdir", 84, "file"),
    ("creat", 85, "file"),
    ("link", 86, "file"),
    ("unlink", 87, "file"),
    ("symlink", 88, "file"),
    ("readlink", 89, "file"),
    ("chmod", 90, "file"),
    ("fchmod", 91, "file"),
    ("chown", 92, "file"),
    ("fchown", 93, "file"),
    ("umask", 95, "file"),
    ("gettimeofday", 96, "time"),
    ("getrlimit", 97, "process"),
    ("getrusage", 98, "process"),
    ("sysinfo", 99, "misc"),
    ("times", 100, "time"),
    ("getuid", 102, "identity"),
    ("getgid", 104, "identity"),
    ("geteuid", 107, "identity"),
    ("getegid", 108, "identity"),
    ("getppid", 110, "process"),
    ("getpgrp", 111, "process"),
    ("statfs", 137, "file"),
    ("fstatfs", 138, "file"),
    ("sched_setaffinity", 203, "process"),
    ("sched_getaffinity", 204, "process"),
    ("epoll_create", 213, "io-mux"),
    ("getdents64", 217, "file"),
    ("futex", 202, "sync"),
    ("epoll_wait", 232, "io-mux"),
    ("epoll_ctl", 233, "io-mux"),
    ("clock_gettime", 228, "time"),
    ("clock_nanosleep", 230, "time"),
    ("exit_group", 231, "process"),
    ("tgkill", 234, "signal"),
    ("openat", 257, "file"),
    ("mkdirat", 258, "file"),
    ("newfstatat", 262, "file"),
    ("unlinkat", 263, "file"),
    ("readlinkat", 267, "file"),
    ("faccessat", 269, "file"),
    ("ppoll", 271, "io-mux"),
    ("set_robust_list", 273, "sync"),
    ("get_robust_list", 274, "sync"),
    ("accept4", 288, "network"),
    ("eventfd2", 290, "io-mux"),
    ("epoll_create1", 291, "io-mux"),
    ("dup3", 292, "file"),
    ("pipe2", 293, "ipc"),
    ("prlimit64", 302, "process"),
    ("getrandom", 318, "misc"),
    ("memfd_create", 319, "memory"),
    ("statx", 332, "file"),
    ("rseq", 334, "sync"),
    ("shm_open", 1000, "ipc"),
    ("shm_unlink", 1001, "ipc"),
    ("prctl", 157, "process"),
    ("arch_prctl", 158, "process"),
    ("setpriority", 141, "process"),
    ("getpriority", 140, "process"),
    ("sigaltstack", 131, "signal"),
    ("personality", 135, "process"),
    ("ptrace", 101, "process"),
]

SYSCALL_TABLE: Dict[str, Syscall] = {
    name: Syscall(
        name=name,
        number=number,
        category=category,
        needs_fd_check=name in FD_CHECKED_SYSCALLS,
    )
    for name, number, category in _RAW_TABLE
}


def lookup(name: str) -> Syscall:
    """Return the table entry for ``name`` or raise :class:`UnknownSyscall`."""
    try:
        return SYSCALL_TABLE[name]
    except KeyError:
        raise UnknownSyscall(f"unknown syscall {name!r}") from None


def validate_names(names: Iterable[str]) -> List[str]:
    """Validate a collection of syscall names; returns them as a list."""
    resolved = []
    for name in names:
        lookup(name)
        resolved.append(name)
    return resolved


def by_category(category: str) -> List[Syscall]:
    """All syscalls in a category, ordered by syscall number."""
    found = [s for s in SYSCALL_TABLE.values() if s.category == category]
    return sorted(found, key=lambda s: s.number)


@dataclass(frozen=True)
class SyscallInvocation:
    """A record of one executed (or attempted) syscall."""

    pid: int
    name: str
    fd: Optional[int] = None
    path: Optional[str] = None
    nbytes: int = 0
    allowed: bool = True
