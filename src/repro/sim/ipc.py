"""Simulated inter-process communication.

The paper implements IPC "using shared memory ... ring buffers and futex
for synchronization".  We model a channel as a bounded ring buffer of
messages with exact byte accounting; synchronization is cooperative (the
simulation is single-threaded), so a futex wait is simply an immediate
hand-off, but capacity limits and message framing behave like the real
thing.

The machine-wide :class:`IpcAccounting` collects the quantities the paper
reports: number of IPC calls, bytes moved between processes, and how many
copy operations the lazy-data-copy optimization turned into direct
agent-to-agent copies (Tables 9 and 12).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.errors import AccountingError, ChannelClosed, ChannelFull
from repro.faults.injector import NULL_INJECTOR
from repro.faults.plan import FaultKind
from repro.obs.tracer import NULL_TRACER
from repro.sim.clock import VirtualClock
from repro.sim.memory import payload_nbytes

DEFAULT_CHANNEL_CAPACITY = 64 * 1024 * 1024


def reconcile_lanes(context: str, recorded: Dict[str, int],
                    expected: Dict[str, int]) -> None:
    """Check recorded lane counters against independently derived values.

    Raises :class:`~repro.errors.AccountingError` naming every off-by
    lane with its delta (instead of a bare assert that names nothing).
    Lanes present only on one side count as a mismatch against zero.
    """
    mismatches = []
    for name in sorted(set(recorded) | set(expected)):
        got = int(recorded.get(name, 0))
        want = int(expected.get(name, 0))
        if got != want:
            mismatches.append((name, got, want))
    if mismatches:
        raise AccountingError(context, mismatches)


@dataclass(frozen=True)
class Message:
    """One framed message on a channel."""

    seq: int
    sender_pid: int
    kind: str
    payload: Any
    nbytes: int


@dataclass
class IpcAccounting:
    """Machine-wide IPC and data-copy counters."""

    messages: int = 0
    message_bytes: int = 0
    #: Messages sent with a prebuilt frame template (cached dispatch).
    framed_messages: int = 0
    lazy_copies: int = 0
    lazy_copy_bytes: int = 0
    nonlazy_copies: int = 0
    nonlazy_copy_bytes: int = 0
    #: Transfers that moved page mappings instead of bytes (zero-copy
    #: LDC) and the payload bytes they made visible without copying.
    zero_copy_transfers: int = 0
    zero_copy_bytes: int = 0
    #: Copy-on-write downgrades of shared-segment mappings: the byte
    #: copy a zero-copy transfer deferred, paid on first write.
    cow_downgrades: int = 0
    cow_bytes: int = 0

    @property
    def total_copies(self) -> int:
        """Cross-address-space data movements (copied or remapped)."""
        return self.lazy_copies + self.nonlazy_copies + self.zero_copy_transfers

    @property
    def total_copy_bytes(self) -> int:
        """Bytes made visible across address spaces.

        The zero-copy lane counts here — those bytes *moved* between
        processes even though no byte copy happened — so the total still
        reconciles exactly with end-to-end bytes transferred.
        """
        return (
            self.lazy_copy_bytes
            + self.nonlazy_copy_bytes
            + self.zero_copy_bytes
        )

    @property
    def lazy_fraction(self) -> float:
        """Fraction of movements on the lazy path (zero-copy included:
        a remapped transfer is a lazy dereference that got cheaper)."""
        total = self.total_copies
        if total == 0:
            return 0.0
        return (self.lazy_copies + self.zero_copy_transfers) / total

    def record_message(self, nbytes: int, framed: bool = False) -> None:
        self.messages += 1
        self.message_bytes += nbytes
        if framed:
            self.framed_messages += 1

    def record_copy(self, nbytes: int, lazy: bool) -> None:
        if lazy:
            self.lazy_copies += 1
            self.lazy_copy_bytes += nbytes
        else:
            self.nonlazy_copies += 1
            self.nonlazy_copy_bytes += nbytes

    def record_zero_copy(self, nbytes: int) -> None:
        self.zero_copy_transfers += 1
        self.zero_copy_bytes += nbytes

    def record_cow(self, nbytes: int) -> None:
        self.cow_downgrades += 1
        self.cow_bytes += nbytes

    def lanes(self) -> Dict[str, int]:
        """Every counter as a flat lane name -> value mapping."""
        return {
            "messages": self.messages,
            "message_bytes": self.message_bytes,
            "framed_messages": self.framed_messages,
            "lazy_copies": self.lazy_copies,
            "lazy_copy_bytes": self.lazy_copy_bytes,
            "nonlazy_copies": self.nonlazy_copies,
            "nonlazy_copy_bytes": self.nonlazy_copy_bytes,
            "zero_copy_transfers": self.zero_copy_transfers,
            "zero_copy_bytes": self.zero_copy_bytes,
            "cow_downgrades": self.cow_downgrades,
            "cow_bytes": self.cow_bytes,
        }

    def reconcile(self, context: str = "ipc accounting",
                  **expected: int) -> None:
        """Verify named lanes against expected values.

        ``accounting.reconcile(messages=12, lazy_copy_bytes=4096)``
        raises :class:`~repro.errors.AccountingError` naming every lane
        that disagrees; lanes not mentioned are not checked.  Derived
        totals (``total_copies``, ``total_copy_bytes``) may be named
        too.
        """
        lanes = self.lanes()
        lanes["total_copies"] = self.total_copies
        lanes["total_copy_bytes"] = self.total_copy_bytes
        unknown = sorted(set(expected) - set(lanes))
        if unknown:
            raise ValueError(f"unknown accounting lanes: {unknown}")
        reconcile_lanes(
            context,
            {name: lanes[name] for name in expected},
            expected,
        )

    def snapshot(self) -> "IpcAccounting":
        return IpcAccounting(
            messages=self.messages,
            message_bytes=self.message_bytes,
            framed_messages=self.framed_messages,
            lazy_copies=self.lazy_copies,
            lazy_copy_bytes=self.lazy_copy_bytes,
            nonlazy_copies=self.nonlazy_copies,
            nonlazy_copy_bytes=self.nonlazy_copy_bytes,
            zero_copy_transfers=self.zero_copy_transfers,
            zero_copy_bytes=self.zero_copy_bytes,
            cow_downgrades=self.cow_downgrades,
            cow_bytes=self.cow_bytes,
        )

    def delta_since(self, earlier: "IpcAccounting") -> "IpcAccounting":
        return IpcAccounting(
            messages=self.messages - earlier.messages,
            message_bytes=self.message_bytes - earlier.message_bytes,
            framed_messages=self.framed_messages - earlier.framed_messages,
            lazy_copies=self.lazy_copies - earlier.lazy_copies,
            lazy_copy_bytes=self.lazy_copy_bytes - earlier.lazy_copy_bytes,
            nonlazy_copies=self.nonlazy_copies - earlier.nonlazy_copies,
            nonlazy_copy_bytes=self.nonlazy_copy_bytes - earlier.nonlazy_copy_bytes,
            zero_copy_transfers=(
                self.zero_copy_transfers - earlier.zero_copy_transfers
            ),
            zero_copy_bytes=self.zero_copy_bytes - earlier.zero_copy_bytes,
            cow_downgrades=self.cow_downgrades - earlier.cow_downgrades,
            cow_bytes=self.cow_bytes - earlier.cow_bytes,
        )


class Channel:
    """A bounded shared-memory message channel between two processes."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        accounting: IpcAccounting,
        capacity_bytes: int = DEFAULT_CHANNEL_CAPACITY,
        tracer: Optional[Any] = None,
        faults: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._clock = clock
        self._accounting = accounting
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults if faults is not None else NULL_INJECTOR
        self._queue: Deque[Message] = deque()
        self._queued_bytes = 0
        self._seq = itertools.count()
        self._closed = False
        self.sent_messages = 0
        self.sent_bytes = 0

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def close(self) -> None:
        self._closed = True
        self._queue.clear()
        self._queued_bytes = 0

    def would_fit(self, nbytes: int) -> bool:
        """Whether a message of ``nbytes`` fits in the free space right now."""
        return self._queued_bytes + nbytes <= self.capacity_bytes

    def send(
        self, sender_pid: int, kind: str, payload: Any, framed: bool = False
    ) -> Message:
        """Frame and enqueue a message, charging virtual time.

        ``framed=True`` means the sender reused a prebuilt RPC frame
        template (cached gateway dispatch): header layout and framing
        metadata were precomputed, so the fixed per-message cost drops
        to ``ipc_framed_message_ns``.  Byte accounting is unchanged —
        the template saves framing *work*, not wire bytes.

        Raises :class:`ChannelFull` in two distinct situations that
        backpressure loops must tell apart: a message *larger than the
        ring buffer itself* can never fit no matter how much the receiver
        drains (``permanent=True``), whereas a message that merely finds
        the buffer momentarily full could be retried after a receive.
        """
        if self._closed:
            raise ChannelClosed(f"channel {self.name!r} is closed")
        nbytes = payload_nbytes(payload)
        if nbytes > self.capacity_bytes:
            raise ChannelFull(
                f"message of {nbytes} bytes exceeds channel {self.name!r} "
                f"capacity ({self.capacity_bytes} bytes); it can never be "
                "delivered — do not retry",
                permanent=True,
            )
        faults = self.faults
        verdict = (
            faults.channel_action(self, kind, nbytes)
            if faults.enabled else None
        )
        if verdict is FaultKind.CHANNEL_STALL:
            # Injected transient fullness: the sender's backoff loop is
            # expected to retry (the queue itself still has room).
            raise ChannelFull(
                f"channel {self.name!r} transiently full (injected stall)"
            )
        if self._queued_bytes + nbytes > self.capacity_bytes:
            raise ChannelFull(
                f"channel {self.name!r} over capacity: "
                f"{self._queued_bytes + nbytes} > {self.capacity_bytes}"
            )
        message = Message(
            seq=next(self._seq),
            sender_pid=sender_pid,
            kind=kind,
            payload=payload,
            nbytes=nbytes,
        )
        if verdict is not FaultKind.IPC_DROP:
            # A dropped message is charged and accounted like any other
            # send (the sender did the work) but never reaches the queue.
            self._queue.append(message)
            self._queued_bytes += nbytes
            if (
                verdict is FaultKind.IPC_DUPLICATE
                and self._queued_bytes + nbytes <= self.capacity_bytes
            ):
                duplicate = Message(
                    seq=next(self._seq),
                    sender_pid=sender_pid,
                    kind=kind,
                    payload=payload,
                    nbytes=nbytes,
                )
                self._queue.append(duplicate)
                self._queued_bytes += nbytes
            elif verdict is FaultKind.IPC_REORDER and len(self._queue) >= 2:
                last = self._queue.pop()
                previous = self._queue.pop()
                self._queue.append(last)
                self._queue.append(previous)
        self.sent_messages += 1
        self.sent_bytes += nbytes
        cost = self._clock.cost_model
        message_ns = cost.message_cost(framed)
        tracer = self.tracer
        if tracer.enabled:
            # Split the single charge so the rollup separates message
            # framing (ipc) from payload serialization; the sum is
            # identical to the untraced advance.
            with tracer.span("ipc_send", category="ipc", pid=sender_pid,
                             channel=self.name, kind=kind, bytes=nbytes,
                             framed=framed):
                self._clock.advance(message_ns)
            with tracer.span("serialize", category="serialize",
                             pid=sender_pid, channel=self.name, kind=kind,
                             bytes=nbytes):
                self._clock.advance(cost.serialize_cost(nbytes))
        else:
            self._clock.advance(
                message_ns + cost.serialize_cost(nbytes)
            )
        self._accounting.record_message(nbytes, framed=framed)
        return message

    def receive(self) -> Message:
        """Dequeue the next message (futex hand-off is immediate)."""
        if self._closed:
            raise ChannelClosed(f"channel {self.name!r} is closed")
        if not self._queue:
            raise ChannelClosed(
                f"channel {self.name!r} has no pending message "
                "(cooperative receive would deadlock)"
            )
        message = self._queue.popleft()
        self._queued_bytes -= message.nbytes
        return message

    def try_receive(self) -> Optional[Message]:
        if self._closed or not self._queue:
            return None
        return self.receive()


class ChannelPair:
    """A bidirectional link: request channel + response channel."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        accounting: IpcAccounting,
        capacity_bytes: int = DEFAULT_CHANNEL_CAPACITY,
        tracer: Optional[Any] = None,
        faults: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.request = Channel(
            f"{name}.req", clock, accounting, capacity_bytes, tracer=tracer,
            faults=faults,
        )
        self.response = Channel(
            f"{name}.rsp", clock, accounting, capacity_bytes, tracer=tracer,
            faults=faults,
        )

    def close(self) -> None:
        self.request.close()
        self.response.close()
