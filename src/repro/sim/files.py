"""Simulated file system — the ``FILE`` storage class of Fig. 8.

A flat path → file map shared by every process of a simulated machine.
Framework APIs reach it through their execution context, which issues the
corresponding syscalls (``openat``/``read``/``write``/...) against the
calling process's filter first; the filesystem itself only stores payloads
and records an access log that the dynamic analysis consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import FileNotFoundInSim
from repro.sim.memory import payload_nbytes


@dataclass
class SimFile:
    """One file: a payload plus bookkeeping."""

    path: str
    payload: Any = None
    nbytes: int = 0
    version: int = 0  # bumped to 1 on the first write

    def update(self, payload: Any) -> None:
        self.payload = payload
        self.nbytes = payload_nbytes(payload)
        self.version += 1


@dataclass(frozen=True)
class FileAccess:
    """One read or write recorded in the access log."""

    pid: int
    path: str
    mode: str  # "read" | "write" | "unlink"
    nbytes: int
    seq: int


class SimFileSystem:
    """A machine-wide simulated filesystem."""

    def __init__(self) -> None:
        self._files: Dict[str, SimFile] = {}
        self._log: List[FileAccess] = []
        self._seq = itertools.count()
        self._tmp_counter = itertools.count()

    # ------------------------------------------------------------------
    # File operations
    # ------------------------------------------------------------------

    def write_file(self, path: str, payload: Any, pid: int = 0) -> SimFile:
        entry = self._files.get(path)
        if entry is None:
            entry = SimFile(path=path)
            self._files[path] = entry
        entry.update(payload)
        self._log.append(
            FileAccess(pid=pid, path=path, mode="write", nbytes=entry.nbytes,
                       seq=next(self._seq))
        )
        return entry

    def read_file(self, path: str, pid: int = 0) -> Any:
        entry = self._files.get(path)
        if entry is None:
            raise FileNotFoundInSim(f"no such file: {path}")
        self._log.append(
            FileAccess(pid=pid, path=path, mode="read", nbytes=entry.nbytes,
                       seq=next(self._seq))
        )
        return entry.payload

    def stat(self, path: str) -> SimFile:
        entry = self._files.get(path)
        if entry is None:
            raise FileNotFoundInSim(f"no such file: {path}")
        return entry

    def exists(self, path: str) -> bool:
        return path in self._files

    def unlink(self, path: str, pid: int = 0) -> None:
        entry = self._files.pop(path, None)
        if entry is None:
            raise FileNotFoundInSim(f"no such file: {path}")
        self._log.append(
            FileAccess(pid=pid, path=path, mode="unlink", nbytes=entry.nbytes,
                       seq=next(self._seq))
        )

    def listdir(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    def files(self) -> Iterator[SimFile]:
        return iter(list(self._files.values()))

    def tempfile(self, suffix: str = ".tmp") -> str:
        """Reserve a unique temporary path (used by copy-via-file APIs)."""
        return f"/tmp/sim-{next(self._tmp_counter)}{suffix}"

    # ------------------------------------------------------------------
    # Access log (consumed by dynamic analysis)
    # ------------------------------------------------------------------

    @property
    def access_log(self) -> List[FileAccess]:
        return list(self._log)

    def accesses_for(self, path: str) -> List[FileAccess]:
        return [a for a in self._log if a.path == path]

    def clear_log(self) -> None:
        self._log.clear()

    @property
    def total_bytes(self) -> int:
        return sum(f.nbytes for f in self._files.values())

    def snapshot_paths(self) -> Dict[str, int]:
        """Path → version map, used by tests to assert what changed."""
        return {path: f.version for path, f in self._files.items()}
