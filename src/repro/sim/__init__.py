"""Simulated OS substrate.

This subpackage stands in for the native mechanisms FreePart uses on
Linux: processes, page permissions (``mprotect``), seccomp-BPF syscall
filters, shared-memory IPC, the filesystem, devices (camera/network), and
the GUI subsystem.  See DESIGN.md §2 for the substitution argument.
"""

from repro.sim.clock import CostModel, Stopwatch, VirtualClock
from repro.sim.devices import Camera, DeviceBoard, Network
from repro.sim.files import SimFileSystem
from repro.sim.filters import FilterSpec, SyscallFilter, permissive_filter
from repro.sim.gui import GuiSubsystem
from repro.sim.ipc import Channel, ChannelPair, IpcAccounting, Message
from repro.sim.kernel import SimKernel
from repro.sim.memory import AddressSpace, Buffer, MemoryLayout, Permission
from repro.sim.process import ProcessState, SimProcess
from repro.sim.syscalls import SYSCALL_TABLE, Syscall, lookup

__all__ = [
    "AddressSpace",
    "Buffer",
    "Camera",
    "Channel",
    "ChannelPair",
    "CostModel",
    "DeviceBoard",
    "FilterSpec",
    "GuiSubsystem",
    "IpcAccounting",
    "MemoryLayout",
    "Message",
    "Network",
    "Permission",
    "ProcessState",
    "SYSCALL_TABLE",
    "SimFileSystem",
    "SimKernel",
    "SimProcess",
    "Stopwatch",
    "Syscall",
    "SyscallFilter",
    "VirtualClock",
    "lookup",
    "permissive_filter",
]
