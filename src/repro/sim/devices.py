"""Simulated devices — the ``DEV`` storage class of Fig. 8.

Two devices matter for the paper's workloads:

* a **camera** producing image frames (the facial-recognition and drone
  examples fetch frames in a loop), and
* a **network** endpoint, used both legitimately (sending detection
  results to a server, downloading datasets) and by attacks (exfiltrating
  stolen data).  The network records every outbound message so the
  security analysis of Section 5.3 can check what actually left the
  machine.

Each device has a well-known file descriptor so the fd-argument checks of
the syscall filter (``ioctl``/``connect``/``select`` restricted to
designated fds) have something concrete to verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import DeviceError

CAMERA_FD = 10
NETWORK_FD = 20
GUI_SOCKET_FD = 30

FrameSource = Callable[[int], Optional[np.ndarray]]


def _default_frame_source(index: int) -> Optional[np.ndarray]:
    """Deterministic grey-gradient frames, 64x64 RGB."""
    rng = np.random.default_rng(1000 + index)
    return rng.integers(0, 256, size=(64, 64, 3), dtype=np.uint8)


class Camera:
    """A frame-producing capture device."""

    def __init__(
        self,
        frame_source: FrameSource = _default_frame_source,
        frame_limit: Optional[int] = None,
        fd: int = CAMERA_FD,
    ) -> None:
        self.fd = fd
        self._frame_source = frame_source
        self._frame_limit = frame_limit
        self._index = 0
        self.frames_read = 0
        self._opened = False

    def open(self) -> int:
        self._opened = True
        return self.fd

    @property
    def opened(self) -> bool:
        return self._opened

    def read_frame(self) -> Optional[np.ndarray]:
        """Return the next frame, or ``None`` when the stream ends."""
        if not self._opened:
            raise DeviceError("camera is not opened")
        if self._frame_limit is not None and self._index >= self._frame_limit:
            return None
        frame = self._frame_source(self._index)
        if frame is None:
            return None
        self._index += 1
        self.frames_read += 1
        return frame

    def rewind(self) -> None:
        self._index = 0


@dataclass(frozen=True)
class NetworkMessage:
    """One outbound message recorded by the simulated network."""

    pid: int
    destination: str
    payload: Any
    nbytes: int


class Network:
    """A network endpoint with an outbound log and canned inbound data."""

    def __init__(self, fd: int = NETWORK_FD) -> None:
        self.fd = fd
        self._outbound: List[NetworkMessage] = []
        self._remote_content: Dict[str, Any] = {}
        self._connected_pids: set = set()

    def host_content(self, url: str, payload: Any) -> None:
        """Make ``payload`` downloadable at ``url``."""
        self._remote_content[url] = payload

    def connect(self, pid: int, destination: str = "server") -> int:
        self._connected_pids.add(pid)
        return self.fd

    def is_connected(self, pid: int) -> bool:
        return pid in self._connected_pids

    def send(self, pid: int, destination: str, payload: Any) -> NetworkMessage:
        from repro.sim.memory import payload_nbytes

        message = NetworkMessage(
            pid=pid,
            destination=destination,
            payload=payload,
            nbytes=payload_nbytes(payload),
        )
        self._outbound.append(message)
        return message

    def download(self, url: str) -> Any:
        try:
            return self._remote_content[url]
        except KeyError:
            raise DeviceError(f"no remote content hosted at {url!r}") from None

    @property
    def outbound(self) -> List[NetworkMessage]:
        return list(self._outbound)

    def outbound_to(self, destination: str) -> List[NetworkMessage]:
        return [m for m in self._outbound if m.destination == destination]

    def clear(self) -> None:
        self._outbound.clear()


@dataclass
class DeviceBoard:
    """All devices of one simulated machine."""

    camera: Camera = field(default_factory=Camera)
    network: Network = field(default_factory=Network)

    def fd_of(self, device: str) -> int:
        if device == "camera":
            return self.camera.fd
        if device == "network":
            return self.network.fd
        if device == "gui":
            return GUI_SOCKET_FD
        raise DeviceError(f"unknown device {device!r}")
