"""Deterministic virtual clock and cost model.

All performance numbers reported by the reproduction come from this clock,
not from wall time.  Every simulated operation (API compute, syscall entry,
IPC message, byte copied, mprotect call, process spawn) charges a fixed
cost in virtual nanoseconds, making the benchmark results exactly
reproducible across machines.

The constants in :class:`CostModel` are calibrated so that the *relative*
quantities the paper reports emerge from the simulation: ~3.7% average
overhead with lazy data copy, ~10% without, and the 1.4x jump in Fig. 4
when the two hot-loop APIs are split into different partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs for simulated operations, in nanoseconds.

    The defaults model a commodity desktop: a syscall costs on the order
    of a microsecond, an IPC round trip a few microseconds, and memory
    copies run at a few GiB/s.
    """

    syscall_ns: int = 700
    syscall_filter_check_ns: int = 40
    ipc_message_ns: int = 5_200
    #: Per-message cost when the sender reuses a prebuilt RPC frame
    #: template (cached gateway dispatch): header layout, channel
    #: selection, and framing metadata are precomputed, so only the
    #: enqueue + futex wake remain.
    ipc_framed_message_ns: int = 4_200
    copy_ns_per_byte: float = 0.5
    serialize_ns_per_byte: float = 0.08
    mprotect_ns: int = 1_200
    #: Remapping one page into another address space (zero-copy LDC):
    #: a page-table entry update instead of a byte copy.
    page_remap_ns: int = 250
    process_spawn_ns: int = 2_500_000
    process_restart_ns: int = 3_500_000
    page_fault_ns: int = 900
    checkpoint_ns_per_byte: float = 0.30

    def copy_cost(self, nbytes: int) -> int:
        """Cost of moving ``nbytes`` between two address spaces."""
        return int(self.copy_ns_per_byte * nbytes)

    def serialize_cost(self, nbytes: int) -> int:
        """Cost of serializing ``nbytes`` into an IPC message."""
        return int(self.serialize_ns_per_byte * nbytes)

    def message_cost(self, framed: bool) -> int:
        """Fixed per-message cost, discounted for template-framed sends."""
        return self.ipc_framed_message_ns if framed else self.ipc_message_ns

    def remap_cost(self, npages: int) -> int:
        """Cost of remapping ``npages`` shared pages (zero-copy transfer)."""
        return int(self.page_remap_ns * npages)


@dataclass
class VirtualClock:
    """A monotonically advancing virtual clock.

    The clock only moves when simulated work is charged to it, so two runs
    of the same workload always report identical timings.
    """

    cost_model: CostModel = field(default_factory=CostModel)
    _now_ns: int = 0

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds since simulation start."""
        return self._now_ns

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ns / NS_PER_MS

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds."""
        return self._now_ns / NS_PER_SEC

    def advance(self, ns: int) -> int:
        """Charge ``ns`` nanoseconds of work and return the new time."""
        if ns < 0:
            raise ValueError(f"cannot advance the clock backwards ({ns} ns)")
        self._now_ns += int(ns)
        return self._now_ns

    def reset(self) -> None:
        """Rewind the clock to zero (used between benchmark repetitions)."""
        self._now_ns = 0


@dataclass
class Stopwatch:
    """Measures a span of virtual time on a :class:`VirtualClock`."""

    clock: VirtualClock
    _start_ns: int = 0
    _elapsed_ns: int = 0
    _running: bool = False

    def start(self) -> "Stopwatch":
        self._start_ns = self.clock.now_ns
        self._running = True
        return self

    def stop(self) -> int:
        """Stop the stopwatch and return the elapsed nanoseconds."""
        if self._running:
            self._elapsed_ns = self.clock.now_ns - self._start_ns
            self._running = False
        return self._elapsed_ns

    @property
    def elapsed_ns(self) -> int:
        if self._running:
            return self.clock.now_ns - self._start_ns
        return self._elapsed_ns

    @property
    def elapsed_seconds(self) -> float:
        return self.elapsed_ns / NS_PER_SEC

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
