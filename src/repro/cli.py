"""Command-line interface: drive the reproduction's experiments.

::

    python -m repro apps                         # Table 6 roster
    python -m repro categorize opencv            # hybrid-analysis verdicts
    python -m repro syscalls                     # Table 7 allowlists
    python -m repro overhead --samples 1,8,16    # Fig. 13 rows
    python -m repro attack CVE-2017-12597        # one exploit, both modes
    python -m repro motivating --technique none  # Table 1 row
    python -m repro studies                      # Table 3 + Fig. 7
    python -m repro serve-bench --tenants 8      # serving throughput JSON
    python -m repro loadgen --profile burst      # open-loop traffic replay
    python -m repro check examples/              # static partition linter
    python -m repro trace drone --out trace.json # Chrome-trace span export
    python -m repro chaos 8 --seed 11 --campaign 50   # fault injection
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


class CliUsageError(Exception):
    """Bad command-line input: reported as a usage message, exit 2."""


def _cmd_apps(args: argparse.Namespace) -> int:
    from repro.apps.suite import SAMPLE_IDS, make_app
    from repro.bench.tables import render_table
    from repro.core.apitypes import APIType

    rows = []
    for sample_id in SAMPLE_IDS:
        app = make_app(sample_id)
        counts = app.schedule_counts()

        def cell(api_type):
            got = counts.get(api_type)
            return f"{got.unique}/{got.total}" if got else "0/0"

        rows.append([
            sample_id, app.spec.name, app.spec.main_framework,
            cell(APIType.LOADING), cell(APIType.PROCESSING),
            cell(APIType.VISUALIZING), cell(APIType.STORING),
            app.spec.description,
        ])
    print(render_table(
        "Evaluation applications (Table 6)",
        ["id", "name", "framework", "load", "proc", "vis", "store",
         "description"],
        rows,
    ))
    return 0


def _cmd_categorize(args: argparse.Namespace) -> int:
    from repro.bench.tables import render_table
    from repro.core.hybrid import HybridAnalyzer
    from repro.frameworks.registry import get_framework

    framework = get_framework(args.framework)
    categorization = HybridAnalyzer().categorize_framework(framework)
    if args.verbose:
        rows = [
            [e.qualname, e.api_type.value, e.method,
             "neutral" if e.neutral else ""]
            for e in categorization.entries.values()
        ]
        print(render_table(
            f"Hybrid categorization of {framework.name}",
            ["API", "type", "method", ""],
            rows,
        ))
    counts = categorization.counts_by_type()
    summary = [[t.value, n] for t, n in counts.items() if n]
    summary.append(["accuracy", f"{categorization.accuracy() * 100:.1f}%"])
    print(render_table(
        f"{framework.name}: {len(categorization)} APIs categorized",
        ["type", "count"], summary,
    ))
    return 0


def _cmd_syscalls(args: argparse.Namespace) -> int:
    from repro.core.policy import policy_report

    report = policy_report()
    for row in report.format_rows():
        print(row)
    return 0


def _parse_samples(text: Optional[str]) -> Sequence[int]:
    from repro.apps.suite import SAMPLE_IDS

    if not text:
        return SAMPLE_IDS
    try:
        return [int(part) for part in text.split(",") if part]
    except ValueError:
        raise CliUsageError(
            f"--samples must be comma-separated integers, got {text!r}"
        ) from None


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.apps.base import Workload
    from repro.bench.runner import average_overhead, overhead_sweep
    from repro.bench.tables import render_table
    from repro.core.runtime import FreePartConfig

    workload = Workload(items=args.items, image_size=args.image_size)
    config = FreePartConfig(ldc=not args.no_ldc)
    rows = overhead_sweep(_parse_samples(args.samples), workload=workload,
                          config=config)
    table = [[r.sample_id, r.app_name, f"{r.overhead_percent:.2f}%"]
             for r in rows]
    table.append(["-", "AVERAGE", f"{average_overhead(rows):.2f}%"])
    print(render_table(
        "FreePart runtime overhead (Fig. 13)"
        + (" — lazy data copy DISABLED" if args.no_ldc else ""),
        ["id", "application", "overhead"], table,
    ))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks.scenarios import run_attack
    from repro.bench.tables import render_table

    techniques = (
        [args.technique] if args.technique else ["none", "freepart"]
    )
    rows = []
    for technique in techniques:
        result = run_attack(args.cve, technique=technique,
                            sample_id=args.sample)
        rows.append([
            technique, result.app_name, result.vuln_type.value,
            "prevented" if result.prevented else "SUCCEEDED",
            "/".join(result.blocked_by) or "-",
        ])
    print(render_table(
        f"Attack: {args.cve}",
        ["technique", "app", "class", "outcome", "blocked by"],
        rows,
    ))
    return 0


def _cmd_motivating(args: argparse.Namespace) -> int:
    from repro.attacks.scenarios import run_motivating_example
    from repro.bench.tables import render_table

    verdict = run_motivating_example(args.technique)
    rows = [
        [label, "prevented" if result.prevented else "FAILED",
         "/".join(result.blocked_by) or "-"]
        for label, result in verdict.attacks.items()
    ]
    print(render_table(
        f"Motivating example under {args.technique!r} (Table 1 row)",
        ["attack", "outcome", "blocked by"], rows,
    ))
    return 0


def _cmd_studies(args: argparse.Namespace) -> int:
    from repro.analysis import (
        build_cve_corpus,
        build_usage_corpus,
        counts_by_api_type,
        framework_totals,
        table3_totals,
    )
    from repro.bench.tables import render_table
    from repro.core.apitypes import APIType

    cves = build_cve_corpus()
    print(render_table(
        "Study 2 — 241 CVEs",
        ["framework", "CVEs"],
        sorted(framework_totals(cves).items(), key=lambda kv: -kv[1]),
    ))
    print()
    print(render_table(
        "Study 2 — CVEs by pipeline task",
        ["task", "CVEs"],
        [[t.value, n] for t, n in counts_by_api_type(cves).items() if n],
    ))
    print()
    totals = table3_totals(build_usage_corpus())
    print(render_table(
        "Study 1 — vulnerable APIs per app (Table 3 totals: avg/max/distinct)",
        ["type", "avg", "max", "distinct"],
        [[t.value, f"{c.average:.1f}", c.maximum, c.total_distinct]
         for t, c in totals.items()],
    ))
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from repro.serve.bench import best_pooled, run_serving_benchmark

    for flag, value in (("--tenants", args.tenants),
                        ("--requests", args.requests),
                        ("--pool-size", args.pool_size),
                        ("--image-size", args.image_size)):
        if value < 1:
            print(f"repro serve-bench: error: {flag} must be >= 1, "
                  f"got {value}", file=sys.stderr)
            return 2
    batching_modes = {
        "on": (True,), "off": (False,), "both": (False, True),
    }[args.batching]
    result = run_serving_benchmark(
        tenants=args.tenants,
        requests_per_tenant=args.requests,
        pool_sizes=(args.pool_size,),
        batching_modes=batching_modes,
        image_size=args.image_size,
    )
    result["best_pooled"] = best_pooled(result)["name"]
    print(json.dumps(result, indent=2))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.bench.tables import render_table
    from repro.serve.loadbench import (
        BUDGET_NS,
        canonical_profile,
        run_cluster_profile,
        run_profile,
    )
    from repro.serve.loadgen import PROFILE_NAMES, generate_schedule

    if args.profile not in PROFILE_NAMES:
        raise CliUsageError(
            f"unknown --profile {args.profile!r} "
            f"(expected one of: {', '.join(PROFILE_NAMES)})"
        )
    for flag, value in (("--min-pool", args.min_pool),
                        ("--max-pool", args.max_pool),
                        ("--tenants", args.tenants),
                        ("--nodes", args.nodes)):
        if value < 1:
            raise CliUsageError(f"{flag} must be >= 1, got {value}")
    if args.max_pool < args.min_pool:
        raise CliUsageError(
            f"--max-pool ({args.max_pool}) must be >= --min-pool "
            f"({args.min_pool})"
        )
    if args.fault_rate < 0:
        raise CliUsageError(
            f"--fault-rate must be >= 0, got {args.fault_rate}"
        )
    if args.base_rps <= 0:
        raise CliUsageError(
            f"--base-rps must be > 0, got {args.base_rps}"
        )
    if args.duration_ms <= 0:
        raise CliUsageError(
            f"--duration-ms must be > 0, got {args.duration_ms}"
        )

    profile = canonical_profile(
        args.profile,
        base_rps=args.base_rps,
        duration_ns=int(args.duration_ms * 1e6),
    )
    schedule = generate_schedule(
        profile, seed=args.seed,
        tenants=args.tenants, zipf_alpha=args.zipf_alpha,
    )
    if args.schedule_only:
        payload = {"params": profile.to_dict(), **schedule.to_dict()}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.cluster:
        result = run_cluster_profile(
            args.profile, seed=args.seed, nodes=args.nodes,
            elastic=not args.fixed, fault_rate=args.fault_rate,
            schedule=schedule,
            pool_size=args.min_pool, max_pool=args.max_pool,
        )
    else:
        result = run_profile(
            args.profile, seed=args.seed, elastic=not args.fixed,
            fault_rate=args.fault_rate, schedule=schedule,
            pool_size=args.min_pool, max_pool=args.max_pool,
        )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    rows = [[key, result[key]] for key in (
        "offered", "admitted", "rejected", "shed",
        "served_ok", "served_failed", "slo_alerts",
    )]
    rows.append(["goodput", f"{result['goodput']:.3f}"])
    rows.append(["p99 ms", f"{result['p99_latency_ms']:.2f}"])
    rows.append(["pool size", result.get(
        "pool_size",
        "/".join(str(n["pool_size"])
                 for n in result.get("per_node", {}).values()),
    )])
    if not args.fixed:
        rows.append(["scale ups", result.get("scale_ups", 0)])
    if result["sheds_by_priority"]:
        rows.append(["sheds", ", ".join(
            f"{name}={count}"
            for name, count in result["sheds_by_priority"].items()
        )])
    mode = "elastic" if not args.fixed else "fixed"
    where = f"{args.nodes}-node cluster" if args.cluster else "1 node"
    print(render_table(
        f"Open-loop {args.profile} — {mode}, {where}, "
        f"{BUDGET_NS / 1e6:.0f} ms budget",
        ["fact", "value"],
        rows,
        note=f"schedule {result['schedule_digest'][:16]} "
             f"seed={args.seed}",
    ))
    return 0


def _trace_app_target(args: argparse.Namespace):
    """Run one application under FreePart with tracing on."""
    from repro.apps.base import Workload, execute_app
    from repro.apps.suite import make_app
    from repro.attacks.scenarios import build_gateway
    from repro.core.runtime import FreePartConfig
    from repro.sim.kernel import SimKernel

    if args.target in ("drone", "drone-tracker"):
        from repro.apps.drone import DroneApp

        app = DroneApp()
    else:
        app = make_app(int(args.target))
    kernel = SimKernel()
    kernel.enable_tracing()
    config = FreePartConfig(trace=True, annotations=tuple(app.annotations))
    gateway = build_gateway("freepart", kernel, app=app, config=config)
    workload = Workload(items=args.items, image_size=args.image_size)
    execute_app(app, gateway, workload)
    return kernel


def _trace_cve_target(args: argparse.Namespace):
    """Replay one CVE's exploit under FreePart with tracing on."""
    from repro.attacks.scenarios import run_attack
    from repro.sim.kernel import SimKernel

    kernel = SimKernel()
    kernel.enable_tracing()
    run_attack(args.target, technique="freepart", kernel=kernel)
    return kernel


def _trace_serve_target(args: argparse.Namespace):
    """Run a small multi-tenant serving workload with tracing on.

    Returns the (shut-down) server; its kernel holds the trace, the
    series registry, and the per-request SLO events.
    """
    import numpy as np

    from repro.core.runtime import FreePartConfig
    from repro.serve.bench import standard_pipeline
    from repro.serve.server import PipelineServer
    from repro.sim.kernel import SimKernel

    server = PipelineServer(
        kernel=SimKernel(),
        config=FreePartConfig(trace=True),
        pool_size=2,
        batching=True,
    )
    rng = np.random.default_rng(0)
    for t in range(2):
        for r in range(args.items):
            path = f"/data/tenant-{t}/in-{r}.png"
            server.kernel.fs.write_file(
                path, rng.normal(size=(args.image_size, args.image_size))
            )
            server.submit(
                f"tenant-{t}",
                standard_pipeline(path, f"/out/tenant-{t}/out-{r}.png"),
            )
    server.drain()
    server.shutdown()
    return server


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import render_rollup, render_tree, to_chrome_trace

    if args.target == "serve-bench":
        kernel = _trace_serve_target(args).kernel
    elif args.target.upper().startswith("CVE-"):
        kernel = _trace_cve_target(args)
    elif args.target.isdigit() or args.target in ("drone", "drone-tracker"):
        kernel = _trace_app_target(args)
    else:
        raise CliUsageError(
            f"unknown trace target {args.target!r} (expected a sample id, "
            "'drone', 'serve-bench', or a CVE id)"
        )
    tracer = kernel.tracer
    total_ns = kernel.clock.now_ns
    if args.out:
        payload = to_chrome_trace(tracer)
        with open(args.out, "w") as fh:
            fh.write(json.dumps(payload, indent=2, sort_keys=True))
            fh.write("\n")
        print(
            f"wrote {len(payload['traceEvents'])} trace events to "
            f"{args.out} (load at ui.perfetto.dev)"
        )
    if args.tree:
        print(render_tree(tracer))
    if args.rollup or not (args.out or args.tree):
        print(render_rollup(tracer, total_ns))
    return 0


def _report_cluster_target(args: argparse.Namespace):
    """Run a clean sharded multi-node serving workload with tracing on."""
    import numpy as np

    from repro.cluster.kernel import ClusterKernel
    from repro.cluster.serve import ClusterServer
    from repro.cluster.sharding import DirectoryPartitioner
    from repro.core.runtime import FreePartConfig
    from repro.serve.bench import standard_pipeline

    cluster = ClusterKernel(nodes=args.nodes)
    cluster.enable_tracing()
    server = ClusterServer(
        cluster=cluster,
        config=FreePartConfig(trace=True),
        pool_size=2,
        batching=True,
    )
    tenants = 2 * args.nodes
    rng = np.random.default_rng(0)
    paths = []
    payloads = {}
    for tenant in range(tenants):
        for index in range(args.items):
            path = f"/data/tenant-{tenant}/in-{index}.png"
            paths.append(path)
            payloads[path] = rng.normal(
                size=(args.image_size, args.image_size)
            )
    manifest = DirectoryPartitioner().split(paths)
    server.load_dataset(manifest, payloads)
    for tenant in range(tenants):
        server.pin_tenant_to_item(
            f"tenant-{tenant}", f"/data/tenant-{tenant}/in-0.png"
        )
    for tenant in range(tenants):
        for index in range(args.items):
            server.submit(
                f"tenant-{tenant}",
                standard_pipeline(
                    f"/data/tenant-{tenant}/in-{index}.png",
                    f"/out/tenant-{tenant}/out-{index}.png",
                ),
            )
    server.drain()
    server.shutdown()
    return server


def _report_chaos_extra(args: argparse.Namespace):
    """SLO-evaluate every faulted schedule of a small chaos sweep."""
    from repro.faults.campaign import ChaosSettings, run_target
    from repro.faults.plan import FaultPlan, FaultRates
    from repro.obs.slo import evaluate_slos

    settings = ChaosSettings(
        target=args.chaos_target,
        seed=args.seed,
        campaign=args.campaign,
        fault_rate=args.fault_rate,
        items=args.items,
        image_size=args.image_size,
        nodes=args.nodes,
    )
    rates = FaultRates.scaled(settings.fault_rate)
    schedules = []
    alerting = 0
    for index in range(settings.campaign):
        seed = settings.schedule_seed(index)
        plan = FaultPlan(seed, rates)
        outcome = run_target(settings.target, settings, plan)
        results = evaluate_slos(outcome.request_events)
        alert_count = sum(len(result.alerts) for result in results)
        if alert_count:
            alerting += 1
        schedules.append({
            "index": index,
            "seed": seed,
            "ok": outcome.ok,
            "requests": len(outcome.request_events),
            "errors": sum(
                1 for event in outcome.request_events if not event.ok
            ),
            "alert_count": alert_count,
            "alerts": [
                alert.to_dict()
                for result in results
                for alert in result.alerts
            ],
        })
    return {
        "target": settings.target,
        "seed": settings.seed,
        "campaign": settings.campaign,
        "fault_rate": settings.fault_rate,
        "alerting_schedules": alerting,
        "schedules": schedules,
    }


def _overload_extra(servers):
    """``(label, PipelineServer)`` pairs -> the report's overload facts.

    Surfaces the serving layer's pressure counters — brownout sheds,
    admission rejections, transient-ChannelFull backoff retries — and,
    when the elastic controllers are armed, their end-of-run posture.
    """
    rows = []
    for label, server in servers:
        stats = server.stats()
        admission = stats["admission"]
        row = {
            "node": label,
            "pool_size": stats["pool_size"],
            "shed": admission["shed"],
            "rejected": (
                admission["rejected_capacity"]
                + admission["rejected_tenant_budget"]
            ),
            "timed_out": admission["timed_out"],
            "send_backoff_retries": stats["send_backoff_retries"],
            "degraded_responses": stats["degraded_responses"],
        }
        if server.autoscaler is not None:
            row["scale_ups"] = server.autoscaler.scale_ups
            row["scale_downs"] = server.autoscaler.scale_downs
        if server.brownout is not None:
            row["brownout_floor"] = server.brownout.floor
        rows.append(row)
    return {"nodes": rows}


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        build_report,
        render_report_json,
        render_report_markdown,
    )

    for flag, value in (("--items", args.items),
                        ("--image-size", args.image_size),
                        ("--nodes", args.nodes),
                        ("--campaign", args.campaign)):
        if value < 1:
            raise CliUsageError(f"{flag} must be >= 1, got {value}")
    if args.fault_rate < 0:
        raise CliUsageError(
            f"--fault-rate must be >= 0, got {args.fault_rate}"
        )

    extra = None
    if args.target == "serve-bench":
        server = _trace_serve_target(args)
        kernel = server.kernel
        nodes = [("node0", kernel.tracer, kernel.clock.now_ns)]
        events = list(server.events)
        series = kernel.series
        extra = {"overload": _overload_extra([("node0", server)])}
        mode = "serve"
    elif args.target == "cluster-bench":
        server = _report_cluster_target(args)
        cluster = server.cluster
        nodes = [
            (f"node{node.index}", node.kernel.tracer,
             node.kernel.clock.now_ns)
            for node in cluster.nodes
        ]
        events = [
            event
            for node_server in server.servers.values()
            for event in node_server.events
        ]
        from repro.obs.timeseries import TimeSeriesRegistry

        series = TimeSeriesRegistry.merged(
            node.kernel.series for node in cluster.nodes
        )
        extra = {"overload": _overload_extra(
            (f"node{index}", node_server)
            for index, node_server in sorted(server.servers.items())
        )}
        mode = "cluster"
    elif args.target == "chaos":
        # Clean traced baseline of the chaos target for the report body;
        # the faulted sweep's per-schedule SLO verdicts ride in `extra`.
        if args.chaos_target == "serve-bench":
            server = _trace_serve_target(args)
            kernel = server.kernel
            nodes = [("node0", kernel.tracer, kernel.clock.now_ns)]
            events = list(server.events)
            series = kernel.series
            overload = _overload_extra([("node0", server)])
        else:
            server = _report_cluster_target(args)
            cluster = server.cluster
            nodes = [
                (f"node{node.index}", node.kernel.tracer,
                 node.kernel.clock.now_ns)
                for node in cluster.nodes
            ]
            events = [
                event
                for node_server in server.servers.values()
                for event in node_server.events
            ]
            from repro.obs.timeseries import TimeSeriesRegistry

            series = TimeSeriesRegistry.merged(
                node.kernel.series for node in cluster.nodes
            )
            overload = _overload_extra(
                (f"node{index}", node_server)
                for index, node_server in sorted(server.servers.items())
            )
        extra = {
            "chaos": _report_chaos_extra(args),
            "overload": overload,
        }
        mode = "chaos"
    elif (args.target.isdigit()
          or args.target in ("drone", "drone-tracker")):
        kernel = _trace_app_target(args)
        nodes = [("node0", kernel.tracer, kernel.clock.now_ns)]
        events = []
        series = kernel.series
        mode = "app"
    else:
        raise CliUsageError(
            f"unknown report target {args.target!r} (expected a sample "
            "id, 'drone', 'serve-bench', 'cluster-bench', or 'chaos')"
        )

    report = build_report(
        args.target, mode, nodes=nodes, events=events, series=series,
        extra=extra,
    )
    payload = render_report_json(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote report JSON to {args.out}")
    if args.md:
        with open(args.md, "w", encoding="utf-8") as handle:
            handle.write(render_report_markdown(report))
        print(f"wrote report markdown to {args.md}")
    if not args.out and not args.md:
        print(payload, end="")
    alert_count = report["slo"]["alert_count"]
    if args.fail_on_alerts and alert_count > 0:
        print(
            f"repro report: {alert_count} burn-rate alert(s) fired",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.bench.tables import render_table
    from repro.faults.campaign import ChaosSettings, run_campaign

    for flag, value in (("--campaign", args.campaign),
                        ("--items", args.items),
                        ("--image-size", args.image_size)):
        if value < 1:
            raise CliUsageError(f"{flag} must be >= 1, got {value}")
    if args.fault_rate < 0:
        raise CliUsageError(
            f"--fault-rate must be >= 0, got {args.fault_rate}"
        )
    if args.nodes < 1:
        raise CliUsageError(f"--nodes must be >= 1, got {args.nodes}")
    if args.target == "loadgen":
        from repro.serve.loadgen import PROFILE_NAMES

        if args.profile not in PROFILE_NAMES:
            raise CliUsageError(
                f"unknown --profile {args.profile!r} "
                f"(expected one of: {', '.join(PROFILE_NAMES)})"
            )
    settings = ChaosSettings(
        target=args.target,
        seed=args.seed,
        campaign=args.campaign,
        fault_rate=args.fault_rate,
        items=args.items,
        image_size=args.image_size,
        nodes=args.nodes,
        profile=args.profile,
    )
    try:
        report = run_campaign(settings)
    except ValueError as exc:
        raise CliUsageError(str(exc)) from None
    if args.json:
        payload = report.to_dict()
        payload["digest"] = report.digest()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        rows = []
        for schedule in report.schedules:
            held = [name for name, ok in sorted(schedule.invariants.items())
                    if not ok]
            rows.append([
                schedule.index,
                sum(schedule.injected.values()),
                "ok" if schedule.ok else "failed-clean",
                "PASS" if schedule.passed else "FAIL:" + ",".join(held),
                schedule.restarts,
            ])
        print(render_table(
            f"Chaos campaign — {settings.target} seed={settings.seed} "
            f"rate={settings.fault_rate}",
            ["schedule", "faults", "run", "invariants", "restarts"],
            rows,
            note=f"{report.faults_injected} faults over "
                 f"{settings.campaign} schedules; "
                 f"digest {report.digest()[:16]}",
        ))
    return 0 if report.passed else 1


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.tables import render_table
    from repro.cluster.bench import run_cluster_benchmark

    for flag, value in (("--nodes", args.nodes),
                        ("--tenants", args.tenants),
                        ("--requests", args.requests),
                        ("--pool-size", args.pool_size),
                        ("--image-size", args.image_size)):
        if value < 1:
            raise CliUsageError(f"{flag} must be >= 1, got {value}")
    try:
        result = run_cluster_benchmark(
            nodes=args.nodes,
            tenants=args.tenants,
            requests_per_tenant=args.requests,
            pool_size=args.pool_size,
            partitioner=args.partitioner,
            image_size=args.image_size,
            failure=not args.no_failure,
        )
    except ValueError as exc:
        raise CliUsageError(str(exc)) from None
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    rows = [
        [
            config["name"],
            config["requests"],
            config["ok"],
            f"{config['goodput']:.3f}",
            f"{config['requests_per_second']:.1f}",
            config["node_failures"],
            config["shards_replaced"],
            config["cross_node_derefs"],
        ]
        for config in result["configs"]
    ]
    workload = result["workload"]
    print(render_table(
        f"Cluster scaling — {workload['partitioner']} partitioner, "
        f"{workload['shards']} shards",
        ["config", "requests", "ok", "goodput", "req/s",
         "node failures", "shards re-placed", "x-node derefs"],
        rows,
        note=f"scaling {result['scaling']}x vs 1 node; "
             f"manifest {workload['manifest_digest'][:16]}",
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.bench.perf import BENCH_NAMES, run_gate

    if args.tolerance < 0:
        raise CliUsageError(
            f"--tolerance must be >= 0, got {args.tolerance}"
        )
    which = BENCH_NAMES if args.which == "all" else (args.which,)
    if args.baseline is not None and not os.path.isdir(args.baseline):
        raise CliUsageError(
            f"--baseline directory does not exist: {args.baseline!r}"
        )
    try:
        payloads, regressions = run_gate(
            which,
            baseline_dir=args.baseline,
            out_dir=args.out,
            tolerance=args.tolerance,
        )
    except (ValueError, FileNotFoundError) as exc:
        raise CliUsageError(str(exc)) from None
    if args.json:
        combined = {p["bench"]: p for p in payloads}
        print(json.dumps(combined, indent=2, sort_keys=True))
    else:
        for payload in payloads:
            print(f"[{payload['bench']}]")
            for name, entry in sorted(payload["metrics"].items()):
                print(f"  {name} = {entry['value']} "
                      f"({entry['direction']} is better)")
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression.describe()}", file=sys.stderr)
        return 1
    if args.baseline is not None:
        print(f"perf gate passed ({len(which)} bench(es), "
              f"tolerance {args.tolerance:.0%})")
    return 0


def _check_app_targets(targets):
    """Resolve ``--app`` values to Application instances."""
    apps = []
    for target in targets:
        if target in ("drone", "drone-tracker"):
            from repro.apps.drone import DroneApp

            apps.append(DroneApp())
        elif target == "all":
            from repro.apps.suite import all_apps

            apps.extend(all_apps())
        elif target.isdigit():
            from repro.apps.suite import make_app

            apps.append(make_app(int(target)))
        else:
            raise CliUsageError(
                f"unknown --app target {target!r} (expected a sample id, "
                "'drone', or 'all')"
            )
    return apps


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.staticcheck import render_json, render_text, run_check
    from repro.staticcheck.parity import (
        check_trace_parity,
        merge_universes,
        universe_from_app,
        universe_from_paths,
    )
    from repro.staticcheck.privileges import (
        merge_privileges,
        privileges_for_app,
        render_minimal_pools,
    )

    if not args.paths and not args.app:
        raise CliUsageError(
            "nothing to check: give source paths and/or --app targets"
        )
    apps = _check_app_targets(args.app or [])
    try:
        result = run_check(args.paths, strict_pools=args.strict_pools)
    except FileNotFoundError as exc:
        raise CliUsageError(f"no such file or directory: {exc.args[0]}") \
            from None
    privileges = merge_privileges(
        [result.privileges]
        + [privileges_for_app(app) for app in apps]
    )

    if args.against_trace:
        try:
            with open(args.against_trace, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise CliUsageError(
                f"no such trace file: {args.against_trace!r}"
            ) from None
        except json.JSONDecodeError as exc:
            raise CliUsageError(
                f"not a Chrome trace JSON file: {args.against_trace!r} "
                f"({exc})"
            ) from None
        universe = merge_universes(
            [universe_from_paths(args.paths)]
            + [universe_from_app(app) for app in apps]
        )
        result.findings.extend(
            check_trace_parity(universe, payload, args.against_trace)
        )
        result.findings.sort(key=lambda finding: finding.sort_key())

    if args.emit_minimal_pools:
        # Machine-readable pools on stdout (pipe into a file and load
        # them as FreePartConfig.filter_overrides); findings still
        # drive the exit code but go to stderr so stdout stays JSON.
        print(render_minimal_pools(privileges))
        if result.findings:
            print(render_text(result), file=sys.stderr)
        return result.exit_code

    renderer = render_json if args.format == "json" else render_text
    print(renderer(result))
    return result.exit_code


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FreePart reproduction — experiment driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the 23 evaluation applications")

    p = sub.add_parser("categorize", help="hybrid-categorize a framework")
    p.add_argument("framework")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print every API's verdict")

    sub.add_parser("syscalls", help="Table 7 per-type allowlists")

    p = sub.add_parser("overhead", help="Fig. 13 overhead rows")
    p.add_argument("--samples", help="comma-separated sample ids (default all)")
    p.add_argument("--items", type=int, default=2)
    p.add_argument("--image-size", type=int, default=16)
    p.add_argument("--no-ldc", action="store_true",
                   help="disable lazy data copy (Section 5.2 ablation)")

    p = sub.add_parser("attack", help="run one CVE's exploit")
    p.add_argument("cve")
    p.add_argument("--technique",
                   help="one technique (default: none AND freepart)")
    p.add_argument("--sample", type=int, default=None)

    p = sub.add_parser("motivating",
                       help="the Section 3 attacks under one technique")
    p.add_argument("--technique", default="freepart")

    sub.add_parser("studies", help="Study 1 + Study 2 aggregates")

    p = sub.add_parser(
        "serve-bench",
        help="serving throughput: pooled+batched vs runtime-per-request",
    )
    p.add_argument("--tenants", type=int, default=8,
                   help="concurrent tenants (default 8)")
    p.add_argument("--requests", type=int, default=2,
                   help="requests per tenant (default 2)")
    p.add_argument("--pool-size", type=int, default=4,
                   help="agents per API type in the pooled config (default 4)")
    p.add_argument("--batching", choices=["on", "off", "both"],
                   default="both",
                   help="RPC batching mode(s) to measure (default both)")
    p.add_argument("--image-size", type=int, default=16)

    p = sub.add_parser(
        "loadgen",
        help="seeded open-loop traffic: replay a load profile against "
             "a fixed or autoscaled server (or cluster)",
    )
    p.add_argument("--profile", default="burst",
                   help="arrival profile: diurnal, burst, or flash "
                        "(default burst)")
    p.add_argument("--seed", type=int, default=42,
                   help="schedule seed (default 42)")
    p.add_argument("--base-rps", type=float, default=300.0,
                   help="baseline offered rate (default 300)")
    p.add_argument("--duration-ms", type=float, default=200.0,
                   help="schedule length in virtual ms (default 200)")
    p.add_argument("--tenants", type=int, default=60,
                   help="Zipf tenant population size (default 60)")
    p.add_argument("--zipf-alpha", type=float, default=0.5,
                   help="tenant popularity skew (default 0.5)")
    p.add_argument("--fixed", action="store_true",
                   help="disable the autoscaler and brownout controller "
                        "(static --min-pool lanes)")
    p.add_argument("--min-pool", type=int, default=2,
                   help="starting/minimum agents per API type (default 2)")
    p.add_argument("--max-pool", type=int, default=8,
                   help="autoscaler ceiling (default 8)")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="per-decision fault probability (default 0)")
    p.add_argument("--cluster", action="store_true",
                   help="replay against a multi-node cluster (tenants "
                        "hash across nodes; per-node autoscalers)")
    p.add_argument("--nodes", type=int, default=3,
                   help="cluster width with --cluster (default 3)")
    p.add_argument("--schedule-only", action="store_true",
                   help="print the schedule digest and counts without "
                        "replaying it")
    p.add_argument("--json", action="store_true",
                   help="print the run facts as JSON")

    p = sub.add_parser(
        "trace",
        help="span-trace one run; export Chrome trace JSON / rollup",
    )
    p.add_argument("target",
                   help="sample id, 'drone', 'serve-bench', or a CVE id")
    p.add_argument("--out", help="write Chrome trace-event JSON here")
    p.add_argument("--rollup", action="store_true",
                   help="print the per-mechanism virtual-time rollup")
    p.add_argument("--tree", action="store_true",
                   help="print the span tree")
    p.add_argument("--items", type=int, default=2)
    p.add_argument("--image-size", type=int, default=16)

    p = sub.add_parser(
        "report",
        help="unified run report: SLO verdicts, burn-rate alerts, "
             "critical path, verified rollup, top-k slowest",
    )
    p.add_argument("target",
                   help="sample id, 'drone', 'serve-bench', "
                        "'cluster-bench', or 'chaos'")
    p.add_argument("--out", help="write the report JSON artifact here")
    p.add_argument("--md", help="write the markdown rendering here")
    p.add_argument("--items", type=int, default=2)
    p.add_argument("--image-size", type=int, default=16)
    p.add_argument("--nodes", type=int, default=4,
                   help="cluster width for 'cluster-bench' (default 4)")
    p.add_argument("--seed", type=int, default=11,
                   help="chaos sweep seed (default 11)")
    p.add_argument("--campaign", type=int, default=5,
                   help="faulted schedules in the chaos sweep (default 5)")
    p.add_argument("--fault-rate", type=float, default=0.2,
                   help="chaos per-decision fault probability "
                        "(default 0.2 — high enough that some schedule "
                        "exhausts its retries and trips a burn-rate "
                        "alert)")
    p.add_argument("--chaos-target",
                   choices=["serve-bench", "cluster"],
                   default="serve-bench",
                   help="workload the 'chaos' report sweeps "
                        "(default serve-bench)")
    p.add_argument("--fail-on-alerts", action="store_true",
                   help="exit 1 if any burn-rate alert fired on the "
                        "report's top-level (clean) run")

    p = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign + recovery invariant checks",
    )
    p.add_argument("target",
                   help="sample id, 'drone', 'serve-bench', 'loadgen', "
                        "'cluster', or a CVE id")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (default 0)")
    p.add_argument("--campaign", type=int, default=20,
                   help="number of faulted schedules (default 20)")
    p.add_argument("--fault-rate", type=float, default=0.02,
                   help="per-decision fault probability (default 0.02)")
    p.add_argument("--items", type=int, default=2)
    p.add_argument("--image-size", type=int, default=16)
    p.add_argument("--nodes", type=int, default=3,
                   help="cluster width for the 'cluster' target "
                        "(default 3; other targets ignore it)")
    p.add_argument("--profile", default="burst",
                   help="load profile for the 'loadgen' target "
                        "(default burst; other targets ignore it)")
    p.add_argument("--json", action="store_true",
                   help="print the full campaign report as JSON")

    p = sub.add_parser(
        "cluster-bench",
        help="multi-node scaling: sharded serving at N nodes vs one, "
             "plus goodput under a node failure",
    )
    p.add_argument("--nodes", type=int, default=4,
                   help="cluster width for the scaled config (default 4)")
    p.add_argument("--tenants", type=int, default=8,
                   help="concurrent tenants (default 8)")
    p.add_argument("--requests", type=int, default=2,
                   help="requests per tenant (default 2)")
    p.add_argument("--pool-size", type=int, default=2,
                   help="agents per API type per node (default 2)")
    p.add_argument("--partitioner", default="directory",
                   help="dataset partitioner: 'directory', 'object[:N]', "
                        "or 'hash[:K]' (default directory)")
    p.add_argument("--image-size", type=int, default=16)
    p.add_argument("--no-failure", action="store_true",
                   help="skip the scripted single-node-failure config")
    p.add_argument("--json", action="store_true",
                   help="print the full result as JSON")

    p = sub.add_parser(
        "bench",
        help="perf trajectory: measure BENCH_*.json payloads and gate "
             "against committed baselines",
    )
    p.add_argument("--which",
                   choices=["table9", "serve", "ldc", "cluster",
                            "staticcheck", "obs_report", "loadgen",
                            "all"],
                   default="all",
                   help="which bench payload(s) to measure (default all)")
    p.add_argument("--json", action="store_true",
                   help="print the payload(s) as JSON")
    p.add_argument("--out",
                   help="write BENCH_<which>.json file(s) into this directory")
    p.add_argument("--baseline",
                   help="directory holding baseline BENCH_*.json files; "
                        "exit 1 on >tolerance regression")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="relative regression tolerance (default 0.05)")

    p = sub.add_parser(
        "check",
        help="static partition linter over host-program source",
    )
    p.add_argument("paths", nargs="*",
                   help="files or directories to check")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="report format (default text)")
    p.add_argument("--app", action="append", metavar="TARGET",
                   help="also analyze a catalog app's declarative "
                        "schedule (a sample id, 'drone', or 'all'; "
                        "repeatable)")
    p.add_argument("--strict-pools", action="store_true",
                   help="enable advisory over-privileged-pool findings")
    p.add_argument("--emit-minimal-pools", action="store_true",
                   help="print the inferred minimal per-agent filter "
                        "specs as JSON instead of the findings report")
    p.add_argument("--against-trace", metavar="TRACE_JSON",
                   help="parity-gate a recorded Chrome trace: fail if "
                        "the runtime touched any API, syscall, or "
                        "partition edge static analysis deemed "
                        "unreachable")
    return parser


_HANDLERS = {
    "apps": _cmd_apps,
    "categorize": _cmd_categorize,
    "syscalls": _cmd_syscalls,
    "overhead": _cmd_overhead,
    "attack": _cmd_attack,
    "motivating": _cmd_motivating,
    "studies": _cmd_studies,
    "serve-bench": _cmd_serve_bench,
    "loadgen": _cmd_loadgen,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "chaos": _cmd_chaos,
    "cluster-bench": _cmd_cluster_bench,
    "bench": _cmd_bench,
    "check": _cmd_check,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Unknown subcommands and malformed flag values exit 2 with a usage
    message on stderr (argparse handles unknown commands and un-parseable
    flags itself; domain errors — bad sample lists, unknown frameworks,
    CVEs, or techniques — are caught here).
    """
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except CliUsageError as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        print(parser.format_usage().rstrip(), file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # Lookup-style domain errors (e.g. an unknown CVE id).
        print(f"repro {args.command}: error: {exc.args[0]}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
