"""The two StegoNet follow-up programs of Appendix A.7.

* **CT viewer** — analyzes a medical CT image; the patient's name, age,
  and phone number live in the target (host) process, the CT image in
  the data-loading process.
* **Invoice OCR** — extracts an address, taxpayer id, and bank account
  from tax-invoice images; all of that stays in the host process.

Both load a (possibly trojaned) PyTorch model; the StegoNet mitigation
bench runs them with a trojan planted in the model file.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.apps.base import Application, AppResult, AppSpec, ArgSpec, CallSite, TypeCounts, Workload
from repro.core.apitypes import APIType
from repro.core.gateway import ApiGateway
from repro.errors import FrameworkCrash
from repro.frameworks.base import Model
from repro.sim.kernel import SimKernel

PATIENT_TAG = "patient.record"
INVOICE_TAG = "invoice.extracted"

CT_MODEL_PATH = "/models/ct-classifier.pt"
INVOICE_MODEL_PATH = "/models/invoice-ocr.pt"


def _spec(sample_id: int, name: str, description: str) -> AppSpec:
    return AppSpec(
        sample_id=sample_id,
        name=name,
        main_framework="pytorch",
        language="Python",
        sloc=410,
        size_bytes=2 * 1024 * 1024,
        description=description,
        loading=TypeCounts(2, 2),
        processing=TypeCounts(3, 3),
        visualizing=TypeCounts(0, 0),
        storing=TypeCounts(1, 1),
        secondary_frameworks=("opencv",),
    )


CT_SPEC = _spec(103, "ct-viewer", "Medical CT image analysis (A.7)")
INVOICE_SPEC = _spec(104, "invoice-ocr", "Tax-invoice OCR (A.7)")

_CT_SCHEDULE = (
    CallSite("pytorch", "load", ArgSpec.SOURCE_PATH, APIType.LOADING, loop=False),
    CallSite("opencv", "imread", ArgSpec.SOURCE_PATH, APIType.LOADING),
    CallSite("opencv", "GaussianBlur", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("pytorch", "Module_forward", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("pytorch", "softmax", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("pytorch", "save", ArgSpec.SINK_OBJ, APIType.STORING),
)


class _ModelDrivenApp(Application):
    """Shared body for the two A.7 programs."""

    model_path = CT_MODEL_PATH
    record_tag = PATIENT_TAG
    record_value: Dict[str, Any] = {}

    @property
    def schedule(self):
        return _CT_SCHEDULE

    def image_path(self, item: int) -> str:
        return f"/data/{self.spec.name}/scan-{item}.png"

    def setup(self, kernel: SimKernel, workload: Workload) -> None:
        rng = np.random.default_rng(workload.seed + self.spec.sample_id)
        if not kernel.fs.exists(self.model_path):
            kernel.fs.write_file(
                self.model_path,
                Model({"encoder": rng.normal(size=(4, 4))}, architecture="cnn"),
            )
        for item in range(workload.items):
            kernel.fs.write_file(
                self.image_path(item),
                rng.integers(0, 256, size=(16, 16)).astype(np.float64),
            )

    def run(self, gateway: ApiGateway, workload: Workload) -> AppResult:
        result = AppResult()
        gateway.host_alloc(self.record_tag, dict(self.record_value))
        try:
            model = gateway.call("pytorch", "load", self.model_path)
        except FrameworkCrash:
            result.crashes_survived += 1
            model = None
        findings = []
        for item in range(workload.items):
            try:
                image = gateway.call("opencv", "imread", self.image_path(item))
            except FrameworkCrash:
                result.crashes_survived += 1
                continue
            smooth = gateway.call("opencv", "GaussianBlur", image)
            features = gateway.call("pytorch", "Module_forward", smooth)
            probabilities = gateway.call("pytorch", "softmax", features)
            findings.append(gateway.materialize(probabilities).mean())
            result.items_processed += 1
        if model is not None:
            gateway.call(
                "pytorch", "save", model, f"/out/{self.spec.name}/model-out.pt"
            )
        result.outputs["findings"] = findings
        result.outputs["record"] = gateway.host_read(self.record_tag)
        return result


class CtViewerApp(_ModelDrivenApp):
    """The A.7 CT-image analyzer (patient record in host memory)."""
    def __init__(self) -> None:
        super().__init__(CT_SPEC)
        self.record_value = {
            "name": "Jane Roe", "age": 57, "phone": "555-0199",
        }


class InvoiceOcrApp(_ModelDrivenApp):
    """The A.7 tax-invoice OCR program (taxpayer data in host memory)."""
    model_path = INVOICE_MODEL_PATH
    record_tag = INVOICE_TAG

    def __init__(self) -> None:
        super().__init__(INVOICE_SPEC)
        self.record_value = {
            "address": "1 Main St", "taxpayer_id": "TX-314159",
            "bank_account": "DE00 1234 5678",
        }
