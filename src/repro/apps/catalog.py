"""Call-site repertoires and the Table 6 schedule builder.

Each framework contributes a *pipeline-safe* repertoire per API type —
call sites the generic :class:`~repro.apps.base.PipelineApp` engine can
execute with its standard argument conventions.  The builder assembles a
deterministic schedule matching a Table 6 row's unique/total counts,
always placing the sample's CVE-carrying APIs first so every attack of
Table 5 has its delivery path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.attacks.cves import cves_for_sample
from repro.core.apitypes import APIType
from repro.apps.base import AppSpec, ArgSpec, CallSite, TypeCounts

Entry = Tuple[str, str, ArgSpec]  # (framework, api, argspec)


def _unary(framework: str, names: Iterable[str]) -> List[Entry]:
    return [(framework, name, ArgSpec.UNARY) for name in names]


_OPENCV_UNARY = [
    # rectangle/putText lead the repertoire: they are the hot-loop
    # annotation APIs of the motivating example (Fig. 4) and must be in
    # every schedule that draws on OpenCV processing.
    "rectangle", "putText",
    "GaussianBlur", "blur", "medianBlur", "bilateralFilter", "boxFilter",
    "erode", "dilate", "morphologyEx", "threshold", "adaptiveThreshold",
    "inRange", "Canny", "Sobel", "Scharr", "Laplacian", "filter2D",
    "sepFilter2D", "pyrDown", "pyrUp", "resize", "warpAffine",
    "warpPerspective", "remap", "undistort", "flip", "rotate", "transpose",
    "normalize", "equalizeHist", "calcHist", "bitwise_not", "LUT",
    "drawContours", "moments", "HoughLines", "HoughCircles", "cornerHarris",
    "goodFeaturesToTrack", "distanceTransform", "floodFill", "integral",
    "dft", "idft", "line", "circle",
    "BackgroundSubtractorMOG2_apply", "connectedComponents", "PCACompute",
    "convertScaleAbs", "copyMakeBorder", "findContours", "kmeans",
    "minMaxLoc", "mean", "meanStdDev", "reduce", "split", "merge",
    "solve", "invert",
]

_OPENCV_BINARY = [
    "addWeighted", "add", "subtract", "multiply", "divide", "absdiff",
    "bitwise_and", "bitwise_or", "bitwise_xor", "compareHist",
    "matchTemplate", "calcOpticalFlowFarneback", "calcOpticalFlowPyrLK",
    "gemm", "getPerspectiveTransform",
]

_OPLIB_UNARY = [
    "abs", "exp", "log", "sqrt", "square", "negative", "sign", "floor",
    "ceil", "round", "sin", "cos", "tanh", "sigmoid", "relu", "softplus",
    "reciprocal", "clamp", "erf",
    "sum", "mean", "max", "min", "argmax", "argmin", "std", "var", "prod",
    "norm", "median", "cumsum", "count_nonzero",
    "reshape", "transpose", "flatten", "squeeze", "unsqueeze", "concat",
    "stack", "split", "pad", "tile", "flip", "roll", "sort", "unique",
    "broadcast",
    "conv2d", "conv3d", "avg_pool", "max_pool", "batch_norm", "layer_norm",
    "instance_norm", "dropout", "linear", "embedding", "softmax",
    "log_softmax", "cross_entropy", "mse_loss", "nll_loss", "leaky_relu",
    "elu", "gelu", "upsample", "pixel_shuffle", "grid_sample", "interpolate",
]

_OPLIB_BINARY = [
    "add", "sub", "mul", "div", "pow", "maximum", "minimum", "matmul",
    "dot", "where_gt",
]

_TORCH_EXTRA_UNARY = [
    "tensor", "from_numpy", "randn_like", "cat", "chunk", "topk", "argsort",
    "gather", "masked_fill", "bmm", "einsum", "detach", "item", "numel",
    "combinations", "Module_forward", "backward", "optimizer_step",
    "zero_grad", "clip_grad_norm",
]

_TF_EXTRA_UNARY = [
    "convert_to_tensor", "constant", "Variable", "one_hot", "cast",
    "expand_dims_batch", "reduce_all", "image_resize",
    "image_rgb_to_grayscale", "image_per_image_standardization",
    "keras_Model_fit", "keras_Model_predict", "estimator_DNNClassifier_train",
    "Session_run",
]

_CAFFE_EXTRA = [
    ("caffe", "Forward", ArgSpec.DETECT),
    ("caffe", "Backward", ArgSpec.DETECT),
    ("caffe", "Solver_step", ArgSpec.DETECT),
]

# Caffe only registers the UNARY_OPS + NN_OPS families.
_CAFFE_OPS = {
    "abs", "exp", "log", "sqrt", "square", "negative", "sign", "floor",
    "ceil", "round", "sin", "cos", "tanh", "sigmoid", "relu", "softplus",
    "reciprocal", "clamp",
    "conv2d", "conv3d", "avg_pool", "max_pool", "batch_norm", "layer_norm",
    "instance_norm", "dropout", "linear", "embedding", "softmax",
    "log_softmax", "cross_entropy", "mse_loss", "nll_loss", "leaky_relu",
    "elu", "gelu", "upsample", "interpolate",
}


REPERTOIRES: Dict[str, Dict[APIType, List[Entry]]] = {
    "opencv": {
        APIType.LOADING: [
            ("opencv", "imread", ArgSpec.SOURCE_PATH),
            ("opencv", "VideoCapture_read", ArgSpec.SOURCE_CAMERA),
            ("opencv", "cvLoad", ArgSpec.SOURCE_PATH),
            ("opencv", "imreadmulti", ArgSpec.SOURCE_PATH),
            ("opencv", "FileStorage_read", ArgSpec.SOURCE_PATH),
            ("opencv", "readOpticalFlow", ArgSpec.SOURCE_PATH),
            ("opencv", "VideoCapture_grab", ArgSpec.SOURCE_CAMERA),
        ],
        APIType.PROCESSING: (
            [("opencv", "CascadeClassifier_detectMultiScale", ArgSpec.DETECT)]
            + _unary("opencv", _OPENCV_UNARY)
            + [("opencv", name, ArgSpec.BINARY) for name in _OPENCV_BINARY]
            + [
                ("opencv", "cvtColor", ArgSpec.UNARY),
                ("opencv", "copyTo", ArgSpec.UNARY),
                ("opencv", "getStructuringElement", ArgSpec.NONE),
                ("opencv", "getRotationMatrix2D", ArgSpec.NONE),
                ("opencv", "CascadeClassifier", ArgSpec.NONE),
            ]
        ),
        APIType.VISUALIZING: [
            ("opencv", "imshow", ArgSpec.SHOW),
            ("opencv", "pollKey", ArgSpec.GUI_ONLY),
            ("opencv", "namedWindow", ArgSpec.WINDOW_NAME),
            ("opencv", "waitKey", ArgSpec.GUI_ONLY),
            ("opencv", "moveWindow", ArgSpec.WINDOW_NAME),
            ("opencv", "setWindowTitle", ArgSpec.WINDOW_NAME),
            ("opencv", "destroyAllWindows", ArgSpec.GUI_ONLY),
            ("opencv", "getMouseWheelDelta", ArgSpec.GUI_ONLY),
            ("opencv", "selectROI", ArgSpec.SHOW),
        ],
        APIType.STORING: [
            ("opencv", "imwrite", ArgSpec.SINK),
            ("opencv", "writeOpticalFlow", ArgSpec.SINK),
            ("opencv", "imwritemulti", ArgSpec.SINK_LIST),
        ],
    },
    "pytorch": {
        APIType.LOADING: [
            ("pytorch", "load", ArgSpec.SOURCE_PATH),
            ("pytorch", "datasets_MNIST", ArgSpec.SOURCE_DIR),
            ("pytorch", "DataLoader", ArgSpec.UNARY),
            ("pytorch", "datasets_ImageFolder", ArgSpec.SOURCE_DIR),
            ("pytorch", "hub_load", ArgSpec.SOURCE_NONE),
            ("pytorch", "model_zoo_load_url", ArgSpec.SOURCE_NONE),
            ("pytorch", "datasets_CIFAR10", ArgSpec.SOURCE_DIR),
        ],
        APIType.PROCESSING: (
            _unary("pytorch", _TORCH_EXTRA_UNARY)
            + _unary("pytorch", _OPLIB_UNARY)
            + [("pytorch", name, ArgSpec.BINARY) for name in _OPLIB_BINARY]
        ),
        APIType.VISUALIZING: [],
        APIType.STORING: [
            ("pytorch", "save", ArgSpec.SINK_OBJ),
            ("pytorch", "SummaryWriter", ArgSpec.NONE),
            ("pytorch", "onnx_export", ArgSpec.SINK_OBJ),
            ("numpy", "save", ArgSpec.SINK),
        ],
    },
    "tensorflow": {
        APIType.LOADING: [
            ("tensorflow", "keras_models_load_model", ArgSpec.SOURCE_PATH),
            ("tensorflow", "image_dataset_from_directory", ArgSpec.SOURCE_DIR),
            ("tensorflow", "data_TFRecordDataset", ArgSpec.SOURCE_PATH),
            ("tensorflow", "train_load_checkpoint", ArgSpec.SOURCE_PATH),
            ("tensorflow", "utils_get_file", ArgSpec.SOURCE_NONE),
        ],
        APIType.PROCESSING: (
            _unary("tensorflow", _TF_EXTRA_UNARY)
            + _unary("tensorflow", _OPLIB_UNARY)
            + [("tensorflow", name, ArgSpec.BINARY) for name in _OPLIB_BINARY]
        ),
        APIType.VISUALIZING: [],
        APIType.STORING: [
            ("tensorflow", "preprocessing_image_save_img", ArgSpec.SINK),
            ("tensorflow", "Model_save_weights", ArgSpec.SINK_OBJ),
            ("tensorflow", "train_Checkpoint_save", ArgSpec.SINK_OBJ),
            ("numpy", "save", ArgSpec.SINK),
        ],
    },
    "caffe": {
        APIType.LOADING: [
            ("caffe", "ReadProtoFromTextFile", ArgSpec.SOURCE_PATH),
            ("caffe", "ReadProtoFromBinaryFile", ArgSpec.SOURCE_PATH),
            ("caffe", "hdf5_load_nd_dataset", ArgSpec.SOURCE_PATH),
            ("caffe", "ReadImageToDatum", ArgSpec.SOURCE_PATH),
        ],
        APIType.PROCESSING: (
            list(_CAFFE_EXTRA)
            + [("caffe", "CopyTrainedLayersFrom", ArgSpec.BINARY)]
            + _unary("caffe", [n for n in _OPLIB_UNARY
                               if n not in ("erf", "grid_sample", "pixel_shuffle")
                               and n in _CAFFE_OPS])
        ),
        APIType.VISUALIZING: [],
        APIType.STORING: [
            ("caffe", "hdf5_save_string", ArgSpec.SINK),
            ("caffe", "WriteProtoToTextFile", ArgSpec.SINK_OBJ),
            ("caffe", "Snapshot", ArgSpec.SINK_OBJ),
        ],
    },
}

#: Argspec of known CVE-carrying APIs (for placement by the builder).
_ARGSPEC_OVERRIDES: Dict[Tuple[str, str], ArgSpec] = {
    ("opencv", "imread"): ArgSpec.SOURCE_PATH,
    ("opencv", "imshow"): ArgSpec.SHOW,
    ("opencv", "CascadeClassifier_detectMultiScale"): ArgSpec.DETECT,
    ("pillow", "Image_open"): ArgSpec.SOURCE_PATH,
}


def repertoire(
    frameworks: Sequence[str], api_type: APIType
) -> List[Entry]:
    """Merged pipeline-safe entries of the given frameworks for one type."""
    entries: List[Entry] = []
    seen = set()
    for name in frameworks:
        table = REPERTOIRES.get(name, {})
        for entry in table.get(api_type, []):
            key = (entry[0], entry[1])
            if key not in seen:
                seen.add(key)
                entries.append(entry)
    return entries


def _mandatory_entries(spec: AppSpec, api_type: APIType) -> List[Entry]:
    """CVE-carrying APIs this sample must call, in registry order."""
    entries: List[Entry] = []
    seen = set()
    for record in cves_for_sample(spec.sample_id):
        if record.api_type is not api_type:
            continue
        key = (record.framework, record.api_name)
        if key in seen:
            continue
        seen.add(key)
        argspec = _ARGSPEC_OVERRIDES.get(key)
        if argspec is None:
            argspec = (
                ArgSpec.SOURCE_PATH if api_type is APIType.LOADING
                else ArgSpec.UNARY
            )
        entries.append((record.framework, record.api_name, argspec))
    return entries


def build_schedule(spec: AppSpec) -> List[CallSite]:
    """Assemble a schedule matching the spec's Table 6 counts."""
    frameworks = (spec.main_framework,) + spec.secondary_frameworks
    schedule: List[CallSite] = []
    for api_type in (
        APIType.LOADING, APIType.PROCESSING,
        APIType.VISUALIZING, APIType.STORING,
    ):
        counts = spec.counts_for(api_type)
        if counts.unique == 0:
            continue
        candidates = _mandatory_entries(spec, api_type)
        for entry in repertoire(frameworks, api_type):
            if all((entry[0], entry[1]) != (c[0], c[1]) for c in candidates):
                candidates.append(entry)
        if len(candidates) < counts.unique:
            raise ValueError(
                f"{spec.name}: need {counts.unique} unique "
                f"{api_type.value} APIs but only {len(candidates)} available"
            )
        chosen = candidates[: counts.unique]
        sites = _distribute(chosen, counts, api_type)
        schedule.extend(sites)
    return schedule


def _distribute(
    chosen: List[Entry], counts: TypeCounts, api_type: APIType
) -> List[CallSite]:
    """Turn unique entries + a total into concrete call sites."""
    totals = [1] * len(chosen)
    extra = counts.total - len(chosen)
    index = 0
    while extra > 0:
        totals[index % len(chosen)] += 1
        index += 1
        extra -= 1
    sites: List[CallSite] = []
    for position, ((framework, api, argspec), site_count) in enumerate(
        zip(chosen, totals)
    ):
        for copy in range(site_count):
            loop = True
            if api_type is APIType.LOADING:
                # Exactly one loading site feeds the main loop (the input
                # reader); the rest are initialization loads (models,
                # configs, datasets).
                loop = position == 0 and copy == 0
            sites.append(CallSite(
                framework=framework, api=api, argspec=argspec,
                api_type=api_type, loop=loop,
            ))
    return sites
