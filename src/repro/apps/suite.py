"""The 23 evaluation applications (Table 6).

Each row of Table 6 is transcribed into an :class:`AppSpec`; the schedule
builder (``repro.apps.catalog``) assembles a call-site schedule matching
the row's unique/total counts per API type, with the sample's
CVE-carrying APIs (Table 5) always included.  OMRChecker (sample 8) has a
hand-written application in ``repro.apps.omrchecker`` with the motivating
example's critical data; :func:`make_app` routes to it.

Two cells of the published table are ambiguous in the text (rows 10 and
11 print six numbers for eight columns); we place the trailing pair under
*storing*, which matches Caffe's lack of visualizing APIs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.base import Application, AppSpec, PipelineApp, TypeCounts
from repro.apps.catalog import build_schedule

_K = 1024
_M = 1024 * 1024


def _spec(
    sample_id: int,
    name: str,
    main: str,
    lang: str,
    sloc: int,
    size: int,
    loading: tuple,
    processing: tuple,
    visualizing: tuple,
    storing: tuple,
    description: str,
    secondary: tuple = (),
) -> AppSpec:
    return AppSpec(
        sample_id=sample_id,
        name=name,
        main_framework=main,
        language=lang,
        sloc=sloc,
        size_bytes=size,
        description=description,
        loading=TypeCounts(*loading),
        processing=TypeCounts(*processing),
        visualizing=TypeCounts(*visualizing),
        storing=TypeCounts(*storing),
        secondary_frameworks=secondary,
    )


APP_SPECS: Dict[int, AppSpec] = {
    spec.sample_id: spec
    for spec in (
        _spec(1, "Face_classification", "opencv", "Python", 7_082, 280 * _K,
              (4, 4), (5, 10), (4, 4), (1, 1),
              "Face, emotion, gender detection",
              secondary=("tensorflow",)),
        _spec(2, "FaceTracker", "opencv", "C/C++", 3_012, 588 * _K,
              (2, 5), (19, 99), (3, 3), (3, 6),
              "Real-time deformable face tracking"),
        _spec(3, "Face_Recognition", "opencv", "Python", 3_205, int(14.8 * _M),
              (1, 8), (5, 26), (3, 15), (2, 3),
              "Face recognition application"),
        _spec(4, "lbpcascade_anime", "opencv", "Python", 6_671, 224 * _K,
              (1, 1), (4, 4), (3, 3), (1, 1),
              "Image classification/object detection"),
        _spec(5, "EyeLike", "opencv", "C/C++", 742, 44 * _K,
              (5, 5), (21, 100), (4, 18), (1, 2),
              "Webcam based pupil tracking"),
        _spec(6, "Video-to-ascii", "opencv", "Python", 483, 48 * _K,
              (4, 7), (2, 2), (1, 1), (0, 0),
              "Plays videos in terminal"),
        _spec(7, "Libfacedetection", "opencv", "C/C++", 14_016, int(8.8 * _M),
              (4, 6), (14, 62), (4, 4), (1, 1),
              "Library for face detection"),
        _spec(8, "OMRChecker", "opencv", "Python", 1_797, int(6.2 * _M),
              (2, 4), (42, 88), (4, 5), (1, 1),
              "Grading application",
              secondary=("pandas", "json", "matplotlib")),
        _spec(9, "EmoRecon", "caffe", "Python", 1_773, 53 * _K,
              (6, 10), (11, 32), (5, 6), (1, 1),
              "Real-time emotion recognition",
              secondary=("opencv",)),
        _spec(10, "Openpose", "caffe", "C/C++", 459_373, int(6.8 * _M),
              (10, 12), (44, 171), (0, 0), (2, 2),
              "Real-time person keypoint detection",
              secondary=("opencv",)),
        _spec(11, "MTCNN", "caffe", "Python", 425, 129 * _K,
              (1, 1), (11, 18), (0, 0), (2, 2),
              "MTCNN face detector",
              secondary=("opencv",)),
        _spec(12, "SiamMask", "pytorch", "Python", 39_999, int(1.4 * _M),
              (2, 9), (19, 103), (4, 10), (2, 11),
              "Object tracking and segmentation",
              secondary=("opencv",)),
        _spec(13, "CycleGAN-pix2pix", "pytorch", "Python", 1_963, int(7.64 * _M),
              (5, 7), (50, 103), (0, 0), (1, 2),
              "Image-to-image translation",
              secondary=("opencv",)),
        _spec(14, "FAIRSEQ", "pytorch", "Python", 39_800, int(5.9 * _M),
              (8, 19), (20, 65), (0, 0), (4, 4),
              "Sequence modeling toolkit",
              secondary=("opencv",)),
        _spec(15, "PyTorch-GAN", "pytorch", "Python", 6_199, int(31.1 * _M),
              (3, 105), (41, 1_747), (0, 0), (1, 37),
              "PyTorch implementation of GANs",
              secondary=("opencv",)),
        _spec(16, "YOLO-V3", "pytorch", "Python", 2_759, int(1.98 * _M),
              (3, 9), (68, 254), (3, 3), (2, 6),
              "PyTorch implementation of YOLOv3",
              secondary=("opencv",)),
        _spec(17, "StarGAN", "pytorch", "Python", 740, int(2.07 * _M),
              (1, 2), (32, 105), (0, 0), (1, 4),
              "PyTorch implementation of StarGAN",
              secondary=("opencv",)),
        _spec(18, "EfficientNet", "pytorch", "Python", 2_554, int(2.48 * _M),
              (4, 8), (37, 86), (0, 0), (2, 2),
              "PyTorch implementation of EfficientNet",
              secondary=("opencv",)),
        _spec(19, "Semantic-Seg", "pytorch", "Python", 3_699, int(5.53 * _M),
              (2, 2), (136, 304), (0, 0), (1, 3),
              "Semantic segmentation/scene parsing",
              secondary=("opencv",)),
        _spec(20, "DCGAN-TensorFlow", "tensorflow", "Python", 3_142, int(67.4 * _M),
              (3, 6), (54, 137), (0, 0), (1, 1),
              "TensorFlow implementation of DCGAN"),
        _spec(21, "See-in-the-Dark", "tensorflow", "Python", 610, 836 * _K,
              (1, 8), (31, 244), (0, 0), (2, 10),
              "Learning-to-See-in-the-Dark (CVPR'18)"),
        _spec(22, "CapsNet", "tensorflow", "Python", 679, 486 * _K,
              (1, 8), (43, 108), (0, 0), (4, 6),
              "TensorFlow implementation of CapsNet"),
        _spec(23, "Style-Transfer", "tensorflow", "Python", 731, 1 * _M,
              (3, 4), (37, 61), (0, 0), (3, 5),
              "Add styles from images to any photo",
              secondary=("opencv",)),
    )
}

SAMPLE_IDS = tuple(sorted(APP_SPECS))


def get_spec(sample_id: int) -> AppSpec:
    """The Table 6 row for one evaluation sample id."""
    try:
        return APP_SPECS[sample_id]
    except KeyError:
        raise KeyError(f"no evaluation sample {sample_id}") from None


def make_app(sample_id: int) -> Application:
    """Instantiate one evaluation application."""
    spec = get_spec(sample_id)
    if sample_id == 8:
        from repro.apps.omrchecker import OMRCheckerApp

        return OMRCheckerApp()
    return PipelineApp(spec, build_schedule(spec))


def all_apps() -> List[Application]:
    """Instantiate all 23 evaluation applications."""
    return [make_app(sample_id) for sample_id in SAMPLE_IDS]


def used_api_objects(app: Application):
    """The FrameworkAPI objects an app's schedule references."""
    from repro.frameworks.registry import get_api

    seen = set()
    apis = []
    for site in app.schedule:
        key = (site.framework, site.api)
        if key not in seen:
            seen.add(key)
            apis.append(get_api(site.framework, site.api))
    # The engine can introduce helper calls (capture/classifier ctors).
    for framework, name in (
        ("opencv", "VideoCapture"),
        ("opencv", "CascadeClassifier"),
    ):
        key = (framework, name)
        if key not in seen:
            seen.add(key)
            apis.append(get_api(framework, name))
    return apis
