"""The MComix3 image-viewer case study (Section 5.4.2).

MComix3 keeps its recent-file-names list in two places: the host
program's ``self._window.uimanager.recent`` variable and the GTK
``Gtk::RecentManager`` (GUI state, i.e. the visualizing process under
FreePart).  An attacker uses CVE-2020-10378 (a Pillow image-decoder
vulnerability, exploited in the data-loading process) to read the recent
file names and exfiltrate them.

FreePart defeats the attack twice over: the variables are not mapped in
the loading process, and the loading agent's filter lacks the syscalls to
send anything out.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.apps.base import Application, AppResult, AppSpec, ArgSpec, CallSite, TypeCounts, Workload
from repro.core.apitypes import APIType
from repro.core.gateway import ApiGateway
from repro.errors import FrameworkCrash
from repro.sim.kernel import SimKernel

RECENT_TAG = "self._window.uimanager.recent"

MCOMIX_SPEC = AppSpec(
    sample_id=102,
    name="mcomix3",
    main_framework="pillow",
    language="Python",
    sloc=310,
    size_bytes=512 * 1024,
    description="MComix3 comic-book viewer (Section 5.4.2)",
    loading=TypeCounts(1, 1),
    processing=TypeCounts(1, 1),
    visualizing=TypeCounts(3, 3),
    storing=TypeCounts(0, 0),
    secondary_frameworks=("gtk",),
)

_SCHEDULE = (
    CallSite("pillow", "Image_open", ArgSpec.SOURCE_PATH, APIType.LOADING),
    CallSite("pillow", "Image_resize", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("gtk", "Window_show", ArgSpec.UNARY, APIType.VISUALIZING),
    CallSite("gtk", "RecentManager_add_item", ArgSpec.WINDOW_NAME, APIType.VISUALIZING),
    CallSite("gtk", "RecentManager_get_items", ArgSpec.GUI_ONLY, APIType.VISUALIZING),
)


class MComixApp(Application):
    """Open comics, keep a recent-files list, display pages."""

    def __init__(self) -> None:
        super().__init__(MCOMIX_SPEC)

    @property
    def schedule(self):
        return _SCHEDULE

    def comic_path(self, item: int) -> str:
        return f"/home/user/comics/issue-{item}.cbz"

    def setup(self, kernel: SimKernel, workload: Workload) -> None:
        rng = np.random.default_rng(workload.seed + 777)
        for item in range(workload.items):
            page = rng.integers(0, 256, size=(16, 16, 3)).astype(np.float64)
            kernel.fs.write_file(self.comic_path(item), page)

    def run(self, gateway: ApiGateway, workload: Workload) -> AppResult:
        result = AppResult()
        recent: List[str] = []
        gateway.host_alloc(RECENT_TAG, recent)
        for item in range(workload.items):
            path = self.comic_path(item)
            try:
                page = gateway.call("pillow", "Image_open", path)
            except FrameworkCrash:
                result.crashes_survived += 1
                continue
            thumb = gateway.call("pillow", "Image_resize", page)
            gateway.call("gtk", "Window_show", thumb)
            gateway.call("gtk", "RecentManager_add_item", path)
            recent.insert(0, path)
            gateway.host_write(RECENT_TAG, list(recent))
            result.items_processed += 1
        result.outputs["recent_menu"] = gateway.call(
            "gtk", "RecentManager_get_items"
        )
        result.outputs["recent_variable"] = gateway.host_read(RECENT_TAG)
        return result
