"""Evaluation applications (Table 6) and case-study programs."""

from repro.apps.base import (
    Application,
    AppResult,
    AppSpec,
    ArgSpec,
    CallSite,
    PipelineApp,
    TypeCounts,
    Workload,
    execute_app,
)
from repro.apps.suite import APP_SPECS, SAMPLE_IDS, all_apps, get_spec, make_app

__all__ = [
    "APP_SPECS",
    "AppResult",
    "AppSpec",
    "Application",
    "ArgSpec",
    "CallSite",
    "PipelineApp",
    "SAMPLE_IDS",
    "TypeCounts",
    "Workload",
    "all_apps",
    "execute_app",
    "get_spec",
    "make_app",
]
