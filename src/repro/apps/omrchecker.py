"""OMRChecker — the motivating example (Section 3, Fig. 1).

An auto-grader: it loads a *template* describing where the answer-mark
boxes sit on the sheet, then for every submitted OMR image runs an
OpenCV pre-processing chain, detects the marked answers, compares them
with the teacher's master answers, annotates the sheet (the hot-loop
``cv.rectangle``/``cv.putText`` calls of Fig. 4), shows the result, and
appends a score row to the output CSV.

Critical data (the attack targets of Fig. 1):

* ``template.QBlocks.orig`` — answer-box coordinates, defined during
  initialization, must be read-only from the first ``imread`` on;
* ``OMRCrop`` — the current input image as seen by the host program.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List

import numpy as np

from repro.apps.base import AppResult, AppSpec, ArgSpec, CallSite, PipelineApp, Workload
from repro.core.apitypes import APIType
from repro.core.gateway import ApiGateway
from repro.errors import FrameworkCrash
from repro.sim.kernel import SimKernel

TEMPLATE_TAG = "template.QBlocks.orig"
OMRCROP_TAG = "OMRCrop"
ANSWERS_TAG = "answers"

#: Answer-box coordinates (x, y, w, h) of the three questions.
DEFAULT_TEMPLATE: List[List[int]] = [
    [2, 2, 5, 5],
    [12, 2, 5, 5],
    [2, 12, 5, 5],
]

MASTER_ANSWERS: List[str] = ["A", "B", "C"]

#: Dynamic repetitions of the two hot-loop annotation APIs per sheet
#: (one rectangle + one label per answer box and per candidate mark).
HOT_LOOP_REPEAT = 40


def _omr_spec() -> AppSpec:
    from repro.apps.suite import get_spec

    return get_spec(8)


def _build_omr_schedule(spec: AppSpec) -> List[CallSite]:
    from repro.apps.catalog import build_schedule

    schedule = build_schedule(spec)
    hot = {"rectangle", "putText"}
    return [
        replace(site, repeat=HOT_LOOP_REPEAT)
        if site.api in hot and site.api_type is APIType.PROCESSING
        else site
        for site in schedule
    ]


class OMRCheckerApp(PipelineApp):
    """The hand-written motivating-example application."""

    def __init__(self) -> None:
        spec = _omr_spec()
        super().__init__(spec, _build_omr_schedule(spec))

    def csv_path(self) -> str:
        return f"/out/{self.spec.name}/results.csv"

    @property
    def annotations(self) -> tuple:
        from repro.sim.memory import MemoryLayout

        return (
            MemoryLayout(name="template", tag=TEMPLATE_TAG, nbytes=256,
                         constructor="Template.__init__",
                         accessors=("Template.boxes",)),
            MemoryLayout(name="answers", tag=ANSWERS_TAG, nbytes=64,
                         constructor="load_answer_key"),
            MemoryLayout(name="omr_crop", tag=OMRCROP_TAG, nbytes=8192,
                         constructor="imread",
                         accessors=("Mat.data",)),
        )

    def setup(self, kernel: SimKernel, workload: Workload) -> None:
        super().setup(kernel, workload)
        rng = np.random.default_rng(workload.seed + 800)
        for item in range(workload.items):
            sheet = np.zeros((20, 20, 3), dtype=np.float64)
            # Mark exactly the correct boxes brightly so grading is exact.
            for x, y, w, h in DEFAULT_TEMPLATE:
                sheet[y:y + h, x:x + w] = 255.0
            sheet += rng.normal(scale=2.0, size=sheet.shape)
            kernel.fs.write_file(self.input_path(item), sheet)

    def run(self, gateway: ApiGateway, workload: Workload) -> AppResult:
        result = AppResult()
        # Initialization: the critical data lives in the host program.
        gateway.host_alloc(TEMPLATE_TAG, [list(box) for box in DEFAULT_TEMPLATE])
        gateway.host_alloc(ANSWERS_TAG, list(MASTER_ANSWERS))
        rows: List[List[Any]] = [["sheet", "recognized", "score"]]

        init_sites = [s for s in self.schedule if not s.loop]
        loop_sites = [s for s in self.schedule if s.loop]
        state: Dict[str, Any] = {"current": None, "classifier": None}
        for index, site in enumerate(init_sites):
            try:
                self._execute_site(gateway, site, state, 0, index, result)
            except FrameworkCrash:
                result.crashes_survived += 1

        omr_buffer_ready = False
        for item in range(workload.items):
            try:
                sheet = gateway.call("opencv", "imread", self.input_path(item))
            except FrameworkCrash:
                result.crashes_survived += 1
                continue
            # The host program's view of the current input image.
            if not omr_buffer_ready:
                gateway.host_alloc(OMRCROP_TAG, sheet)
                omr_buffer_ready = True
            state["current"] = sheet

            hot_sites = [s for s in loop_sites if s.repeat > 1]
            pre_sites = [
                s for s in loop_sites
                if s.repeat == 1 and s.api_type in (APIType.LOADING,
                                                    APIType.PROCESSING)
            ]
            post_sites = [
                s for s in loop_sites
                if s.repeat == 1 and s.api_type in (APIType.VISUALIZING,
                                                    APIType.STORING)
            ]
            for index, site in enumerate(pre_sites):
                if site.api == "imread" and site.argspec is ArgSpec.SOURCE_PATH:
                    continue  # the explicit imread above is this site
                try:
                    self._execute_site(gateway, site, state, item, index, result)
                except FrameworkCrash:
                    result.crashes_survived += 1

            # The hot loop of Fig. 4: per answer box, draw a rectangle and
            # stamp a label on the *full-size* sheet.  The two APIs
            # alternate and share the whole image — which is why
            # splitting them into different partitions is so expensive.
            annotated = sheet
            for _ in range(HOT_LOOP_REPEAT):
                for site in hot_sites:
                    try:
                        annotated = gateway.call(
                            "opencv", site.api, annotated
                        ) or annotated
                    except FrameworkCrash:
                        result.crashes_survived += 1
            state["current"] = annotated

            # Present and persist the annotated sheet.
            for index, site in enumerate(post_sites):
                try:
                    self._execute_site(gateway, site, state, item, index, result)
                except FrameworkCrash:
                    result.crashes_survived += 1

            score, recognized = self._grade(gateway, item)
            rows.append([item, recognized, score])
            result.items_processed += 1

        gateway.host_write_file(self.csv_path(), rows)
        result.outputs["csv"] = rows
        return result

    def _grade(self, gateway: ApiGateway, item: int) -> Any:
        """Compare detected marks against the template's answer boxes."""
        template = gateway.host_read(TEMPLATE_TAG)
        answers = gateway.host_read(ANSWERS_TAG)
        sheet = gateway.materialize(
            gateway.call("opencv", "imread", self.input_path(item))
        )
        gray = np.asarray(sheet, dtype=np.float64)
        if gray.ndim == 3:
            gray = gray.mean(axis=2)
        recognized: List[str] = []
        score = 0
        for box, answer in zip(template, answers):
            x, y, w, h = box
            region = gray[y:y + h, x:x + w]
            marked = bool(region.size) and float(region.mean()) > 128.0
            recognized.append(answer if marked else "?")
            if marked:
                score += 1
        return score, "".join(recognized)


def read_scores(kernel: SimKernel, app: OMRCheckerApp) -> List[List[Any]]:
    """The grades the run produced (for attack-impact assertions)."""
    return kernel.fs.read_file(app.csv_path())
