"""The facial-recognition program of Fig. 10 (the design walkthrough).

A faithful transcription of the paper's example host program: open the
camera, construct a classifier, load user profiles (host code, critical
data), then loop — fetch frame, grayscale, resize, equalize, detect,
notify a server about detections, show the frame, save it on 's', quit
on 'q'.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.apps.base import Application, AppResult, AppSpec, ArgSpec, CallSite, TypeCounts, Workload
from repro.core.apitypes import APIType
from repro.core.gateway import ApiGateway
from repro.errors import FrameworkCrash
from repro.sim.kernel import SimKernel

USERPROFILE_TAG = "userprofile"
USERPROFILE_PATH = "/config/userprofile.xml"
CLASSIFIER_PATH = "/config/classifier.xml"

FACIAL_SPEC = AppSpec(
    sample_id=100,
    name="facial-recognition",
    main_framework="opencv",
    language="C/C++",
    sloc=21,
    size_bytes=44 * 1024,
    description="Fig. 10 facial recognition walkthrough program",
    loading=TypeCounts(2, 2),
    processing=TypeCounts(5, 5),
    visualizing=TypeCounts(3, 3),
    storing=TypeCounts(1, 1),
)

_SCHEDULE = (
    CallSite("opencv", "VideoCapture", ArgSpec.SOURCE_NONE, APIType.LOADING, loop=False),
    CallSite("opencv", "CascadeClassifier", ArgSpec.NONE, APIType.PROCESSING, loop=False),
    CallSite("opencv", "CascadeClassifier_load", ArgSpec.SOURCE_PATH, APIType.LOADING, loop=False),
    CallSite("opencv", "VideoCapture_read", ArgSpec.SOURCE_CAMERA, APIType.LOADING),
    CallSite("opencv", "cvtColor", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("opencv", "resize", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("opencv", "equalizeHist", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("opencv", "CascadeClassifier_detectMultiScale", ArgSpec.DETECT, APIType.PROCESSING),
    CallSite("opencv", "imshow", ArgSpec.SHOW, APIType.VISUALIZING),
    CallSite("opencv", "pollKey", ArgSpec.GUI_ONLY, APIType.VISUALIZING),
    CallSite("opencv", "imwrite", ArgSpec.SINK, APIType.STORING),
    CallSite("opencv", "destroyAllWindows", ArgSpec.GUI_ONLY, APIType.VISUALIZING, loop=False),
)


class FacialRecognitionApp(Application):
    """The Fig. 10 program, written against the gateway interface."""

    def __init__(self) -> None:
        super().__init__(FACIAL_SPEC)

    @property
    def schedule(self):
        return _SCHEDULE

    def setup(self, kernel: SimKernel, workload: Workload) -> None:
        kernel.fs.write_file(
            USERPROFILE_PATH,
            {"alice": {"age": 31, "phone": "555-0100"},
             "bob": {"age": 44, "phone": "555-0101"}},
        )
        kernel.fs.write_file(
            CLASSIFIER_PATH, {"threshold": 150.0, "min_area": 2}
        )
        kernel.devices.camera._frame_limit = workload.items
        kernel.devices.camera.rewind()
        if workload.keys:
            kernel.gui.queue_keys(workload.keys)

    def run(self, gateway: ApiGateway, workload: Workload) -> AppResult:
        result = AppResult()
        capture = gateway.call("opencv", "VideoCapture", 0)          # line 1
        cascade = gateway.call("opencv", "CascadeClassifier")        # line 3
        gateway.call("opencv", "CascadeClassifier_load", cascade, CLASSIFIER_PATH)
        profiles = gateway.host_read_file(USERPROFILE_PATH)          # line 4
        gateway.host_alloc(USERPROFILE_TAG, profiles)

        while True:                                                  # line 5
            try:
                frame = gateway.call("opencv", "VideoCapture_read", capture)
            except FrameworkCrash:
                result.crashes_survived += 1
                continue
            if frame is None:
                break
            gray = gateway.call("opencv", "cvtColor", frame)         # line 7
            small = gateway.call("opencv", "resize", gray)           # line 8
            equalized = gateway.call("opencv", "equalizeHist", small)
            faces = gateway.call(                                    # line 10
                "opencv", "CascadeClassifier_detectMultiScale",
                cascade, equalized,
            )
            for face in faces:                                       # lines 11-13
                gateway.send("server", {"notification": "face", "rect": face})
            try:
                gateway.call("opencv", "imshow", "camera", frame)    # line 14
            except FrameworkCrash:
                result.crashes_survived += 1
            key = gateway.call("opencv", "pollKey")                  # line 15
            if key == "s":
                gateway.call(
                    "opencv", "imwrite",
                    f"/out/facial/frame-{result.items_processed}.png", frame,
                )
            elif key == "q":                                         # line 17
                gateway.call("opencv", "destroyAllWindows")
                break
            result.items_processed += 1
        result.outputs["profiles"] = gateway.host_read(USERPROFILE_TAG)
        return result
