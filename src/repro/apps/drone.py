"""The autonomous object-tracking drone case study (Section 5.4.1).

The drone fetches camera frames, loads them with the vulnerable
``imread`` path, recognizes the tracked object, and steers toward it.
Its speed lives in the host program variable ``self.speed`` (default
0.3; flipping it to -0.3 makes the drone flee the object).

Two attacks from the paper are reproduced against it:

* **DoS** (CVE-2017-14136 / CVE-2019-14491) — without FreePart the whole
  program dies and the drone falls; with FreePart only the data-loading
  agent crashes, the control loop keeps flying, and the restarted agent
  resumes frame handling;
* **data corruption** (CVE-2017-12606) — flip ``self.speed``; with
  FreePart the exploit is contained in the loading agent while the
  variable lives in the target program process.
"""

from __future__ import annotations

from typing import Any, List

import numpy as np

from repro.apps.base import Application, AppResult, AppSpec, ArgSpec, CallSite, TypeCounts, Workload
from repro.core.apitypes import APIType
from repro.core.gateway import ApiGateway
from repro.errors import AgentUnavailable, FrameworkCrash
from repro.sim.kernel import SimKernel

SPEED_TAG = "self.speed"
DEFAULT_SPEED = 0.3

DRONE_SPEC = AppSpec(
    sample_id=101,
    name="drone-tracker",
    main_framework="opencv",
    language="Python",
    sloc=220,
    size_bytes=96 * 1024,
    description="Autonomous object tracking drone (Section 5.4.1)",
    loading=TypeCounts(2, 2),
    processing=TypeCounts(4, 4),
    visualizing=TypeCounts(0, 0),
    storing=TypeCounts(0, 0),
)

_SCHEDULE = (
    CallSite("opencv", "VideoCapture", ArgSpec.SOURCE_NONE, APIType.LOADING, loop=False),
    CallSite("opencv", "imread", ArgSpec.SOURCE_PATH, APIType.LOADING),
    CallSite("opencv", "cvtColor", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("opencv", "GaussianBlur", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("opencv", "threshold", ArgSpec.UNARY, APIType.PROCESSING),
    CallSite("opencv", "CascadeClassifier_detectMultiScale", ArgSpec.DETECT, APIType.PROCESSING),
)


class DroneApp(Application):
    """Camera → recognize → steer control loop."""

    def __init__(self) -> None:
        super().__init__(DRONE_SPEC)

    @property
    def schedule(self):
        return _SCHEDULE

    def frame_path(self, item: int) -> str:
        return f"/data/drone/frame-{item}.png"

    def setup(self, kernel: SimKernel, workload: Workload) -> None:
        rng = np.random.default_rng(workload.seed + 4242)
        for item in range(workload.items):
            frame = np.zeros((16, 16, 3), dtype=np.float64)
            # The tracked object is a bright blob drifting rightwards.
            x = 2 + (item % 10)
            frame[6:10, x:x + 3] = 255.0
            frame += rng.normal(scale=1.0, size=frame.shape)
            kernel.fs.write_file(self.frame_path(item), frame)

    def run(self, gateway: ApiGateway, workload: Workload) -> AppResult:
        result = AppResult()
        gateway.host_alloc(SPEED_TAG, DEFAULT_SPEED)
        classifier = gateway.call("opencv", "CascadeClassifier")
        gateway.call("opencv", "VideoCapture", 0)
        positions: List[float] = []
        x_position = 0.0

        for item in range(workload.items):
            try:
                frame = gateway.call("opencv", "imread", self.frame_path(item))
            except (FrameworkCrash, AgentUnavailable):
                # The loading agent died (and, if restart is disabled,
                # stays down); the drone itself keeps flying either way.
                result.crashes_survived += 1
                positions.append(x_position)
                continue
            gray = gateway.call("opencv", "cvtColor", frame)
            smooth = gateway.call("opencv", "GaussianBlur", gray)
            mask = gateway.call("opencv", "threshold", smooth)
            objects = gateway.call(
                "opencv", "CascadeClassifier_detectMultiScale", classifier, mask
            )
            speed = float(gateway.host_read(SPEED_TAG))
            if objects:
                target_x = objects[0][0]
                direction = 1.0 if target_x >= x_position else -1.0
                x_position += direction * speed
            positions.append(x_position)
            result.items_processed += 1

        result.outputs["positions"] = positions
        result.outputs["final_speed"] = gateway.host_read(SPEED_TAG)
        result.outputs["airborne"] = gateway.host.alive
        return result


def drone_followed_object(result: AppResult) -> bool:
    """Did the drone track toward the (rightward-drifting) object?"""
    positions = result.outputs.get("positions", [])
    return bool(positions) and positions[-1] > 0
