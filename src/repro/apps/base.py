"""Application model for the evaluation programs (Table 6).

An application is a *schedule of framework API call sites* plus host-code
glue, written once against the :class:`~repro.core.gateway.ApiGateway`
interface so the identical program runs unprotected, under FreePart, or
under any baseline technique.

Call sites are static program locations (Table 6's "Total" column counts
sites, not dynamic executions — the paper observes "multiple call sites
of a single framework API" from duplicated code).  Sites inside the main
loop execute once per workload item; initialization sites execute once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.apitypes import APIType
from repro.core.gateway import ApiGateway
from repro.core.runtime import RunReport
from repro.errors import FrameworkCrash
from repro.frameworks.base import DataObject
from repro.sim.kernel import SimKernel


class ArgSpec(enum.Enum):
    """How the engine supplies arguments to a call site."""

    SOURCE_PATH = "source_path"      # loader: (input_path) -> data
    SOURCE_DIR = "source_dir"        # loader: (dataset_dir) -> data
    SOURCE_CAMERA = "source_camera"  # loader: (capture_handle) -> frame
    SOURCE_NONE = "source_none"      # loader/ctor: () -> data
    UNARY = "unary"                  # processing: (current) -> current
    BINARY = "binary"                # processing: (current, current)
    DETECT = "detect"                # processing: (classifier, current)
    NONE = "none"                    # processing: () -> side value
    SHOW = "show"                    # visualizing: (window, current)
    GUI_ONLY = "gui_only"            # visualizing: ()
    WINDOW_NAME = "window_name"      # visualizing: (window)
    SINK = "sink"                    # storing: (output_path, current)
    SINK_OBJ = "sink_obj"            # storing: (current, output_path)
    SINK_LIST = "sink_list"          # storing: (output_path, [current])


@dataclass(frozen=True)
class CallSite:
    """One static framework-API call site in the program."""

    framework: str
    api: str
    argspec: ArgSpec
    api_type: APIType
    loop: bool = True      # inside the per-item main loop?
    repeat: int = 1        # dynamic executions per loop pass (hot loops)


@dataclass(frozen=True)
class TypeCounts:
    """unique / total call-site counts for one API type (Table 6 cell)."""

    unique: int = 0
    total: int = 0


@dataclass(frozen=True)
class AppSpec:
    """Metadata of one evaluation application (a Table 6 row)."""

    sample_id: int
    name: str
    main_framework: str
    language: str
    sloc: int
    size_bytes: int
    description: str
    loading: TypeCounts = TypeCounts()
    processing: TypeCounts = TypeCounts()
    visualizing: TypeCounts = TypeCounts()
    storing: TypeCounts = TypeCounts()
    secondary_frameworks: Tuple[str, ...] = ()

    def counts_for(self, api_type: APIType) -> TypeCounts:
        return {
            APIType.LOADING: self.loading,
            APIType.PROCESSING: self.processing,
            APIType.VISUALIZING: self.visualizing,
            APIType.STORING: self.storing,
        }.get(api_type, TypeCounts())


@dataclass(frozen=True)
class Workload:
    """How much input the app processes in one run."""

    items: int = 4
    image_size: int = 32
    seed: int = 0
    keys: str = ""  # key presses queued into the GUI


@dataclass
class AppResult:
    """What the application itself produced."""

    outputs: Dict[str, Any] = field(default_factory=dict)
    items_processed: int = 0
    crashes_survived: int = 0


class Application:
    """Base class: subclasses override :meth:`setup` and :meth:`run`."""

    def __init__(self, spec: AppSpec) -> None:
        self.spec = spec

    def setup(self, kernel: SimKernel, workload: Workload) -> None:
        """Create the input files/devices this app consumes."""

    def run(self, gateway: ApiGateway, workload: Workload) -> AppResult:
        raise NotImplementedError

    @property
    def schedule(self) -> Tuple[CallSite, ...]:
        """The static call sites (for Table 6 accounting); may be empty
        for fully hand-written apps that report sites another way."""
        return ()

    @property
    def annotations(self) -> tuple:
        """MemoryLayout annotations of this app's protected host data
        (Section 4.4.3: users must describe custom data structures for
        the temporal permission enforcement)."""
        return ()

    def schedule_counts(self) -> Dict[APIType, TypeCounts]:
        """unique/total per type, computed from the schedule."""
        by_type: Dict[APIType, Dict[str, int]] = {}
        for site in self.schedule:
            key = f"{site.framework}.{site.api}"
            by_type.setdefault(site.api_type, {})
            by_type[site.api_type][key] = by_type[site.api_type].get(key, 0) + 1
        return {
            api_type: TypeCounts(unique=len(sites), total=sum(sites.values()))
            for api_type, sites in by_type.items()
        }


#: Results larger than this are computed but not carried forward as the
#: pipeline's current data (prevents repeated growth operators — tile,
#: concat, upsample — from inflating the working set unboundedly, the way
#: real programs crop/stride between stages).
MAX_CARRIED_BYTES = 512 * 1024


class PipelineApp(Application):
    """Generic pipeline application driven by a call-site schedule.

    The engine keeps a *current* data handle; loading sites replace it,
    unary/binary processing sites transform it, visualizing sites show
    it, storing sites persist it.  Sites whose result is not a data
    object (scalars, rect lists) leave the current handle unchanged,
    mirroring how real programs compute summaries off to the side.
    """

    def __init__(self, spec: AppSpec, schedule: Sequence[CallSite]) -> None:
        super().__init__(spec)
        self._schedule = tuple(schedule)

    @property
    def schedule(self) -> Tuple[CallSite, ...]:
        return self._schedule

    # -- input preparation ----------------------------------------------

    def input_path(self, item: int) -> str:
        return f"/data/{self.spec.name}/input-{item}.png"

    def dataset_dir(self) -> str:
        return f"/data/{self.spec.name}/dataset"

    def output_path(self, item: int, site_index: int) -> str:
        return f"/out/{self.spec.name}/result-{item}-{site_index}"

    def setup(self, kernel: SimKernel, workload: Workload) -> None:
        rng = np.random.default_rng(workload.seed + self.spec.sample_id)
        for item in range(workload.items):
            image = rng.integers(
                0, 256, size=(workload.image_size, workload.image_size, 3)
            ).astype(np.float64)
            kernel.fs.write_file(self.input_path(item), image)
        kernel.fs.write_file(
            f"{self.dataset_dir()}/index", [f"batch-{i}" for i in range(2)]
        )
        for i in range(2):
            kernel.fs.write_file(
                f"{self.dataset_dir()}/batch-{i}",
                rng.normal(size=(workload.image_size, workload.image_size)),
            )
        if workload.keys:
            kernel.gui.queue_keys(workload.keys)
        # Host the remote content the hub/get_file loaders pull.
        from repro.frameworks.base import Model

        network = kernel.devices.network
        network.host_content(
            "https://model-zoo.example/resnet.pt",
            Model({"w": rng.normal(size=(4, 4))}, architecture="resnet-zoo"),
        )
        network.host_content(
            "https://datasets.example/flowers.tgz", rng.normal(size=(8, 8))
        )

    # -- execution ---------------------------------------------------------

    #: Every evaluated program keeps some configuration in host memory —
    #: the critical data the Section 5.3 corruption analysis targets.
    CONFIG_TAG = "app.config"

    def run(self, gateway: ApiGateway, workload: Workload) -> AppResult:
        result = AppResult()
        gateway.host_alloc(self.CONFIG_TAG, {
            "app": self.spec.name, "mode": "eval", "threshold": 0.5,
        })
        init_sites = [s for s in self._schedule if not s.loop]
        loop_sites = [s for s in self._schedule if s.loop]
        state: Dict[str, Any] = {"current": None, "classifier": None}

        for index, site in enumerate(init_sites):
            self._execute_site(gateway, site, state, item=0, site_index=index,
                               result=result)

        for item in range(workload.items):
            for index, site in enumerate(loop_sites):
                for _ in range(max(site.repeat, 1)):
                    self._execute_site(
                        gateway, site, state, item=item,
                        site_index=index, result=result,
                    )
            result.items_processed += 1
        return result

    def _execute_site(
        self,
        gateway: ApiGateway,
        site: CallSite,
        state: Dict[str, Any],
        item: int,
        site_index: int,
        result: AppResult,
    ) -> None:
        value = self._dispatch(gateway, site, state, item, site_index)
        carryable = (
            self._is_data(value)
            and not self._is_model(value)
            and 0 < self._size_of(value) <= MAX_CARRIED_BYTES
        )
        if site.argspec in (
            ArgSpec.SOURCE_PATH, ArgSpec.SOURCE_DIR,
            ArgSpec.SOURCE_CAMERA, ArgSpec.SOURCE_NONE,
        ):
            if carryable:
                state["current"] = value
            if (
                self._is_model(value)
                or site.api.startswith("CascadeClassifier")
                or site.api == "Net"
            ):
                state["classifier"] = value
        elif site.argspec in (ArgSpec.UNARY, ArgSpec.BINARY, ArgSpec.DETECT):
            if carryable:
                state["current"] = value
        if site.api_type is APIType.STORING:
            result.outputs[f"{site.api}:{item}:{site_index}"] = True

    def _dispatch(
        self,
        gateway: ApiGateway,
        site: CallSite,
        state: Dict[str, Any],
        item: int,
        site_index: int,
    ) -> Any:
        current = state.get("current")
        if current is None:
            current = self._seed_value(gateway)
            state["current"] = current
        spec = site.argspec
        if spec is ArgSpec.SOURCE_PATH:
            return gateway.call(site.framework, site.api, self.input_path(item))
        if spec is ArgSpec.SOURCE_DIR:
            return gateway.call(site.framework, site.api, self.dataset_dir())
        if spec is ArgSpec.SOURCE_CAMERA:
            capture = state.get("capture")
            if capture is None:
                capture = gateway.call(site.framework, "VideoCapture", 0)
                state["capture"] = capture
            return gateway.call(site.framework, site.api, capture)
        if spec is ArgSpec.SOURCE_NONE:
            return gateway.call(site.framework, site.api)
        if spec is ArgSpec.UNARY:
            return gateway.call(site.framework, site.api, current)
        if spec is ArgSpec.BINARY:
            return gateway.call(site.framework, site.api, current, current)
        if spec is ArgSpec.DETECT:
            classifier = state.get("classifier")
            if classifier is None:
                # All detector-style sites accept a generic model object;
                # the OpenCV constructor is the one every evaluated app
                # (main or secondary framework) has available.
                classifier = gateway.call("opencv", "CascadeClassifier")
                state["classifier"] = classifier
            return gateway.call(site.framework, site.api, classifier, current)
        if spec is ArgSpec.NONE:
            return gateway.call(site.framework, site.api)
        if spec is ArgSpec.SHOW:
            return gateway.call(
                site.framework, site.api, f"{self.spec.name}-window", current
            )
        if spec is ArgSpec.GUI_ONLY:
            return gateway.call(site.framework, site.api)
        if spec is ArgSpec.WINDOW_NAME:
            return gateway.call(
                site.framework, site.api, f"{self.spec.name}-window"
            )
        if spec is ArgSpec.SINK:
            return gateway.call(
                site.framework, site.api,
                self.output_path(item, site_index), current,
            )
        if spec is ArgSpec.SINK_OBJ:
            return gateway.call(
                site.framework, site.api,
                current, self.output_path(item, site_index),
            )
        if spec is ArgSpec.SINK_LIST:
            return gateway.call(
                site.framework, site.api,
                self.output_path(item, site_index), [current],
            )
        raise ValueError(f"unhandled argspec {spec}")

    def _seed_value(self, gateway: ApiGateway) -> Any:
        """A starting data object for schedules that process before loading."""
        rng = np.random.default_rng(self.spec.sample_id)
        from repro.frameworks.base import Mat

        return Mat(rng.normal(size=(16, 16)))

    @staticmethod
    def _is_data(value: Any) -> bool:
        from repro.core.rpc import RemoteHandle

        return isinstance(value, (DataObject, RemoteHandle, np.ndarray))

    @staticmethod
    def _size_of(value: Any) -> int:
        from repro.core.rpc import RemoteHandle

        if isinstance(value, RemoteHandle):
            return value.payload_bytes
        return int(getattr(value, "nbytes", 0))

    @staticmethod
    def _is_model(value: Any) -> bool:
        """Model objects feed detectors, not the image pipeline."""
        from repro.core.rpc import RemoteHandle
        from repro.frameworks.base import Model

        if isinstance(value, Model):
            return True
        return isinstance(value, RemoteHandle) and value.ref.kind == "model"


def execute_app(
    app: Application,
    gateway: ApiGateway,
    workload: Optional[Workload] = None,
    setup: bool = True,
) -> RunReport:
    """Run an application and collect the virtual-metrics report."""
    workload = workload if workload is not None else Workload()
    kernel = gateway.kernel
    if setup:
        app.setup(kernel, workload)
    start_ns = kernel.clock.now_ns
    ipc_before = kernel.ipc.snapshot()
    failed = False
    error = ""
    result: Optional[AppResult] = None
    try:
        result = app.run(gateway, workload)
    except Exception as exc:  # the run itself is the experiment
        failed = True
        error = f"{type(exc).__name__}: {exc}"
    ipc_delta = kernel.ipc.delta_since(ipc_before)
    machine = getattr(gateway, "machine", None)
    return RunReport(
        app_name=app.spec.name,
        gateway=type(gateway).__name__,
        virtual_seconds=(kernel.clock.now_ns - start_ns) / 1e9,
        ipc_messages=ipc_delta.messages,
        ipc_bytes=ipc_delta.message_bytes,
        lazy_copies=ipc_delta.lazy_copies,
        lazy_copy_bytes=ipc_delta.lazy_copy_bytes,
        nonlazy_copies=ipc_delta.nonlazy_copies,
        nonlazy_copy_bytes=ipc_delta.nonlazy_copy_bytes,
        zero_copy_transfers=ipc_delta.zero_copy_transfers,
        zero_copy_bytes=ipc_delta.zero_copy_bytes,
        cow_downgrades=ipc_delta.cow_downgrades,
        cow_bytes=ipc_delta.cow_bytes,
        framed_messages=ipc_delta.framed_messages,
        api_calls=gateway.stats.total_calls(),
        transitions=machine.transition_count() if machine else 0,
        protected_buffers=machine.protected_total if machine else 0,
        crashes=getattr(gateway, "total_crashes", lambda: 0)(),
        restarts=getattr(gateway, "total_restarts", lambda: 0)(),
        processes=getattr(gateway, "process_count", 1),
        failed=failed,
        error=error,
        result=result,
    )
