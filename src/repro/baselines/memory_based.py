"""Memory-based isolation (Wedge-style [11]): permissions, no processes.

A single process; a (sophisticated) data-dependency analysis marks the
annotated critical variables read-only once they are initialized.  Memory
corruption of those variables traps — but the APIs' execution is not
isolated at all, so a DoS payload still takes the whole application down
and compromised API code keeps every ambient privilege.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.base import TechniqueInfo
from repro.core.gateway import NativeGateway
from repro.sim.kernel import SimKernel
from repro.sim.memory import Buffer, Permission
from repro.sim.process import SimProcess


class MemoryBasedIsolation(NativeGateway):
    """Single-process, read-only critical data."""

    info = TechniqueInfo(
        key="memory_based", label="Memory-based data isolation", figure="-"
    )

    #: Variables the dependency analysis proved are never legitimately
    #: written after initialization.
    PROTECTED_TAGS = frozenset({
        "template.QBlocks.orig", "template", "answers", "self.speed",
        "userprofile",
    })

    def host_alloc(self, tag: str, payload: Any) -> Buffer:
        buffer = super().host_alloc(tag, payload)
        if tag in self.PROTECTED_TAGS:
            self.host.memory.protect_buffer(buffer.buffer_id, Permission.ro())
        return buffer

    @property
    def process_count(self) -> int:
        return 1

    def total_crashes(self) -> int:
        return 1 if not self.host.alive else 0

    def total_restarts(self) -> int:
        return 0
