"""Code-based API isolation (Fig. 2-a, e.g. Privman [44]).

The host application's *code* is manually partitioned into three
processes: P1 runs the initialization code and the input-loading API
(``imread``) — and therefore also holds the ``template`` variable,
unprotected; P2 runs ``imshow``; P3 runs the remaining APIs together
with the rest of the application code.

Because the annotation is manual and code-centric, (a) critical data is
co-located with the vulnerable loader, and (b) isolating ``imshow`` away
from the process that owns the GUI globals breaks the application's
windowing functionality — both failure modes the paper calls out.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.base import Partitioned, TechniqueInfo
from repro.core.apitypes import APIType
from repro.frameworks.base import FrameworkAPI
from repro.sim.memory import Buffer


class CodeApiIsolation(Partitioned):
    """Three code partitions, data left wherever the code put it."""

    info = TechniqueInfo(
        key="code_api", label="Code-based API isolation", figure="2-a"
    )

    #: APIs the (manual) annotation pulled into their own processes.
    P1_APIS = frozenset({"imread", "imreadmulti", "cvLoad"})
    P2_APIS = frozenset({"imshow"})

    #: Host variables the annotator left in P1 next to the loader code.
    P1_DATA_TAGS = frozenset({"template.QBlocks.orig", "template"})

    def _partition_key(self, api: FrameworkAPI) -> Optional[str]:
        if api.spec.name in self.P1_APIS:
            return "p1-init-and-load"
        if api.spec.name in self.P2_APIS:
            self._note_gui_breakage(api)
            return "p2-imshow"
        # The third partition holds the remaining APIs *and* the rest of
        # the application code (Fig. 2-a), so those calls are local.
        return None

    def _note_gui_breakage(self, api: FrameworkAPI) -> None:
        message = (
            f"{api.spec.qualname}: GUI window global lives in another "
            "process; windowing functionality is broken"
        )
        if message not in self.functionality_warnings:
            self.functionality_warnings.append(message)

    def host_alloc(self, tag: str, payload: Any) -> Buffer:
        """Critical init data lands in P1 next to the loading code."""
        if tag in self.P1_DATA_TAGS:
            process = self._worker("p1-init-and-load")
            buffer = process.memory.alloc_object(payload, tag=tag)
            self._host_buffers[tag] = buffer.buffer_id
            self._foreign_buffers = getattr(self, "_foreign_buffers", {})
            self._foreign_buffers[tag] = process
            return buffer
        return super().host_alloc(tag, payload)

    def _buffer_home(self, tag: str):
        foreign = getattr(self, "_foreign_buffers", {})
        return foreign.get(tag, self.host)

    def host_read(self, tag: str) -> Any:
        process = self._buffer_home(tag)
        if process is not self.host:
            # Reading P1-resident data from P3 code costs an IPC round.
            channel = self._channels[process.pid]
            channel.request.send(self.host.pid, "read", tag)
            channel.request.receive()
            value = process.memory.load(self._host_buffer_id(tag))
            channel.response.send(process.pid, "value", value)
            channel.response.receive()
            return value
        return super().host_read(tag)

    def host_write(self, tag: str, payload: Any) -> None:
        process = self._buffer_home(tag)
        if process is not self.host:
            channel = self._channels[process.pid]
            channel.request.send(self.host.pid, "write", payload)
            channel.request.receive()
            process.memory.store(self._host_buffer_id(tag), payload)
            channel.response.send(process.pid, "ack", True)
            channel.response.receive()
            return
        super().host_write(tag, payload)
