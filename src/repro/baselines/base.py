"""Shared machinery for the five prior isolation techniques of Table 1.

Every baseline is an :class:`~repro.core.gateway.ApiGateway`, so the same
application code runs under each.  The common class provides partitioned
execution with **eager** data movement (none of the baselines have lazy
data copy): object arguments and results are serialized into the RPC
messages and physically copied between address spaces, which is exactly
the traffic Table 9 compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.apitypes import APIType
from repro.core.gateway import ApiGateway, CallRecord
from repro.errors import (
    FrameworkCrash,
    ProcessCrashed,
    SegmentationFault,
    SyscallDenied,
)
from repro.frameworks.base import DataObject, ExecutionContext, FrameworkAPI
from repro.sim.filters import SyscallFilter, permissive_filter
from repro.sim.ipc import ChannelPair
from repro.sim.kernel import SimKernel
from repro.sim.memory import Buffer
from repro.sim.process import SimProcess


@dataclass
class TechniqueInfo:
    """Descriptive metadata used by the Table 1/9/10 benches."""

    key: str
    label: str
    figure: str  # which Fig. 2 panel illustrates it


class Partitioned(ApiGateway):
    """Base gateway for techniques that run APIs in worker processes."""

    info = TechniqueInfo(key="base", label="abstract", figure="-")

    def __init__(self, kernel: SimKernel, host: Optional[SimProcess] = None) -> None:
        if host is None:
            host = kernel.spawn("host-program", role="host", charge=False)
        super().__init__(kernel, host)
        self._workers: Dict[str, SimProcess] = {}
        self._contexts: Dict[int, ExecutionContext] = {}
        self._channels: Dict[int, ChannelPair] = {}
        self.crashes = 0
        self.functionality_warnings: List[str] = []

    # -- worker management ------------------------------------------------

    def _worker(
        self, key: str, syscall_filter: Optional[SyscallFilter] = None
    ) -> SimProcess:
        process = self._workers.get(key)
        if process is None or not process.alive:
            process = self.kernel.spawn(
                f"worker:{key}",
                syscall_filter=syscall_filter if syscall_filter is not None
                else permissive_filter(),
                role="agent",
            )
            self._workers[key] = process
            self._contexts[process.pid] = ExecutionContext(self.kernel, process)
            self._channels[process.pid] = self.kernel.channel_pair(
                f"{self.info.key}:{key}"
            )
        return process

    def worker_processes(self) -> List[SimProcess]:
        return list(self._workers.values())

    @property
    def process_count(self) -> int:
        return 1 + len(self._workers)

    def total_crashes(self) -> int:
        return self.crashes

    def total_restarts(self) -> int:
        return 0

    # -- partitioning decision (subclass hook) -----------------------------

    def _partition_key(self, api: FrameworkAPI) -> Optional[str]:
        """Which worker runs this API; ``None`` = the host program itself."""
        raise NotImplementedError

    def _worker_filter(self, key: str) -> Optional[SyscallFilter]:
        return None  # permissive unless a technique restricts syscalls

    #: Techniques that keep results in the worker via shared memory set
    #: this False (library-level sharing, Fig. 2-c); True moves all data
    #: through the host on every call (Fig. 2-d).
    eager_data_copies = True

    # -- dispatch --------------------------------------------------------

    def call(self, framework: str, name: str, *args: Any, **kwargs: Any) -> Any:
        api = self._resolve_api(framework, name)
        spec = api.spec
        self.stats.record(CallRecord(
            framework=spec.framework, name=spec.name,
            qualname=spec.qualname, api_type=spec.ground_truth,
        ))
        key = self._partition_key(api)
        if key is None:
            ctx = self._host_context()
            return ctx.invoke(api, *args, **kwargs)
        process = self._worker(key, self._worker_filter(key))
        channel = self._channels[process.pid]
        ctx = self._contexts[process.pid]
        request_payload = args if self.eager_data_copies else tuple(
            "(shared)" for _ in args
        )
        channel.request.send(self.host.pid, "request", request_payload)
        channel.request.receive()
        if self.eager_data_copies:
            for value in args:
                if isinstance(value, DataObject):
                    self.kernel.transfer(
                        self.host, process, value,
                        tag="baseline-arg", lazy=False, count_message=False,
                    )
        try:
            result = ctx.invoke(api, *args, **kwargs)
        except (ProcessCrashed, SyscallDenied, SegmentationFault) as exc:
            process.crash(str(exc))
            self.crashes += 1
            raise FrameworkCrash(spec.qualname, exc) from exc
        response_payload = result if self.eager_data_copies else "(shared)"
        channel.response.send(process.pid, "response", response_payload)
        channel.response.receive()
        if self.eager_data_copies and isinstance(result, DataObject):
            self.kernel.transfer(
                process, self.host, result,
                tag="baseline-result", lazy=False, count_message=False,
            )
        return result

    def _host_context(self) -> ExecutionContext:
        ctx = self._contexts.get(self.host.pid)
        if ctx is None:
            ctx = ExecutionContext(self.kernel, self.host)
            self._contexts[self.host.pid] = ctx
        return ctx

    def materialize(self, value: Any) -> Any:
        if isinstance(value, DataObject):
            return value.data
        return value
