"""The five prior isolation techniques FreePart is compared against.

``TECHNIQUES`` maps the Table 1 row keys to gateway factories; each
factory takes a :class:`~repro.sim.kernel.SimKernel` and returns a fresh
gateway, so the evaluation harness can run the same application under
every technique.
"""

from typing import Callable, Dict

from repro.baselines.base import Partitioned, TechniqueInfo
from repro.baselines.code_api import CodeApiIsolation
from repro.baselines.code_api_data import CodeApiDataIsolation
from repro.baselines.lib_entire import EntireLibraryIsolation
from repro.baselines.lib_individual import IndividualApiIsolation
from repro.baselines.memory_based import MemoryBasedIsolation
from repro.core.gateway import ApiGateway, NativeGateway
from repro.sim.kernel import SimKernel

GatewayFactory = Callable[[SimKernel], ApiGateway]

TECHNIQUES: Dict[str, GatewayFactory] = {
    "none": NativeGateway,
    "code_api": CodeApiIsolation,
    "code_api_data": CodeApiDataIsolation,
    "lib_entire": EntireLibraryIsolation,
    "lib_individual": IndividualApiIsolation,
    "memory_based": MemoryBasedIsolation,
}

TECHNIQUE_LABELS = {
    "none": "No isolation",
    "code_api": "Code-based API isolation",
    "code_api_data": "Code-based API and data isolation",
    "lib_entire": "Library-based (entire library)",
    "lib_individual": "Library-based (individual APIs)",
    "memory_based": "Memory-based isolation",
    "freepart": "FreePart",
}

__all__ = [
    "CodeApiDataIsolation",
    "CodeApiIsolation",
    "EntireLibraryIsolation",
    "GatewayFactory",
    "IndividualApiIsolation",
    "MemoryBasedIsolation",
    "Partitioned",
    "TECHNIQUES",
    "TECHNIQUE_LABELS",
    "TechniqueInfo",
]
