"""Code-based API **and data** isolation (Fig. 2-b, PtrSplit/PM/SOAAP).

On top of the three code partitions, an accurate dependency analysis
moves each annotated critical variable into its own process.  The data is
now protected from a compromised loader — but every access to it from the
application's hot loops is an IPC round trip carrying the full payload,
the "more than 800 IPCs for each sample input" cost the paper measures.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.baselines.base import Partitioned, TechniqueInfo
from repro.baselines.code_api import CodeApiIsolation
from repro.frameworks.base import DataObject, FrameworkAPI
from repro.sim.memory import Buffer
from repro.sim.process import SimProcess


class CodeApiDataIsolation(Partitioned):
    """Five processes: three code partitions + one per critical variable."""

    info = TechniqueInfo(
        key="code_api_data", label="Code-based API and data isolation",
        figure="2-b",
    )

    P1_APIS = CodeApiIsolation.P1_APIS
    P2_APIS = CodeApiIsolation.P2_APIS

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._data_homes: Dict[str, SimProcess] = {}

    def _partition_key(self, api: FrameworkAPI) -> Optional[str]:
        if api.spec.name in self.P1_APIS:
            return "p1-init-and-load"
        if api.spec.name in self.P2_APIS:
            return "p2-imshow"
        # Remaining APIs run with the application code (Fig. 2-b).
        return None

    # -- per-variable data processes ---------------------------------------

    def host_alloc(self, tag: str, payload: Any) -> Buffer:
        """Every annotated variable gets its own isolated process."""
        home = self._worker(f"data:{tag}")
        self._data_homes[tag] = home
        buffer = home.memory.alloc_object(payload, tag=tag)
        self._host_buffers[tag] = buffer.buffer_id
        return buffer

    def _data_round_trip(self, tag: str, payload: Any = None,
                         mutate: bool = True) -> Any:
        """One IPC round to the variable's process, carrying the data.

        ``mutate=False`` models a write-back of working data (the traffic
        is real, the canonical variable keeps its value) — used for the
        per-call synchronization of hot-loop accesses.
        """
        home = self._data_homes[tag]
        channel = self._channels[home.pid]
        channel.request.send(self.host.pid, "access", tag)
        channel.request.receive()
        if payload is None:
            value = home.memory.load(self._host_buffer_id(tag))
            channel.response.send(home.pid, "value", value)
            channel.response.receive()
            self.kernel.transfer(home, self.host, value, tag=f"fetch:{tag}",
                                 lazy=False, count_message=False)
            return value
        if mutate:
            home.memory.store(self._host_buffer_id(tag), payload)
        channel.response.send(home.pid, "ack", True)
        channel.response.receive()
        self.kernel.transfer(self.host, home, payload, tag=f"store:{tag}",
                             lazy=False, count_message=False)
        return None

    def host_read(self, tag: str) -> Any:
        if tag in self._data_homes:
            return self._data_round_trip(tag)
        return super().host_read(tag)

    def host_write(self, tag: str, payload: Any) -> None:
        if tag in self._data_homes:
            self._data_round_trip(tag, payload=payload)
            return
        super().host_write(tag, payload)

    # -- hot-loop amplification --------------------------------------------

    def call(self, framework: str, name: str, *args: Any, **kwargs: Any) -> Any:
        # Framework APIs that operate on an isolated variable's current
        # value must page it in and write it back around the call — the
        # per-access IPC the paper's overhead analysis attributes to this
        # technique ("more than 800 IPCs for each sample input").  Only
        # the working-data variables (images) are touched per call; small
        # configuration variables sync on their explicit accesses.
        touched = [
            tag for tag in self._data_homes
            if self._tag_is_live(tag) and self._holds_working_data(tag)
        ]
        for tag in touched:
            if any(isinstance(a, DataObject) for a in args):
                self._data_round_trip(tag)
        result = super().call(framework, name, *args, **kwargs)
        for tag in touched:
            if isinstance(result, DataObject):
                self._data_round_trip(tag, payload=result, mutate=False)
        return result

    def _holds_working_data(self, tag: str) -> bool:
        home = self._data_homes[tag]
        buffer = home.memory.find_buffer(tag)
        return buffer is not None and isinstance(buffer.payload, DataObject)

    def _tag_is_live(self, tag: str) -> bool:
        return tag in self._data_homes and self._data_homes[tag].alive
