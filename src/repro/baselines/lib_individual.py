"""Library-based isolation of individual APIs (Fig. 2-d, sandboxed-api).

Every framework API runs in its own sandboxed process with a tight
per-API syscall filter.  Security is strong — but the entire data of the
API's arguments and results is transferred between processes on every
call (the paper measures 203 transfers / 355 MB for a single 1.7 MB
image), which is where the 42.7 GB / >100% overhead row of Table 9 comes
from.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.base import Partitioned, TechniqueInfo
from repro.frameworks.base import FrameworkAPI
from repro.frameworks.registry import get_api
from repro.sim.filters import SyscallFilter


class IndividualApiIsolation(Partitioned):
    """One sandbox process per framework API."""

    info = TechniqueInfo(
        key="lib_individual",
        label="Library-based isolation (individual APIs)",
        figure="2-d",
    )

    eager_data_copies = True

    def _partition_key(self, api: FrameworkAPI) -> Optional[str]:
        return api.spec.qualname

    def _worker_filter(self, key: str) -> Optional[SyscallFilter]:
        """Tight per-API allowlist (the sandbox knows the one API it runs)."""
        spec = self._spec_for(key)
        if spec is None:
            return None
        allowed = set(spec.syscalls) | set(spec.init_syscalls)
        allowed.add("exit_group")
        built = SyscallFilter(allowed=allowed)
        built.seal()
        return built

    def _spec_for(self, qualname: str):
        for record in self.stats.calls[::-1]:
            if record.qualname == qualname:
                return get_api(record.framework, record.name).spec
        return None

    def api_process_count(self) -> int:
        """How many sandbox processes exist (Table 10's 86/87 column)."""
        return len(self._workers)
