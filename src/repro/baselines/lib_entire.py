"""Library-based isolation of the entire library (Fig. 2-c, Cali/RLBox).

Two processes: the host application and one library process that runs
*every* framework API.  Variables flowing between APIs are shared with
the library process via shared memory, so the per-call data traffic is
nearly zero — but a single exploited API compromises every other API and
every shared variable, and the union of syscalls needed by all API types
is so broad that syscall restriction is ineffective (footnote 3 of the
paper), so the permissive filter below is the honest model.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.baselines.base import Partitioned, TechniqueInfo
from repro.frameworks.base import FrameworkAPI


class EntireLibraryIsolation(Partitioned):
    """One process for the whole library, shared-memory data plane."""

    info = TechniqueInfo(
        key="lib_entire", label="Library-based isolation (entire library)",
        figure="2-c",
    )

    # Shared memory: object arguments/results are not copied per call.
    eager_data_copies = False

    def _partition_key(self, api: FrameworkAPI) -> Optional[str]:
        return "library"

    def library_process(self):
        return self._worker("library")

    def host_alloc(self, tag: str, payload: Any):
        """Variables the library operates on are mapped into the shared
        segment (i.e. visible from the library process); scalar host state
        stays private to the application."""
        from repro.frameworks.base import DataObject

        if isinstance(payload, DataObject):
            library = self.library_process()
            buffer = library.memory.alloc_object(payload, tag=tag)
            self._host_buffers[tag] = buffer.buffer_id
            self._shared_tags = getattr(self, "_shared_tags", set())
            self._shared_tags.add(tag)
            return buffer
        return super().host_alloc(tag, payload)

    def host_read(self, tag: str) -> Any:
        if tag in getattr(self, "_shared_tags", set()):
            return self.library_process().memory.load(self._host_buffer_id(tag))
        return super().host_read(tag)

    def host_write(self, tag: str, payload: Any) -> None:
        if tag in getattr(self, "_shared_tags", set()):
            self.library_process().memory.store(self._host_buffer_id(tag), payload)
            return
        super().host_write(tag, payload)
