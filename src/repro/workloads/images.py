"""Synthetic image workloads (the ImageNet substitute, DESIGN.md §2).

Deterministic, seeded generators for the image datasets the evaluation
feeds its applications.  Content classes mimic the structure the
mini-framework operators respond to: blobs for detectors, gradients for
filters, marked sheets for OMRChecker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.kernel import SimKernel


def noise_image(seed: int, size: int = 32, channels: int = 3) -> np.ndarray:
    """Uniform-noise image (the generic input)."""
    rng = np.random.default_rng(seed)
    shape = (size, size, channels) if channels > 1 else (size, size)
    return rng.integers(0, 256, size=shape).astype(np.float64)


def gradient_image(seed: int, size: int = 32) -> np.ndarray:
    """Smooth gradient + noise (exercises edge/derivative filters)."""
    rng = np.random.default_rng(seed)
    ramp = np.linspace(0, 255, size)
    base = np.add.outer(ramp, ramp) / 2.0
    return base + rng.normal(scale=4.0, size=(size, size))


def blob_image(
    seed: int, size: int = 32, blobs: int = 3, intensity: float = 255.0
) -> np.ndarray:
    """Dark field with bright rectangular blobs (detector targets)."""
    rng = np.random.default_rng(seed)
    image = np.zeros((size, size), dtype=np.float64)
    for _ in range(blobs):
        w = int(rng.integers(2, max(3, size // 4)))
        h = int(rng.integers(2, max(3, size // 4)))
        x = int(rng.integers(0, size - w))
        y = int(rng.integers(0, size - h))
        image[y:y + h, x:x + w] = intensity
    image += rng.normal(scale=2.0, size=image.shape)
    return image


def omr_sheet(
    boxes: List[List[int]], marked: List[bool], size: int = 20, seed: int = 0
) -> np.ndarray:
    """An OMR answer sheet with the given boxes marked or blank."""
    rng = np.random.default_rng(seed)
    sheet = np.zeros((size, size, 3), dtype=np.float64)
    for (x, y, w, h), is_marked in zip(boxes, marked):
        if is_marked:
            sheet[y:y + h, x:x + w] = 255.0
    return sheet + rng.normal(scale=2.0, size=sheet.shape)


@dataclass(frozen=True)
class ImageDataset:
    """A seeded, materializable image dataset."""

    name: str
    count: int
    size: int = 32
    kind: str = "noise"  # noise | gradient | blob
    seed: int = 0

    def path(self, index: int) -> str:
        return f"/datasets/{self.name}/img-{index:05d}.png"

    def generate(self, index: int) -> np.ndarray:
        seed = self.seed * 100_003 + index
        if self.kind == "gradient":
            return gradient_image(seed, size=self.size)
        if self.kind == "blob":
            return blob_image(seed, size=self.size)
        return noise_image(seed, size=self.size)

    def materialize(self, kernel: SimKernel) -> List[str]:
        """Write every image into the simulated filesystem."""
        paths = []
        for index in range(self.count):
            path = self.path(index)
            kernel.fs.write_file(path, self.generate(index))
            paths.append(path)
        return paths

    def __iter__(self) -> Iterator[np.ndarray]:
        return (self.generate(index) for index in range(self.count))


def standard_eval_dataset(items: int = 8, size: int = 32) -> ImageDataset:
    """The default dataset the overhead benches use."""
    return ImageDataset(name="eval", count=items, size=size, kind="blob", seed=7)
