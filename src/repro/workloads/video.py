"""Synthetic video workloads: deterministic camera-frame sources.

The camera device takes a ``frame_source`` callable; these factories
produce sources with controlled content so tracking apps (drone,
EyeLike, FaceTracker) behave deterministically.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.devices import Camera, FrameSource


def moving_blob_source(
    size: int = 32, blob: int = 4, step: int = 1, seed: int = 0
) -> FrameSource:
    """Frames with one bright blob moving rightwards ``step`` px/frame."""

    def source(index: int) -> Optional[np.ndarray]:
        rng = np.random.default_rng(seed * 7919 + index)
        frame = np.zeros((size, size, 3), dtype=np.float64)
        x = (2 + index * step) % max(size - blob, 1)
        y = size // 2 - blob // 2
        frame[y:y + blob, x:x + blob] = 255.0
        return frame + rng.normal(scale=1.5, size=frame.shape)

    return source


def static_scene_source(size: int = 32, seed: int = 3) -> FrameSource:
    """Identical frames plus per-frame sensor noise."""
    rng0 = np.random.default_rng(seed)
    scene = rng0.integers(0, 256, size=(size, size, 3)).astype(np.float64)

    def source(index: int) -> Optional[np.ndarray]:
        rng = np.random.default_rng(seed * 104_729 + index)
        return scene + rng.normal(scale=2.0, size=scene.shape)

    return source


def install_camera(
    kernel,
    source: FrameSource,
    frame_limit: Optional[int] = None,
) -> Camera:
    """Replace the kernel's camera with one driven by ``source``."""
    camera = Camera(frame_source=source, frame_limit=frame_limit)
    kernel.devices.camera = camera
    return camera
