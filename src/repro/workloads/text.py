"""Synthetic text workloads (the FAIRSEQ-style sequence inputs).

Deterministic token sequences and CSV tables standing in for the "text
data (a few MBs)" the paper feeds its text-processing applications.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sim.kernel import SimKernel

_VOCABULARY = (
    "the model learns a latent representation of each input token and "
    "predicts the next symbol from context attention layers norm residual "
    "gradient descent batch sequence decoder encoder"
).split()


def token_sequence(seed: int, length: int = 64) -> List[str]:
    """Deterministic token-string sequence."""
    rng = np.random.default_rng(seed)
    return [_VOCABULARY[int(i)] for i in rng.integers(0, len(_VOCABULARY), length)]


def token_ids(seed: int, length: int = 64) -> np.ndarray:
    """Deterministic token-id sequence."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, len(_VOCABULARY), size=length).astype(np.int64)


def corpus(kernel: SimKernel, name: str = "corpus", documents: int = 4,
           length: int = 64, seed: int = 11) -> List[str]:
    """Write a document corpus into the simulated filesystem."""
    paths = []
    for index in range(documents):
        path = f"/datasets/{name}/doc-{index:04d}.txt"
        kernel.fs.write_file(path, " ".join(token_sequence(seed + index, length)))
        paths.append(path)
    return paths


def score_table(rows: int = 8, seed: int = 13) -> List[list]:
    """A CSV-shaped table (the OMRChecker output format)."""
    rng = np.random.default_rng(seed)
    table: List[list] = [["sheet", "score"]]
    for index in range(rows):
        table.append([index, int(rng.integers(0, 4))])
    return table
