"""Synthetic workloads: seeded image/video/text datasets.

Substitutes for the paper's 144 GB ImageNet-derived corpus and per-app
demo inputs (DESIGN.md §2): same code paths, deterministic content.
"""

from repro.workloads.images import (
    ImageDataset,
    blob_image,
    gradient_image,
    noise_image,
    omr_sheet,
    standard_eval_dataset,
)
from repro.workloads.text import corpus, score_table, token_ids, token_sequence
from repro.workloads.video import (
    install_camera,
    moving_blob_source,
    static_scene_source,
)

__all__ = [
    "ImageDataset",
    "blob_image",
    "corpus",
    "gradient_image",
    "install_camera",
    "moving_blob_source",
    "noise_image",
    "omr_sheet",
    "score_table",
    "standard_eval_dataset",
    "static_scene_source",
    "token_ids",
    "token_sequence",
]
