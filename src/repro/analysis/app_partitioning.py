"""Application-based partitioning — the road not taken (Appendix A.2.1).

The paper motivates *framework*-based hooking by showing what partitioning
the application's own source requires: when a statement is moved to
another process, enclosing ``try/except`` structures must be **duplicated
into every partition** (or exceptions stop propagating, Fig. 16), and a
partitioned statement inside a loop needs the receiving partition wrapped
in a ``while True`` service loop (or a process is spawned per iteration,
Fig. 17).

This module implements that transformation over real Python source with
``ast``: given a function and an assignment of callee names to
partitions, it produces the partitioned functions with IPC stubs —
reproducing both structural challenges — and reports how much structure
had to be duplicated.  The comparison bench shows why the paper hooks
the framework boundary instead.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import AnalysisError

MAIN_PARTITION = "partition1"


@dataclass
class PartitionedProgram:
    """Result of partitioning one function's source."""

    partitions: Dict[str, str]          # partition name -> generated source
    ipc_sites: int                      # IPC statements inserted
    duplicated_try_blocks: int          # Fig. 16: try/except copied
    service_loops: int                  # Fig. 17: while-True wrappers added
    notes: List[str] = field(default_factory=list)

    def source_of(self, name: str) -> str:
        try:
            return self.partitions[name]
        except KeyError:
            raise AnalysisError(f"no partition named {name!r}") from None


def _call_names(node: ast.AST) -> Set[str]:
    """All simple callee names appearing in a statement."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Name):
                names.add(func.id)
            elif isinstance(func, ast.Attribute):
                names.add(func.attr)
    return names


def _ipc_stmt(method: str, *args: str) -> ast.stmt:
    """``IPC.<method>(<args>)`` as an AST statement."""
    return ast.Expr(ast.Call(
        func=ast.Attribute(value=ast.Name(id="IPC", ctx=ast.Load()),
                           attr=method, ctx=ast.Load()),
        args=[ast.Name(id=a, ctx=ast.Load()) if a.isidentifier()
              else ast.Constant(a) for a in args],
        keywords=[],
    ))


@dataclass
class _Collector:
    """Per-foreign-partition material gathered during the walk."""

    statements: List[ast.stmt] = field(default_factory=list)
    needs_loop: bool = False
    try_template: Optional[ast.Try] = None


def partition_source(
    source: str,
    assignments: Dict[str, str],
) -> PartitionedProgram:
    """Partition the first function in ``source``.

    ``assignments`` maps callee names (e.g. ``"show"``) to partition
    names; every statement calling one of them moves to that partition.
    All other statements stay in :data:`MAIN_PARTITION`.
    """
    module = ast.parse(source)
    functions = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if not functions:
        raise AnalysisError("source contains no function to partition")
    original = functions[0]

    collectors: Dict[str, _Collector] = {}
    ipc_sites = 0
    notes: List[str] = []

    def transform_block(
        body: Sequence[ast.stmt],
        in_loop: bool,
        enclosing_try: Optional[ast.Try],
    ) -> List[ast.stmt]:
        nonlocal ipc_sites
        out: List[ast.stmt] = []
        for stmt in body:
            target = _target_partition(stmt)
            if target is not None:
                collector = collectors.setdefault(target, _Collector())
                signal = f"sig_{target}"
                done = f"sig_{target}_done"
                # main side: hand off, wake the partition, wait for it.
                out.append(_ipc_stmt("enqueue_locals", signal))
                out.append(_ipc_stmt("signal", signal))
                out.append(_ipc_stmt("waitfor", done))
                ipc_sites += 3
                # partition side: serve the request.
                collector.statements.extend([
                    _ipc_stmt("waitfor", signal),
                    _ipc_stmt("dequeue_locals", signal),
                    copy.deepcopy(stmt),
                    _ipc_stmt("signal", done),
                ])
                ipc_sites += 3
                if in_loop:
                    collector.needs_loop = True
                if enclosing_try is not None:
                    collector.try_template = enclosing_try
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                stmt = copy.deepcopy(stmt)
                stmt.body = transform_block(stmt.body, True, enclosing_try)
                out.append(stmt)
                continue
            if isinstance(stmt, ast.Try):
                clone = copy.deepcopy(stmt)
                clone.body = transform_block(stmt.body, in_loop, stmt)
                out.append(clone)
                continue
            if isinstance(stmt, ast.If):
                clone = copy.deepcopy(stmt)
                clone.body = transform_block(stmt.body, in_loop, enclosing_try)
                clone.orelse = transform_block(stmt.orelse, in_loop, enclosing_try)
                out.append(clone)
                continue
            out.append(copy.deepcopy(stmt))
        return out

    def _target_partition(stmt: ast.stmt) -> Optional[str]:
        # Compound statements are recursed into instead of moved whole.
        if isinstance(stmt, (ast.For, ast.While, ast.Try, ast.If,
                             ast.FunctionDef)):
            return None
        for name in _call_names(stmt):
            if name in assignments:
                return assignments[name]
        return None

    main_body = transform_block(original.body, False, None)

    partitions: Dict[str, str] = {}
    main_fn = ast.FunctionDef(
        name=MAIN_PARTITION, args=copy.deepcopy(original.args),
        body=main_body or [ast.Pass()], decorator_list=[], returns=None,
    )
    partitions[MAIN_PARTITION] = ast.unparse(ast.fix_missing_locations(
        ast.Module(body=[main_fn], type_ignores=[])
    ))

    duplicated_try_blocks = 0
    service_loops = 0
    for name, collector in collectors.items():
        body: List[ast.stmt] = list(collector.statements)
        if collector.try_template is not None:
            # Fig. 16: the try/except must exist in this partition too,
            # or runtime exceptions stop matching the original program.
            wrapper = copy.deepcopy(collector.try_template)
            wrapper.body = body
            body = [wrapper]
            duplicated_try_blocks += 1
            notes.append(
                f"{name}: duplicated enclosing try/except (Fig. 16)"
            )
        if collector.needs_loop:
            # Fig. 17: the call site is inside a loop; the partition must
            # stay alive to serve repeated requests.
            body = [ast.While(test=ast.Constant(True), body=body, orelse=[])]
            service_loops += 1
            notes.append(
                f"{name}: wrapped in a while-True service loop (Fig. 17)"
            )
        fn = ast.FunctionDef(
            name=name, args=copy.deepcopy(original.args),
            body=body or [ast.Pass()], decorator_list=[], returns=None,
        )
        partitions[name] = ast.unparse(ast.fix_missing_locations(
            ast.Module(body=[fn], type_ignores=[])
        ))

    return PartitionedProgram(
        partitions=partitions,
        ipc_sites=ipc_sites,
        duplicated_try_blocks=duplicated_try_blocks,
        service_loops=service_loops,
        notes=notes,
    )


#: The readResponse() snippet of Fig. 16-(a), usable as a demo input.
FIG16_SOURCE = '''
def readResponse(img, config):
    try:
        img = resize_util(img, 100)
        morph = img.copy()
        if config.showimglvl >= 4:
            show("morph1", morph, 0, 1)
    except Exception as e:
        print("Error from readResponse: ", e)
'''

#: The saveOrShowStacks() loop of Fig. 17-(a).
FIG17_SOURCE = '''
def readResponse(results):
    for i in range(len(results)):
        saveOrShowStacks(results[i])
        show("stack", results[i], 0, 1)
'''
