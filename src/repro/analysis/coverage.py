"""Dynamic-analysis coverage measurement (Table 11).

Wraps :func:`repro.core.dynamic_analysis.coverage_report` over the four
major frameworks and verifies the paper's footnote — every API an
evaluated application uses is covered by the dynamic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.dynamic_analysis import CoverageReport, coverage_report
from repro.frameworks.registry import MAJOR_FRAMEWORKS, get_framework


def major_framework_coverage() -> Dict[str, CoverageReport]:
    """Table 11: API / code coverage per major framework."""
    return {
        name: coverage_report(get_framework(name))
        for name in MAJOR_FRAMEWORKS
    }


def uncovered_apis(framework_name: str) -> List[str]:
    """Qualnames of one framework's APIs lacking a dynamic test case."""
    framework = get_framework(framework_name)
    return sorted(
        api.spec.qualname for api in framework if not api.spec.has_test_case
    )


def apps_use_only_covered_apis() -> Tuple[bool, List[str]]:
    """The footnote check: no evaluated program touches an uncovered API."""
    from repro.apps.suite import SAMPLE_IDS, make_app

    offenders: List[str] = []
    for sample_id in SAMPLE_IDS:
        app = make_app(sample_id)
        for site in app.schedule:
            framework = get_framework(site.framework)
            api = framework.get(site.api)
            if not api.spec.has_test_case:
                offenders.append(f"{app.spec.name}: {api.spec.qualname}")
    return (not offenders, offenders)
