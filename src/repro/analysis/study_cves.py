"""Study 2: the 241-CVE corpus (Section 4.1, Fig. 7, Table 3 input).

The paper studies 241 publicly available CVEs (Aug 2018 – Feb 2022) in
data-processing frameworks — TensorFlow (172), Pillow (44), OpenCV (22),
NumPy (3) — categorizing each by the pipeline task it affects and by
vulnerability class.  The underlying CVE list is not published, so this
module synthesizes a corpus that satisfies every aggregate the paper
states: the per-framework totals, the dominance of loading + processing,
and the legible bars of Fig. 7 (59 DoS CVEs in loading, 54 in
processing, 11 unauthorized reads in loading, the small storing and
visualizing tails).  Interpolated cells are documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.attacks.cves import VulnType
from repro.core.apitypes import APIType

#: Per-framework CVE totals stated in the paper.
FRAMEWORK_TOTALS = {
    "tensorflow": 172,
    "pillow": 44,
    "opencv": 22,
    "numpy": 3,
}

#: How each framework's CVEs spread over the pipeline tasks
#: (interpolated; constrained by the framework totals and the task totals
#: below).
FRAMEWORK_TYPE_QUOTAS: Dict[Tuple[str, APIType], int] = {
    ("tensorflow", APIType.LOADING): 25,
    ("tensorflow", APIType.PROCESSING): 143,
    ("tensorflow", APIType.STORING): 4,
    ("pillow", APIType.LOADING): 41,
    ("pillow", APIType.VISUALIZING): 2,
    ("pillow", APIType.STORING): 1,
    ("opencv", APIType.LOADING): 14,
    ("opencv", APIType.PROCESSING): 8,
    ("numpy", APIType.LOADING): 1,
    ("numpy", APIType.PROCESSING): 2,
}

#: api_type → (vuln_type → count).  The 59/54/11/3/1/1 cells are read
#: directly off Fig. 7; the remainder is interpolated.
TYPE_VULN_CELLS: Dict[APIType, Dict[VulnType, int]] = {
    APIType.LOADING: {
        VulnType.DOS: 59,          # Fig. 7 headline bar
        VulnType.INFO_LEAK: 11,    # Fig. 7 second bar
        VulnType.MEM_WRITE: 8,
        VulnType.RCE: 3,
    },
    APIType.PROCESSING: {
        VulnType.DOS: 54,          # Fig. 7 headline bar
        VulnType.INFO_LEAK: 49,
        VulnType.MEM_WRITE: 43,
        VulnType.RCE: 7,
    },
    APIType.STORING: {
        VulnType.DOS: 3,
        VulnType.MEM_WRITE: 1,
        VulnType.INFO_LEAK: 1,
    },
    APIType.VISUALIZING: {
        VulnType.DOS: 1,
        VulnType.INFO_LEAK: 1,
    },
}

#: The vulnerable-API name pools per (framework, type).  The pool sizes
#: for loading/processing match the Table 3 "Total" columns where the
#: applications actually use them (OpenCV 1/1, TensorFlow 2/24,
#: Pillow 2 loading + 1 visualizing, NumPy 1/1).
VULNERABLE_API_POOLS: Dict[Tuple[str, APIType], Tuple[str, ...]] = {
    ("opencv", APIType.LOADING): ("cv2.imread",),
    ("opencv", APIType.PROCESSING): ("cv2.resize",),
    ("tensorflow", APIType.LOADING): (
        "tf.io.decode_image", "tf.saved_model.load",
    ),
    ("tensorflow", APIType.PROCESSING): tuple(
        f"tf.raw_ops.{name}" for name in (
            "Conv2D", "Conv3D", "MaxPool", "AvgPool", "FusedBatchNorm",
            "MatMul", "SparseDenseCwiseMul", "QuantizedConv2D",
            "ResourceGather", "RaggedTensorToTensor", "SparseSplit",
            "Transpose", "Tile", "Cast", "Reshape", "StridedSlice",
            "ConcatV2", "Pack", "UnsortedSegmentSum", "Dilation2D",
            "FractionalMaxPool", "DenseBincount", "CTCLoss",
            "EditDistance",
        )
    ),
    ("tensorflow", APIType.STORING): (
        "tf.io.write_file", "tf.train.Checkpoint.save",
    ),
    ("pillow", APIType.LOADING): ("PIL.Image.open", "PIL.ImageFile.load"),
    ("pillow", APIType.VISUALIZING): ("PIL.Image.show",),
    ("pillow", APIType.STORING): ("PIL.Image.save",),
    ("numpy", APIType.LOADING): ("np.load",),
    ("numpy", APIType.PROCESSING): ("np.einsum",),
}

#: CVEs in shared utility functions, exploitable from multiple API types
#: (the paper names CVE-2019-16249 and CVE-2019-15939 as examples).
UTILITY_CVE_IDS = ("CVE-2019-16249", "CVE-2019-15939")


@dataclass(frozen=True)
class StudyCve:
    """One CVE of the ecosystem study."""

    cve_id: str
    framework: str
    api_name: str
    api_type: APIType
    vuln_type: VulnType
    year: int
    utility: bool = False


def build_corpus() -> List[StudyCve]:
    """Deterministically synthesize the 241-CVE corpus."""
    corpus: List[StudyCve] = []
    serial = 0
    # Expand each task's vulnerability mix into an ordered deck, then deal
    # it across the frameworks' quotas for that task.
    for api_type, cells in TYPE_VULN_CELLS.items():
        deck: List[VulnType] = []
        for vuln_type, count in cells.items():
            deck.extend([vuln_type] * count)
        position = 0
        for (framework, quota_type), quota in FRAMEWORK_TYPE_QUOTAS.items():
            if quota_type is not api_type:
                continue
            pool = VULNERABLE_API_POOLS.get((framework, api_type), ())
            for slot in range(quota):
                vuln_type = deck[position % len(deck)]
                position += 1
                if pool:
                    api_name = pool[slot % len(pool)]
                else:
                    api_name = f"{framework}.internal_{api_type.value}_{slot}"
                year = 2018 + (serial % 5)
                corpus.append(StudyCve(
                    cve_id=f"CVE-{year}-{10_000 + serial}",
                    framework=framework,
                    api_name=api_name,
                    api_type=api_type,
                    vuln_type=vuln_type,
                    year=year,
                ))
                serial += 1
    # Mark the two utility-function CVEs the paper calls out.
    for index, cve_id in enumerate(UTILITY_CVE_IDS):
        original = corpus[index]
        corpus[index] = StudyCve(
            cve_id=cve_id,
            framework=original.framework,
            api_name=f"{original.framework}.util.shared_buffer",
            api_type=original.api_type,
            vuln_type=original.vuln_type,
            year=2019,
            utility=True,
        )
    return corpus


def figure7_counts(corpus: List[StudyCve]) -> Dict[Tuple[APIType, VulnType], int]:
    """Fig. 7 cells: (api_type, vuln_type) -> CVE count."""
    counts: Dict[Tuple[APIType, VulnType], int] = {}
    for cve in corpus:
        key = (cve.api_type, cve.vuln_type)
        counts[key] = counts.get(key, 0) + 1
    return counts


def framework_totals(corpus: List[StudyCve]) -> Dict[str, int]:
    """CVEs per framework (paper: 172/44/22/3)."""
    totals: Dict[str, int] = {}
    for cve in corpus:
        totals[cve.framework] = totals.get(cve.framework, 0) + 1
    return totals


def counts_by_api_type(corpus: List[StudyCve]) -> Dict[APIType, int]:
    """CVEs per pipeline task."""
    counts: Dict[APIType, int] = {t: 0 for t in APIType}
    for cve in corpus:
        counts[cve.api_type] += 1
    return counts


def distinct_vulnerable_apis(
    corpus: List[StudyCve],
) -> Dict[Tuple[str, APIType], int]:
    """Distinct vulnerable APIs per (framework, type)."""
    seen: Dict[Tuple[str, APIType], set] = {}
    for cve in corpus:
        seen.setdefault((cve.framework, cve.api_type), set()).add(cve.api_name)
    return {key: len(apis) for key, apis in seen.items()}
