"""Design studies and measurement utilities (Section 4.1, Table 11)."""

from repro.analysis.coverage import (
    apps_use_only_covered_apis,
    major_framework_coverage,
    uncovered_apis,
)
from repro.analysis.study_cves import (
    FRAMEWORK_TOTALS,
    StudyCve,
    build_corpus as build_cve_corpus,
    counts_by_api_type,
    figure7_counts,
    framework_totals,
)
from repro.analysis.study_usage import (
    CORPUS_SIZE,
    StudyApp,
    all_follow_pipeline,
    build_corpus as build_usage_corpus,
    follows_pipeline,
    table3,
    table3_totals,
)

__all__ = [
    "CORPUS_SIZE",
    "FRAMEWORK_TOTALS",
    "StudyApp",
    "StudyCve",
    "all_follow_pipeline",
    "apps_use_only_covered_apis",
    "build_cve_corpus",
    "build_usage_corpus",
    "counts_by_api_type",
    "figure7_counts",
    "follows_pipeline",
    "framework_totals",
    "major_framework_coverage",
    "table3",
    "table3_totals",
    "uncovered_apis",
]
