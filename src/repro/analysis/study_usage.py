"""Study 1: framework-API usage across 56 popular applications
(Section 4.1, Fig. 6, Table 3).

The paper manually analyzes 56 GitHub-popular data-processing programs
and finds that (a) all of them follow the loading → processing →
visualizing/storing pipeline (some looping back to loading), and (b)
each application uses only a handful of *vulnerable* APIs per type
(Table 3).  The application list is not published, so this module
synthesizes a 56-program corpus whose aggregate statistics match every
number in Table 3 and whose stage sequences exhibit the Fig. 6 patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.study_cves import VULNERABLE_API_POOLS
from repro.core.apitypes import APIType

CORPUS_SIZE = 56

#: Stage sequences observed in the study (Fig. 6): a linear pipeline, a
#: looping variant (video apps repeat loading+processing), and a
#: no-GUI variant that stores instead of visualizing.
PIPELINE_SHAPES = (
    ("loading", "processing", "visualizing"),
    ("loading", "processing", "storing"),
    ("loading", "processing", "visualizing", "storing"),
    ("loading", "processing", "loading", "processing", "storing"),
    ("loading", "processing", "loading", "processing", "visualizing"),
)

_STAGE_RANK = {"loading": 0, "processing": 1, "visualizing": 2, "storing": 2}


@dataclass(frozen=True)
class StudyApp:
    """One program of the usage study."""

    app_id: int
    name: str
    stages: Tuple[str, ...]
    #: vulnerable APIs used, keyed by (framework, api_type).
    vulnerable_used: Tuple[Tuple[str, APIType, str], ...] = ()

    def vulnerable_count(self, framework: str, api_type: APIType) -> int:
        return sum(
            1 for fw, t, _ in self.vulnerable_used
            if fw == framework and t is api_type
        )

    def vulnerable_count_type(self, api_type: APIType) -> int:
        return sum(1 for _, t, _ in self.vulnerable_used if t is api_type)


def follows_pipeline(stages: Sequence[str]) -> bool:
    """Fig. 6 check: stages only move forward, except loops back to
    loading (video apps repeat load+process)."""
    previous = -1
    for stage in stages:
        rank = _STAGE_RANK.get(stage)
        if rank is None:
            return False
        if rank < previous and rank != 0:
            return False
        previous = rank
    return True


def _usage_plan() -> Dict[Tuple[str, APIType], List[Tuple[int, int]]]:
    """(framework, type) → [(app_id, how many vulnerable APIs)] chosen so
    the Table 3 aggregates come out exactly:

    * OpenCV  loading avg .6/max 1/1 distinct; processing .2/1/1
    * TF      loading .3/2/2; processing 2.3/12/24
    * Pillow  loading .4/2/2; visualizing .5/1/1
    * NumPy   loading .1/1/1; processing .4/1/1
    * Totals  loading 1.4/5/6; processing 2.9/14/26
    """
    plan: Dict[Tuple[str, APIType], List[Tuple[int, int]]] = {}
    # App 0 is the maximal app: 5 vulnerable loading APIs (1 OpenCV +
    # 2 TF + 2 Pillow) and 14 vulnerable processing APIs (1 OpenCV +
    # 12 TF + 1 NumPy) — the Table 3 "Max" row witnesses.
    plan[("opencv", APIType.LOADING)] = [(0, 1)] + [(i, 1) for i in range(2, 35)]
    plan[("opencv", APIType.PROCESSING)] = [(0, 1)] + [(i, 1) for i in range(2, 12)]
    plan[("tensorflow", APIType.LOADING)] = (
        [(0, 2), (1, 2)] + [(i, 1) for i in range(2, 15)]
    )
    # TF processing: total usage 2.3 * 56 ≈ 129 = 12 + 21*5 + 12*1.
    plan[("tensorflow", APIType.PROCESSING)] = (
        [(0, 12)]
        + [(i, 5) for i in range(1, 22)]
        + [(i, 1) for i in range(22, 34)]
    )
    plan[("pillow", APIType.LOADING)] = (
        [(0, 2), (1, 2)] + [(i, 1) for i in range(15, 33)]
    )
    plan[("pillow", APIType.VISUALIZING)] = [(i, 1) for i in range(0, 28)]
    plan[("numpy", APIType.LOADING)] = [(1, 1)] + [(i, 1) for i in range(33, 38)]
    plan[("numpy", APIType.PROCESSING)] = [(0, 1)] + [(i, 1) for i in range(1, 22)]
    return plan


def build_corpus() -> List[StudyApp]:
    """The 56 synthesized study applications."""
    plan = _usage_plan()
    per_app: Dict[int, List[Tuple[str, APIType, str]]] = {
        app_id: [] for app_id in range(CORPUS_SIZE)
    }
    for (framework, api_type), assignments in plan.items():
        pool = VULNERABLE_API_POOLS.get((framework, api_type), ())
        for app_id, count in assignments:
            for index in range(count):
                # Offset by app id so the corpus collectively covers the
                # whole vulnerable-API pool (Table 3's Total column).
                if pool:
                    api = pool[(app_id + index) % len(pool)]
                else:
                    api = f"{framework}.api{index}"
                per_app[app_id].append((framework, api_type, api))
    apps: List[StudyApp] = []
    for app_id in range(CORPUS_SIZE):
        shape = PIPELINE_SHAPES[app_id % len(PIPELINE_SHAPES)]
        apps.append(StudyApp(
            app_id=app_id,
            name=f"study-app-{app_id:02d}",
            stages=shape,
            vulnerable_used=tuple(per_app[app_id]),
        ))
    return apps


@dataclass(frozen=True)
class Table3Cell:
    """Avg / Max / Total for one (framework, api_type)."""

    average: float
    maximum: int
    total_distinct: int


def table3(corpus: List[StudyApp]) -> Dict[Tuple[str, APIType], Table3Cell]:
    """Compute Table 3 from the corpus."""
    frameworks = ("opencv", "tensorflow", "pillow", "numpy")
    types = (APIType.LOADING, APIType.PROCESSING,
             APIType.VISUALIZING, APIType.STORING)
    cells: Dict[Tuple[str, APIType], Table3Cell] = {}
    for framework in frameworks:
        for api_type in types:
            counts = [app.vulnerable_count(framework, api_type) for app in corpus]
            distinct: Set[str] = set()
            for app in corpus:
                distinct.update(
                    api for fw, t, api in app.vulnerable_used
                    if fw == framework and t is api_type
                )
            cells[(framework, api_type)] = Table3Cell(
                average=sum(counts) / len(corpus),
                maximum=max(counts),
                total_distinct=len(distinct),
            )
    return cells


def table3_totals(corpus: List[StudyApp]) -> Dict[APIType, Table3Cell]:
    """The Table 3 "Total" row (summed across frameworks)."""
    types = (APIType.LOADING, APIType.PROCESSING,
             APIType.VISUALIZING, APIType.STORING)
    totals: Dict[APIType, Table3Cell] = {}
    for api_type in types:
        counts = [app.vulnerable_count_type(api_type) for app in corpus]
        distinct: Set[str] = set()
        for app in corpus:
            distinct.update(
                (fw, api) for fw, t, api in app.vulnerable_used if t is api_type
            )
        totals[api_type] = Table3Cell(
            average=sum(counts) / len(corpus),
            maximum=max(counts),
            total_distinct=len(distinct),
        )
    return totals


def all_follow_pipeline(corpus: List[StudyApp]) -> bool:
    """The Study 1 headline: every analyzed program is pipeline-shaped."""
    return all(follows_pipeline(app.stages) for app in corpus)
