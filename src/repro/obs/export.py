"""Trace exports: Chrome trace-event JSON, text tree, mechanism rollup.

The Chrome export is the `trace event format`_ Perfetto reads — open
``trace.json`` at https://ui.perfetto.dev.  Each simulated process
becomes one "process" row (agents individually, tenant hosts as lanes in
serve mode); spans are complete ("X") events, state transitions and pool
leases are instants ("i").  Timestamps are virtual nanoseconds divided
by 1000 (the format's microsecond unit), which keeps sub-microsecond
spans (a 40 ns filter check) visible as fractional-µs durations.

The mechanism rollup answers "where did the virtual nanoseconds go": per
category it sums *self time* — a span's duration minus its children's —
so IPC, copies, mprotect, filter checks, compute, and the untraced
remainder partition the run's end-to-end virtual time exactly.

.. _trace event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.tracer import Span

__all__ = [
    "NODE_PID_STRIDE",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_merged_trace",
    "validate_rollup_rows",
    "render_tree",
    "mechanism_rollup",
    "render_rollup",
    "RollupRow",
    "RuntimeTouches",
    "trace_runtime_touches",
]

_ALLOWED_PHASES = frozenset({"X", "i", "M"})

#: Pid namespace stride for merged multi-node traces: merged pid =
#: node * stride + local pid.  Far above any simulated pid (they count
#: up from 100 per node), so node 0's pid 104 and node 2's pid 104 stay
#: distinct rows.  ``repro.cluster.trace`` builds merged traces with
#: this stride; :func:`validate_merged_trace` checks against it.
NODE_PID_STRIDE = 1_000_000


def _sorted_args(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {key: span.attrs[key] for key in sorted(span.attrs)}
    if span.out_of_band:
        args["out_of_band"] = True
    return args


def to_chrome_trace(tracer: Any) -> Dict[str, Any]:
    """Render a tracer's spans as a Chrome trace-event JSON payload."""
    spans = tracer.closed_spans()
    events: List[Dict[str, Any]] = []
    pids = sorted({span.pid for span in spans})
    for pid in pids:
        events.append({
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": pid,
            "args": {"name": tracer.track_names.get(pid, f"pid {pid}")},
        })
    # Chrome requires complete events sorted by timestamp; ties broken by
    # span id so re-runs serialize identically.
    for span in sorted(spans, key=lambda s: (s.start_ns, s.span_id)):
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "ph": "i" if span.kind == "instant" else "X",
            "ts": span.start_ns / 1000,
            "pid": span.pid,
            "tid": span.pid,
            "args": _sorted_args(span),
        }
        if span.kind == "instant":
            event["s"] = "t"  # thread-scoped instant
        else:
            event["dur"] = span.duration_ns / 1000
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload: Any) -> List[str]:
    """Check a payload against the Chrome trace-event schema.

    Returns a list of problems (empty = valid).  Used by the CI trace
    step and the export tests.
    """
    problems: List[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload must be an object with a 'traceEvents' list"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    last_ts: Optional[float] = None
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index}: missing required key {key!r}")
        phase = event.get("ph")
        if phase not in _ALLOWED_PHASES:
            problems.append(f"event {index}: unknown phase {phase!r}")
        if phase == "X":
            if "dur" not in event:
                problems.append(f"event {index}: 'X' event without 'dur'")
            elif event["dur"] < 0:
                problems.append(f"event {index}: negative duration")
        if phase != "M":
            ts = event.get("ts")
            if isinstance(ts, (int, float)):
                if last_ts is not None and ts < last_ts:
                    problems.append(
                        f"event {index}: ts {ts} not sorted (prev {last_ts})"
                    )
                last_ts = ts
    return problems


def validate_merged_trace(payload: Any) -> List[str]:
    """Schema check for *merged* multi-node cluster traces.

    Runs the base :func:`validate_chrome_trace` checks, then the
    merge-specific invariants:

    * every pid carries exactly one ``process_name`` metadata row —
      a duplicate means two nodes' pids collided in the merge (the
      :data:`NODE_PID_STRIDE` namespacing failed);
    * every non-metadata event's pid has a ``process_name`` row and a
      ``node`` arg consistent with ``pid // NODE_PID_STRIDE``;
    * cross-node traffic appears as the ``inter_node`` category with
      both halves present (``inter_node_send`` and ``inter_node_recv``)
      — a merge that dropped one node's tracer shows up as a
      send-without-recv here.
    """
    problems = validate_chrome_trace(payload)
    if not isinstance(payload, dict):
        return problems
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return problems
    name_rows: Dict[int, int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict) or event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            pid = event.get("pid")
            if isinstance(pid, int):
                name_rows[pid] = name_rows.get(pid, 0) + 1
    for pid in sorted(name_rows):
        if name_rows[pid] > 1:
            problems.append(
                f"pid {pid}: {name_rows[pid]} process_name rows "
                "(cross-node pid collision in the merge)"
            )
    inter_node_names = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict) or event.get("ph") == "M":
            continue
        pid = event.get("pid")
        if not isinstance(pid, int):
            continue
        if pid not in name_rows:
            problems.append(
                f"event {index}: pid {pid} has no process_name row"
            )
        args = event.get("args")
        node = args.get("node") if isinstance(args, dict) else None
        if not isinstance(node, int):
            problems.append(
                f"event {index}: merged event missing integer "
                "args['node']"
            )
        elif pid // NODE_PID_STRIDE != node:
            problems.append(
                f"event {index}: pid {pid} is in node "
                f"{pid // NODE_PID_STRIDE}'s namespace but args['node'] "
                f"is {node}"
            )
        if event.get("cat") == "inter_node":
            inter_node_names.add(event.get("name"))
    if inter_node_names:
        for required in ("inter_node_send", "inter_node_recv"):
            if required not in inter_node_names:
                problems.append(
                    f"inter_node traffic present without {required!r} "
                    "spans (one side of the transfer is missing)"
                )
    return problems


def validate_rollup_rows(rows: List["RollupRow"]) -> List[str]:
    """Structural check of a (merged) rollup table.

    Each category must appear exactly once (``inter_node`` included —
    a merge that appends per-node tables instead of summing them shows
    up as duplicates), ``untraced`` must be the single final row, and
    no mechanism row may be negative.
    """
    problems: List[str] = []
    seen: Dict[str, int] = {}
    for row in rows:
        seen[row.category] = seen.get(row.category, 0) + 1
    for category in sorted(seen):
        if seen[category] > 1:
            problems.append(
                f"category {category!r} appears {seen[category]} times "
                "(rows must merge, not concatenate)"
            )
    if not rows or rows[-1].category != "untraced":
        problems.append("the final row must be 'untraced'")
    for row in rows:
        if row.category != "untraced" and row.self_ns < 0:
            problems.append(
                f"category {row.category!r} has negative self time "
                f"({row.self_ns} ns)"
            )
    return problems


def render_tree(tracer: Any, max_spans: int = 200) -> str:
    """Compact indented text rendering of the span forest."""
    lines: List[str] = []
    spans = tracer.closed_spans()
    for span in spans[:max_spans]:
        marker = "@" if span.kind == "instant" else "-"
        label = tracer.track_names.get(span.pid, f"pid {span.pid}")
        attrs = "".join(
            f" {key}={span.attrs[key]}" for key in sorted(span.attrs)
        )
        lines.append(
            f"{'  ' * span.depth}{marker} {span.name} [{span.category}] "
            f"{span.duration_ns}ns pid={span.pid}({label}){attrs}"
        )
    if len(spans) > max_spans:
        lines.append(f"... {len(spans) - max_spans} more spans")
    return "\n".join(lines)


@dataclass(frozen=True)
class RollupRow:
    """One mechanism's share of the run's virtual time."""

    category: str
    spans: int
    self_ns: int
    percent: float


def mechanism_rollup(tracer: Any, total_ns: int) -> List[RollupRow]:
    """Per-mechanism self-time table partitioning ``total_ns`` exactly.

    Self time = a span's duration minus its direct children's durations;
    the ``untraced`` row is whatever virtual time passed outside any
    span.  Out-of-band spans (retrospective queue waits) are excluded —
    their interval overlaps other spans' — so the rows always sum to
    ``total_ns``.
    """
    spans = [
        s for s in tracer.closed_spans()
        if not s.out_of_band and s.kind == "span"
    ]
    children_ns: Dict[int, int] = {}
    for span in spans:
        if span.parent_id is not None:
            children_ns[span.parent_id] = (
                children_ns.get(span.parent_id, 0) + span.duration_ns
            )
    per_category: Dict[str, List[int]] = {}
    roots_ns = 0
    for span in spans:
        self_ns = span.duration_ns - children_ns.get(span.span_id, 0)
        per_category.setdefault(span.category, []).append(self_ns)
        if span.parent_id is None:
            roots_ns += span.duration_ns

    def row(category: str, count: int, self_ns: int) -> RollupRow:
        percent = 100.0 * self_ns / total_ns if total_ns else 0.0
        return RollupRow(category, count, self_ns, percent)

    rows = [
        row(category, len(values), sum(values))
        for category, values in per_category.items()
    ]
    rows.sort(key=lambda r: (-r.self_ns, r.category))
    rows.append(row("untraced", 0, total_ns - roots_ns))
    return rows


def render_rollup(tracer: Any, total_ns: int) -> str:
    """The per-mechanism breakdown as a printable table."""
    from repro.bench.tables import render_table

    rows = mechanism_rollup(tracer, total_ns)
    table = [
        [r.category, r.spans, r.self_ns, f"{r.percent:.2f}%"] for r in rows
    ]
    table.append([
        "TOTAL", sum(r.spans for r in rows),
        sum(r.self_ns for r in rows), "100.00%",
    ])
    return render_table(
        "Where the virtual nanoseconds went",
        ["mechanism", "spans", "self ns", "% of total"],
        table,
        note=f"end-to-end virtual time: {total_ns} ns",
    )


@dataclass
class RuntimeTouches:
    """What a recorded run actually touched (parity-check evidence).

    Extracted from a Chrome trace payload: every API the host RPC'd,
    the agent label behind each agent pid, the syscalls each agent
    executed, and the ordered cross-partition edges (consecutive RPCs
    from one host pid landing in different agents).
    """

    apis: Set[str] = field(default_factory=set)
    agents_by_pid: Dict[int, str] = field(default_factory=dict)
    syscalls_by_agent: Dict[str, Set[str]] = field(default_factory=dict)
    edges: Set[Tuple[str, str]] = field(default_factory=set)


def trace_runtime_touches(payload: Any) -> RuntimeTouches:
    """Replay a Chrome trace payload into a :class:`RuntimeTouches`.

    Events arrive timestamp-ordered (``to_chrome_trace`` sorts them), so
    per-host-pid RPC sequences reconstruct the partition hops in order.
    Syscalls on pids with no rpc annotation (the host, infra processes)
    are skipped — only agent processes are under seccomp policy.
    """
    touches = RuntimeTouches()
    rpc_sequences: Dict[int, List[str]] = {}
    syscalls_by_pid: Dict[int, Set[str]] = {}
    events = payload.get("traceEvents", []) if isinstance(payload, dict) else []
    for event in events:
        if not isinstance(event, dict):
            continue
        category = event.get("cat")
        args = event.get("args") or {}
        if category == "rpc":
            api = args.get("api")
            if api:
                touches.apis.add(api)
            agent = args.get("agent")
            agent_pid = args.get("agent_pid")
            if agent and isinstance(agent_pid, int):
                touches.agents_by_pid[agent_pid] = agent
            if agent:
                rpc_sequences.setdefault(event.get("pid", 0), []).append(agent)
        elif category == "syscall":
            name = args.get("syscall")
            pid = event.get("pid")
            if name and isinstance(pid, int):
                syscalls_by_pid.setdefault(pid, set()).add(name)
    for pid, names in syscalls_by_pid.items():
        agent = touches.agents_by_pid.get(pid)
        if agent is None:
            continue
        touches.syscalls_by_agent.setdefault(agent, set()).update(names)
    for sequence in rpc_sequences.values():
        for previous, current in zip(sequence, sequence[1:]):
            if previous != current:
                touches.edges.add((previous, current))
    return touches
