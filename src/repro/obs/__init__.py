"""Observability: span tracing and metrics over the virtual clock.

Every span timestamp and histogram bucket is derived from the
deterministic :class:`~repro.sim.clock.VirtualClock`, never from wall
time, so traces and metric snapshots are bit-identical across machines.
The layer never *advances* the clock — with tracing enabled, every
virtual-clock quantity (the 3.68% overhead figure, serve throughput,
Table 9 rows) is unchanged from an untraced run.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    AlertEvent,
    BurnWindow,
    RequestEvent,
    SLOResult,
    SLOSpec,
    evaluate_slos,
)
from repro.obs.timeseries import (
    FixedGridSketch,
    TimeSeries,
    TimeSeriesRegistry,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, SpanTracer

__all__ = [
    "AlertEvent",
    "BurnWindow",
    "Counter",
    "DEFAULT_SLOS",
    "FixedGridSketch",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RequestEvent",
    "SLOResult",
    "SLOSpec",
    "Span",
    "SpanTracer",
    "TimeSeries",
    "TimeSeriesRegistry",
    "evaluate_slos",
]
