"""Critical-path extraction over span trees, reconciled with the rollup.

Answers "what dominates the end-to-end time" *structurally*: for each
root span the critical path walks the heaviest child at every level, and
each step's *exclusive* contribution is its duration minus the chosen
child's — so the steps of one root's path partition that root's duration
exactly, the same way rollup rows partition the run.

The per-mechanism attribution here is computed by an independent
traversal (depth-first subtree recursion over an explicit children map)
from the flat loop in :func:`repro.obs.export.mechanism_rollup`.
:func:`reconcile_attribution` compares the two row sets entry by entry
and raises :class:`~repro.errors.AccountingError` naming the off-by row
on any discrepancy — every run report runs this check, so a drifting
span filter or a double-counted child is a loud failure, not a silently
wrong table.

Only *accountable* spans participate — closed, ``kind == "span"``, not
``out_of_band`` — the exact filter the rollup uses.  Out-of-band spans
(retrospective queue waits) overlap other spans' intervals and instants
have no duration; both would break the partition-exactly invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.errors import AccountingError
from repro.obs.export import RollupRow, mechanism_rollup
from repro.obs.tracer import Span

__all__ = [
    "CriticalPathStep",
    "CriticalPath",
    "accountable_spans",
    "extract_critical_path",
    "mechanism_attribution",
    "reconcile_attribution",
]


@dataclass(frozen=True)
class CriticalPathStep:
    """One span on the critical path.

    ``exclusive_ns`` is what this step alone contributes to the path:
    its duration minus the heaviest child's (the child the path descends
    into).  Summed over a root's steps it equals the root's duration.
    """

    span_id: int
    name: str
    category: str
    pid: int
    depth: int
    duration_ns: int
    exclusive_ns: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "pid": self.pid,
            "depth": self.depth,
            "duration_ns": self.duration_ns,
            "exclusive_ns": self.exclusive_ns,
        }


@dataclass
class CriticalPath:
    """The longest-weighted walk through every root span, in time order."""

    steps: List[CriticalPathStep] = field(default_factory=list)
    total_ns: int = 0
    by_category: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_ns": self.total_ns,
            "by_category": {
                category: self.by_category[category]
                for category in sorted(self.by_category)
            },
            "steps": [step.to_dict() for step in self.steps],
        }


def accountable_spans(tracer: Any) -> List[Span]:
    """The spans that participate in time accounting.

    Closed real spans only — the same filter
    :func:`~repro.obs.export.mechanism_rollup` applies, so critical-path
    totals and rollup rows are views of one universe.
    """
    return [
        span for span in tracer.closed_spans()
        if not span.out_of_band and span.kind == "span"
    ]


def _children_map(spans: List[Span]) -> Dict[int, List[Span]]:
    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    # Heaviest child first; span id breaks ties so re-runs pick the same
    # path for equal-duration siblings.
    for sibling_list in children.values():
        sibling_list.sort(key=lambda s: (-s.duration_ns, s.span_id))
    return children


def extract_critical_path(tracer: Any, max_steps: int = 10_000) -> CriticalPath:
    """Walk the heaviest child chain of every root span.

    Roots are visited in start order, so the path reads as a timeline of
    the run's dominant chain.  ``total_ns`` equals the summed root
    durations — the exact traced (non-``untraced``) share of the run.
    """
    spans = accountable_spans(tracer)
    children = _children_map(spans)
    roots = sorted(
        (span for span in spans if span.parent_id is None),
        key=lambda s: (s.start_ns, s.span_id),
    )
    path = CriticalPath()
    for root in roots:
        span = root
        while True:
            heaviest = children.get(span.span_id)
            child = heaviest[0] if heaviest else None
            exclusive = span.duration_ns - (child.duration_ns if child else 0)
            if len(path.steps) < max_steps:
                path.steps.append(CriticalPathStep(
                    span_id=span.span_id,
                    name=span.name,
                    category=span.category,
                    pid=span.pid,
                    depth=span.depth,
                    duration_ns=span.duration_ns,
                    exclusive_ns=exclusive,
                ))
            path.by_category[span.category] = (
                path.by_category.get(span.category, 0) + exclusive
            )
            if child is None:
                break
            span = child
        path.total_ns += root.duration_ns
    return path


def mechanism_attribution(tracer: Any) -> Dict[str, Tuple[int, int]]:
    """Per-category ``(span count, self ns)`` via subtree recursion.

    Deliberately a different computation from the rollup's flat
    child-sum pass: each root's subtree is walked depth-first and every
    node's self time is its duration minus its direct children's.  Both
    routes must land on identical numbers — that is what
    :func:`reconcile_attribution` enforces.
    """
    spans = accountable_spans(tracer)
    children = _children_map(spans)
    totals: Dict[str, List[int]] = {}

    def visit(span: Span) -> None:
        direct = children.get(span.span_id, [])
        self_ns = span.duration_ns - sum(c.duration_ns for c in direct)
        bucket = totals.setdefault(span.category, [0, 0])
        bucket[0] += 1
        bucket[1] += self_ns
        for child in direct:
            visit(child)

    for span in spans:
        if span.parent_id is None:
            visit(span)
    return {
        category: (count, self_ns)
        for category, (count, self_ns) in totals.items()
    }


def reconcile_attribution(
    tracer: Any, total_ns: int, context: str = "critical_path attribution"
) -> List[RollupRow]:
    """Cross-check subtree attribution against the self-time rollup.

    Every rollup row (``untraced`` included) must match the independent
    attribution to the nanosecond and span; any discrepancy raises
    :class:`AccountingError` whose mismatches name the off-by rows as
    ``(row, recorded, expected)`` triples.  Returns the verified rollup
    rows on success, so report builders reconcile and render in one call.
    """
    rows = mechanism_rollup(tracer, total_ns)
    attribution = mechanism_attribution(tracer)
    traced_ns = sum(
        self_ns for _, self_ns in attribution.values()
    )
    mismatches: List[Tuple[str, int, int]] = []
    seen = set()
    for row in rows:
        if row.category == "untraced":
            expected = total_ns - traced_ns
            if row.self_ns != expected:
                mismatches.append(("untraced", row.self_ns, expected))
            continue
        seen.add(row.category)
        count, self_ns = attribution.get(row.category, (0, 0))
        if row.self_ns != self_ns:
            mismatches.append((row.category, row.self_ns, self_ns))
        if row.spans != count:
            mismatches.append((f"{row.category}/spans", row.spans, count))
    for category in sorted(set(attribution) - seen):
        mismatches.append((category, 0, attribution[category][1]))
    if mismatches:
        raise AccountingError(context, mismatches)
    return rows
