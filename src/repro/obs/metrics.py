"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` lives on each :class:`~repro.sim.kernel.SimKernel`
(``kernel.metrics``) and aggregates what the scattered per-layer counters
used to keep privately: gateway call counts feed it through
:class:`~repro.core.gateway.GatewayStats`, the serving layer's
:class:`~repro.serve.metrics.ServingTimeline` records latency and
service-time histograms into it.

Histograms use *fixed* bucket boundaries (a geometric ladder of virtual
nanoseconds by default) rather than adaptive ones, so snapshots are
deterministic: the same run produces the same buckets on every machine.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_NS_BUCKETS",
]

#: Geometric ladder from 1 µs to ~17 minutes of virtual time — wide
#: enough for every latency this simulation produces, fixed so snapshots
#: are bit-identical across machines.
DEFAULT_NS_BUCKETS: Tuple[int, ...] = tuple(
    1_000 * 4 ** k for k in range(15)
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can move either way (pool occupancy, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value

    def add(self, delta: int) -> None:
        self.value += delta


class Histogram:
    """A fixed-bucket histogram of integer observations.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the last
    slot is the overflow bucket.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    def __init__(
        self, name: str, bounds: Sequence[int] = DEFAULT_NS_BUCKETS
    ) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing bounds"
            )
        self.name = name
        self.bounds: Tuple[int, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        """Observations above the top bound (they still move ``total``,
        so a large overflow count means ``mean`` is dominated by values
        the buckets cannot localize)."""
        return self.bucket_counts[-1]

    def quantile(self, fraction: float) -> Optional[int]:
        """Bucket-upper-bound quantile: the smallest ``bounds[i]`` whose
        cumulative count covers the ceil-rank observation.

        The answer is an upper bound on the true quantile — exact only
        when every observation in the bucket sits on the bound.  Returns
        ``None`` when the sketch is empty or the rank lands in the
        overflow bucket (there is no finite bound to report; check
        :attr:`overflow` before trusting upper percentiles).
        """
        if self.count == 0:
            return None
        rank = max(1, math.ceil(fraction * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.bounds):
                    return None
                return self.bounds[index]
        return None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able as JSON."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[int]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_NS_BUCKETS
            )
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic (sorted-key) view of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self._histograms.items())
            },
        }
