"""The unified run report: one deterministic JSON+markdown artifact.

``repro report`` renders everything the observability control plane
knows about one run into a single payload (schema
``freepart-report/v1``):

* **SLO verdicts** — every :class:`~repro.obs.slo.SLOSpec` evaluated
  over the run's request stream, with multi-window burn-rate timelines
  and every fired :class:`~repro.obs.slo.AlertEvent`;
* **critical path** — the longest-weighted walk per node with
  per-mechanism exclusive attribution, *verified* against the self-time
  rollup via :func:`~repro.obs.critical_path.reconcile_attribution`
  (building a report on a tracer whose accounting drifted raises, it
  does not render a wrong table);
* **rollup** — the verified per-mechanism rows, merged across nodes;
* **top-k slowest** — tenants and nodes ranked by worst latency;
* **time-series** — the dimensional series snapshot, augmented with a
  synthesized ``mechanism.self_ns`` series (mechanism + node labels)
  derived from the verified rollup rows.

Everything is a pure function of virtual-clock state, so
:func:`render_report_json` output is byte-identical across identical
-seed re-runs; :func:`render_report_markdown` is the human view of the
same payload.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.critical_path import (
    extract_critical_path,
    reconcile_attribution,
)
from repro.obs.export import RollupRow
from repro.obs.slo import DEFAULT_SLOS, RequestEvent, SLOSpec, evaluate_slos
from repro.obs.timeseries import TimeSeriesRegistry

__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "render_report_json",
    "render_report_markdown",
    "top_slowest",
]

REPORT_SCHEMA = "freepart-report/v1"

#: Critical-path steps retained per node in the artifact (the
#: by-category attribution always covers the full path).
MAX_REPORT_STEPS = 100

#: Rows in each "top-k slowest" ranking.
TOP_K = 5


def top_slowest(
    events: Sequence[RequestEvent], dimension: str, k: int = TOP_K
) -> List[Dict[str, Any]]:
    """The ``k`` slowest groups of one event dimension.

    ``dimension`` is a :class:`RequestEvent` attribute (``tenant`` or
    ``node``); groups rank by worst latency, then name.  Unlabeled
    events (empty attribute value) are skipped.
    """
    grouped: Dict[str, List[RequestEvent]] = {}
    for event in events:
        name = getattr(event, dimension)
        if name:
            grouped.setdefault(name, []).append(event)
    rows = []
    for name in sorted(grouped):
        members = grouped[name]
        latencies = [event.latency_ns for event in members]
        rows.append({
            dimension: name,
            "requests": len(members),
            "errors": sum(1 for event in members if not event.ok),
            "max_latency_ns": max(latencies),
            "mean_latency_ns": sum(latencies) // len(latencies),
        })
    rows.sort(key=lambda row: (-row["max_latency_ns"], row[dimension]))
    return rows[:k]


def _merge_rollups(
    per_node: Sequence[Tuple[str, List[RollupRow]]], total_ns: int
) -> List[Dict[str, Any]]:
    """Sum verified per-node rollup rows into one cluster-wide table."""
    categories: Dict[str, List[int]] = {}
    untraced_ns = 0
    for _, rows in per_node:
        for row in rows:
            if row.category == "untraced":
                untraced_ns += row.self_ns
                continue
            bucket = categories.setdefault(row.category, [0, 0])
            bucket[0] += row.spans
            bucket[1] += row.self_ns

    def entry(category: str, spans: int, self_ns: int) -> Dict[str, Any]:
        percent = 100.0 * self_ns / total_ns if total_ns else 0.0
        return {
            "category": category,
            "spans": spans,
            "self_ns": self_ns,
            "percent": round(percent, 6),
        }

    merged = [
        entry(category, spans, self_ns)
        for category, (spans, self_ns) in categories.items()
    ]
    merged.sort(key=lambda row: (-row["self_ns"], row["category"]))
    merged.append(entry("untraced", 0, untraced_ns))
    return merged


def build_report(
    target: str,
    mode: str,
    nodes: Sequence[Tuple[str, Any, int]] = (),
    events: Sequence[RequestEvent] = (),
    series: Optional[TimeSeriesRegistry] = None,
    slos: Sequence[SLOSpec] = DEFAULT_SLOS,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one run's report payload.

    ``nodes`` is the traced side of the run: ``(label, tracer,
    total_ns)`` triples, one per machine.  Each node's attribution is
    reconciled against its rollup before anything renders — an
    :class:`~repro.errors.AccountingError` here means the observability
    layer's books do not balance and the report must not exist.
    """
    ordered_events = sorted(events)
    slo_results = evaluate_slos(ordered_events, slos)
    alert_count = sum(len(result.alerts) for result in slo_results)

    verified: List[Tuple[str, List[RollupRow]]] = []
    node_sections: List[Dict[str, Any]] = []
    merged_by_category: Dict[str, int] = {}
    critical_total_ns = 0
    total_ns = 0
    for label, tracer, node_total_ns in nodes:
        total_ns += node_total_ns
        rows = reconcile_attribution(
            tracer, node_total_ns,
            context=f"critical_path attribution ({label})",
        )
        verified.append((label, rows))
        path = extract_critical_path(tracer)
        critical_total_ns += path.total_ns
        for category, exclusive in path.by_category.items():
            merged_by_category[category] = (
                merged_by_category.get(category, 0) + exclusive
            )
        node_sections.append({
            "label": label,
            "total_ns": path.total_ns,
            "by_category": {
                category: path.by_category[category]
                for category in sorted(path.by_category)
            },
            "steps": [
                step.to_dict() for step in path.steps[:MAX_REPORT_STEPS]
            ],
        })

    merged_series = TimeSeriesRegistry(clock=None)
    if series is not None:
        merged_series.merge(series)
    for label, rows in verified:
        for row in rows:
            if row.category == "untraced":
                continue
            merged_series.observe(
                "mechanism.self_ns",
                {"mechanism": row.category, "node": label},
                row.self_ns,
                t_ns=0,
            )

    return {
        "schema": REPORT_SCHEMA,
        "target": target,
        "mode": mode,
        "virtual_ns": total_ns,
        "slo": {
            "alert_count": alert_count,
            "all_met": all(result.met for result in slo_results),
            "requests": len(ordered_events),
            "results": [result.to_dict() for result in slo_results],
        },
        "critical_path": {
            "total_ns": critical_total_ns,
            "by_category": {
                category: merged_by_category[category]
                for category in sorted(merged_by_category)
            },
            "nodes": node_sections,
        },
        "rollup": _merge_rollups(verified, total_ns),
        "top_slowest": {
            "tenants": top_slowest(ordered_events, "tenant"),
            "nodes": top_slowest(ordered_events, "node"),
        },
        "series": merged_series.snapshot(),
        "extra": extra if extra is not None else {},
    }


def render_report_json(report: Dict[str, Any]) -> str:
    """Canonical JSON text (sorted keys, trailing newline)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _md_table(headers: List[str], rows: List[List[Any]]) -> List[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def render_report_markdown(report: Dict[str, Any]) -> str:
    """The same payload as a deterministic markdown document."""
    lines: List[str] = [
        f"# Run report — {report['target']} ({report['mode']})",
        "",
        f"Schema `{report['schema']}`; "
        f"{report['virtual_ns']} virtual ns across "
        f"{len(report['critical_path']['nodes'])} traced node(s).",
        "",
        "## SLO verdicts",
        "",
    ]
    slo = report["slo"]
    lines.extend(_md_table(
        ["SLO", "kind", "objective", "achieved", "met", "alerts"],
        [
            [
                result["spec"]["name"],
                result["spec"]["kind"],
                result["spec"]["objective"],
                result["achieved"],
                "yes" if result["met"] else "NO",
                result["alert_count"],
            ]
            for result in slo["results"]
        ],
    ))
    lines.append("")
    lines.append(
        f"{slo['requests']} requests evaluated; "
        f"{slo['alert_count']} burn-rate alert(s)."
    )
    alerts = [
        alert
        for result in slo["results"]
        for alert in result["alerts"]
    ]
    if alerts:
        lines.extend(["", "### Burn-rate alerts", ""])
        lines.extend(_md_table(
            ["SLO", "window", "start ns", "burn", "threshold", "errors"],
            [
                [
                    alert["slo"], alert["window"], alert["start_ns"],
                    alert["burn_rate"], alert["threshold"],
                    f"{alert['errors']}/{alert['requests']}",
                ]
                for alert in alerts
            ],
        ))
    lines.extend(["", "## Critical path", ""])
    path = report["critical_path"]
    lines.append(
        f"Dominant-chain coverage: {path['total_ns']} ns "
        "attributed by mechanism:"
    )
    lines.append("")
    lines.extend(_md_table(
        ["mechanism", "exclusive ns"],
        [
            [category, path["by_category"][category]]
            for category in sorted(
                path["by_category"],
                key=lambda c: (-path["by_category"][c], c),
            )
        ],
    ))
    lines.extend(["", "## Mechanism rollup (verified)", ""])
    lines.extend(_md_table(
        ["mechanism", "spans", "self ns", "% of total"],
        [
            [row["category"], row["spans"], row["self_ns"],
             f"{row['percent']:.2f}%"]
            for row in report["rollup"]
        ],
    ))
    for dimension in ("tenants", "nodes"):
        rows = report["top_slowest"][dimension]
        if not rows:
            continue
        key = dimension[:-1]
        lines.extend(["", f"## Slowest {dimension}", ""])
        lines.extend(_md_table(
            [key, "requests", "errors", "max latency ns",
             "mean latency ns"],
            [
                [row[key], row["requests"], row["errors"],
                 row["max_latency_ns"], row["mean_latency_ns"]]
                for row in rows
            ],
        ))
    overload = report.get("extra", {}).get("overload")
    if overload and overload.get("nodes"):
        lines.extend(["", "## Overload & elasticity", ""])
        lines.extend(_md_table(
            ["node", "pool", "shed", "rejected", "timed out",
             "backoff retries", "degraded", "scale ups", "scale downs",
             "brownout floor"],
            [
                [
                    row["node"], row["pool_size"], row["shed"],
                    row["rejected"], row["timed_out"],
                    row["send_backoff_retries"],
                    row["degraded_responses"],
                    row.get("scale_ups", "-"),
                    row.get("scale_downs", "-"),
                    row.get("brownout_floor", "-"),
                ]
                for row in overload["nodes"]
            ],
        ))
        lines.append("")
        lines.append(
            "Sheds are brownout refusals (lowest priority first); "
            "backoff retries are transient ChannelFull sends absorbed "
            "by the gateway's exponential backoff."
        )
    return "\n".join(lines) + "\n"
