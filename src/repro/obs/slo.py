"""Declarative SLOs evaluated in virtual time with burn-rate alerting.

An :class:`SLOSpec` names an objective over a stream of
:class:`RequestEvent`\\ s — the per-request facts the serving layer
records at finish time.  Three kinds:

``availability``
    A request is *good* iff it succeeded (``ok``).
``latency``
    A request is *good* iff it finished within ``threshold_ns``
    (success or not — latency is judged on its own).
``goodput``
    A request is *good* iff it succeeded AND finished within
    ``threshold_ns`` — useful work delivered on time.

Evaluation replays the event stream onto fixed window grids of virtual
time (cell ``k`` of a window covers ``[k*W, (k+1)*W)``), so the result
is a pure function of the events: byte-identical across re-runs, no
wall-clock anywhere.

Alerting follows the multi-window burn-rate recipe: each spec carries a
*fast* and a *slow* :class:`BurnWindow`.  The error budget is
``1 - objective``; a window cell's burn rate is ``error_rate / budget``.
A cell alerts when its burn rate would consume the window's configured
share of the whole period's budget — by default the fast window alerts
on a 5%-of-budget burn (short, severe regressions) and the slow window
on a 1%-of-budget burn (long, shallow ones)::

    threshold = budget_share * period_ns / window_ns

Each firing cell emits one :class:`AlertEvent` — the signal autoscaling
policies consume and the run report's "burn-rate timeline" rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.clock import NS_PER_SEC

__all__ = [
    "RequestEvent",
    "BurnWindow",
    "SLOSpec",
    "AlertEvent",
    "WindowCell",
    "SLOResult",
    "DEFAULT_SLOS",
    "FAST_WINDOW",
    "SLOW_WINDOW",
    "evaluate_slos",
]

_KINDS = ("availability", "latency", "goodput")


@dataclass(frozen=True, order=True)
class RequestEvent:
    """One finished request, stamped from the virtual clock.

    ``at_ns`` is the finish time (the window the request lands in);
    events sort by ``(at_ns, node, tenant, latency_ns, ok)`` so merged
    multi-node streams are deterministic.
    """

    at_ns: int
    node: str = ""
    tenant: str = ""
    latency_ns: int = 0
    ok: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at_ns": self.at_ns,
            "node": self.node,
            "tenant": self.tenant,
            "latency_ns": self.latency_ns,
            "ok": self.ok,
        }


@dataclass(frozen=True)
class BurnWindow:
    """One burn-rate evaluation window.

    ``budget_share`` is the fraction of the *period's* error budget
    whose consumption within one window span trips the alert.
    """

    name: str
    window_ns: int
    budget_share: float

    def burn_threshold(self, period_ns: int) -> float:
        """The burn rate at which one window consumes ``budget_share``
        of the period's budget."""
        return self.budget_share * period_ns / self.window_ns


#: The default pair: a fast 1 ms window alerting at 5% budget burn and a
#: slow 10 ms window alerting at 1% — virtual-time analogues of the SRE
#: workbook's 1h/6h pair, scaled to runs that finish in milliseconds.
FAST_WINDOW = BurnWindow("fast", 1_000_000, 0.05)
SLOW_WINDOW = BurnWindow("slow", 10_000_000, 0.01)


@dataclass(frozen=True)
class SLOSpec:
    """A declarative objective over the request stream."""

    name: str
    kind: str
    objective: float
    threshold_ns: Optional[int] = None
    period_ns: int = NS_PER_SEC
    windows: Tuple[BurnWindow, ...] = (FAST_WINDOW, SLOW_WINDOW)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"SLO {self.name!r}: kind must be one of {_KINDS}, "
                f"got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: objective must be in (0, 1), "
                f"got {self.objective}"
            )
        if self.kind in ("latency", "goodput") and self.threshold_ns is None:
            raise ValueError(
                f"SLO {self.name!r}: kind {self.kind!r} needs threshold_ns"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def is_good(self, event: RequestEvent) -> bool:
        """Whether one request counts toward the objective."""
        if self.kind == "availability":
            return event.ok
        if self.kind == "latency":
            return event.latency_ns <= self.threshold_ns
        return event.ok and event.latency_ns <= self.threshold_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "threshold_ns": self.threshold_ns,
            "period_ns": self.period_ns,
            "windows": [
                {
                    "name": window.name,
                    "window_ns": window.window_ns,
                    "budget_share": window.budget_share,
                    "burn_threshold": round(
                        window.burn_threshold(self.period_ns), 9
                    ),
                }
                for window in self.windows
            ],
        }


@dataclass(frozen=True)
class WindowCell:
    """One non-empty cell of one burn window's grid."""

    window: str
    start_ns: int
    end_ns: int
    requests: int
    errors: int
    error_rate: float
    burn_rate: float
    alert: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 9),
            "burn_rate": round(self.burn_rate, 9),
            "alert": self.alert,
        }


@dataclass(frozen=True)
class AlertEvent:
    """One burn-rate alert: a window cell that blew its threshold.

    Sortable (slo, window start, window name) so merged alert lists are
    deterministic; this is the event autoscaling policies subscribe to.
    """

    slo: str
    window: str
    start_ns: int
    end_ns: int
    requests: int
    errors: int
    error_rate: float
    burn_rate: float
    threshold: float

    def sort_key(self) -> Tuple[Any, ...]:
        return (self.slo, self.start_ns, self.window)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "window": self.window,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 9),
            "burn_rate": round(self.burn_rate, 9),
            "threshold": round(self.threshold, 9),
        }


@dataclass
class SLOResult:
    """One spec's verdict over one event stream."""

    spec: SLOSpec
    requests: int
    errors: int
    achieved: float
    met: bool
    alerts: List[AlertEvent] = field(default_factory=list)
    timeline: List[WindowCell] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "requests": self.requests,
            "errors": self.errors,
            "achieved": round(self.achieved, 9),
            "met": self.met,
            "alert_count": len(self.alerts),
            "alerts": [alert.to_dict() for alert in self.alerts],
            "timeline": [cell.to_dict() for cell in self.timeline],
        }


#: The default objective set every run report evaluates: availability
#: (did it answer), latency (did it answer fast), goodput (did it do
#: useful work on time).  Thresholds are virtual-time, far above any
#: clean run's p99 so fault-free runs alert exactly zero times.
DEFAULT_SLOS: Tuple[SLOSpec, ...] = (
    SLOSpec("availability", "availability", objective=0.999),
    SLOSpec(
        "latency-p99", "latency", objective=0.99,
        threshold_ns=100_000_000,
    ),
    SLOSpec(
        "goodput", "goodput", objective=0.99,
        threshold_ns=250_000_000,
    ),
)


def _evaluate_window(
    spec: SLOSpec,
    window: BurnWindow,
    events: Sequence[RequestEvent],
) -> Tuple[List[WindowCell], List[AlertEvent]]:
    """Replay one window grid; returns (timeline cells, fired alerts)."""
    cells: Dict[int, List[int]] = {}
    for event in events:
        bucket = cells.setdefault(event.at_ns // window.window_ns, [0, 0])
        bucket[0] += 1
        if not spec.is_good(event):
            bucket[1] += 1
    threshold = window.burn_threshold(spec.period_ns)
    budget = spec.error_budget
    timeline: List[WindowCell] = []
    alerts: List[AlertEvent] = []
    for index in sorted(cells):
        requests, errors = cells[index]
        error_rate = errors / requests
        burn_rate = error_rate / budget
        fired = errors > 0 and burn_rate >= threshold
        cell = WindowCell(
            window=window.name,
            start_ns=index * window.window_ns,
            end_ns=(index + 1) * window.window_ns,
            requests=requests,
            errors=errors,
            error_rate=error_rate,
            burn_rate=burn_rate,
            alert=fired,
        )
        timeline.append(cell)
        if fired:
            alerts.append(AlertEvent(
                slo=spec.name,
                window=window.name,
                start_ns=cell.start_ns,
                end_ns=cell.end_ns,
                requests=requests,
                errors=errors,
                error_rate=error_rate,
                burn_rate=burn_rate,
                threshold=threshold,
            ))
    return timeline, alerts


def evaluate_slos(
    events: Sequence[RequestEvent],
    specs: Sequence[SLOSpec] = DEFAULT_SLOS,
) -> List[SLOResult]:
    """Evaluate every spec over one event stream.

    Pure and deterministic: sorted events in, sorted alerts out.  The
    overall verdict (``met``) compares the whole-stream good fraction to
    the objective; alerts are per window cell.
    """
    ordered = sorted(events)
    results: List[SLOResult] = []
    for spec in specs:
        errors = sum(1 for event in ordered if not spec.is_good(event))
        requests = len(ordered)
        achieved = (requests - errors) / requests if requests else 1.0
        alerts: List[AlertEvent] = []
        timeline: List[WindowCell] = []
        for window in spec.windows:
            cells, fired = _evaluate_window(spec, window, ordered)
            timeline.extend(cells)
            alerts.extend(fired)
        alerts.sort(key=AlertEvent.sort_key)
        timeline.sort(key=lambda cell: (cell.window, cell.start_ns))
        results.append(SLOResult(
            spec=spec,
            requests=requests,
            errors=errors,
            achieved=achieved,
            met=achieved >= spec.objective,
            alerts=alerts,
            timeline=timeline,
        ))
    return results
