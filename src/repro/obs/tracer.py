"""Span-based tracing driven entirely by the virtual clock.

A :class:`SpanTracer` records hierarchical spans — ``rpc``, ``ldc_copy``,
``serialize``, ``mprotect``, ``syscall_check``, ``agent_spawn``,
``restart``, ``batch``, ``admission_wait`` — whose start/end timestamps
are read from the simulation's :class:`~repro.sim.clock.VirtualClock`.
The tracer only ever *reads* the clock; instrumented code charges
exactly the same virtual time whether tracing is on or off, which is why
enabling traces leaves every reproduced number (the 3.68% overhead
figure included) unchanged.

The simulation is single-threaded and cooperative, so one global span
stack yields correct parent/child nesting; each span additionally
carries the ``pid`` of the simulated process it belongs to, which the
Chrome exporter turns into one process row per agent (and one per
tenant lane in serve mode).

The default tracer on every kernel is :data:`NULL_TRACER`, whose
``enabled`` flag lets hot paths skip instrumentation entirely::

    if tracer.enabled:
        with tracer.span("syscall", category="syscall", pid=pid):
            clock.advance(cost.syscall_ns)
    else:
        clock.advance(cost.syscall_ns)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One traced operation: a named interval of virtual time.

    ``out_of_band`` marks retrospective spans (e.g. ``admission_wait``,
    reconstructed from a request's enqueue timestamp) that overlap other
    work on the timeline; the mechanism rollup excludes them so its
    total still equals the run's end-to-end virtual time.
    """

    span_id: int
    name: str
    category: str
    start_ns: int
    end_ns: int
    pid: int
    parent_id: Optional[int]
    depth: int
    kind: str = "span"  # "span" | "instant"
    out_of_band: bool = False
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes after the span opened (e.g. once routed)."""
        self.attrs.update(attrs)


class _OpenSpan:
    """Context manager closing one span at the tracer's current clock."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def annotate(self, **attrs: Any) -> None:
        self._span.annotate(**attrs)

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self._span)


class SpanTracer:
    """Collects spans against one virtual clock."""

    enabled = True

    def __init__(self, clock: Any) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self.track_names: Dict[int, str] = {}
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(
        self, name: str, category: str, pid: int = 0, **attrs: Any
    ) -> _OpenSpan:
        """Open a span now; closes (even on exception) at ``with`` exit."""
        parent = self.current
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start_ns=self.clock.now_ns,
            end_ns=-1,
            pid=pid,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return _OpenSpan(self, span)

    def _close(self, span: Span) -> None:
        span.end_ns = self.clock.now_ns
        # Exceptions can unwind several instrumented frames at once; pop
        # everything the closing span still covers.
        while self._stack:
            popped = self._stack.pop()
            if popped.end_ns < 0:
                popped.end_ns = span.end_ns
            if popped is span:
                break

    def instant(
        self, name: str, category: str, pid: int = 0, **attrs: Any
    ) -> Span:
        """Record a zero-duration event at the current virtual time."""
        now = self.clock.now_ns
        parent = self.current
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start_ns=now,
            end_ns=now,
            pid=pid,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            kind="instant",
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def add_span(
        self,
        name: str,
        category: str,
        start_ns: int,
        end_ns: int,
        pid: int = 0,
        out_of_band: bool = True,
        **attrs: Any,
    ) -> Span:
        """Record a completed span with explicit timestamps.

        Used for retrospective intervals like ``admission_wait``, whose
        start (the enqueue time) predates the instrumentation point.
        Defaults to out-of-band: visible in exports, excluded from the
        mechanism rollup's time accounting.
        """
        parent = self.current
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start_ns=start_ns,
            end_ns=end_ns,
            pid=pid,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            out_of_band=out_of_band,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Track naming (Chrome "process" rows)
    # ------------------------------------------------------------------

    def name_track(self, pid: int, name: str) -> None:
        """Label the export row for one simulated pid (first name wins)."""
        self.track_names.setdefault(pid, name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def closed_spans(self) -> List[Span]:
        """Spans whose interval is complete (open spans excluded)."""
        return [s for s in self.spans if s.end_ns >= 0]

    def by_category(self) -> Dict[str, List[Span]]:
        grouped: Dict[str, List[Span]] = {}
        for span in self.closed_spans():
            grouped.setdefault(span.category, []).append(span)
        return grouped


class _NullOpenSpan:
    """Shared no-op context manager; also absorbs ``annotate``."""

    __slots__ = ()

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullOpenSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_OPEN_SPAN = _NullOpenSpan()


class NullTracer:
    """The zero-cost default: every operation is a no-op.

    ``enabled`` is False so hot paths (syscall entry, channel send, copy)
    can skip building span attributes altogether; code that does call
    through pays one attribute lookup and a shared no-op context manager.
    """

    enabled = False
    spans: Tuple[Span, ...] = ()
    track_names: Dict[int, str] = {}

    @property
    def current(self) -> None:
        return None

    def span(self, name: str, category: str, pid: int = 0, **attrs: Any):
        return _NULL_OPEN_SPAN

    def instant(self, name: str, category: str, pid: int = 0, **attrs: Any):
        return None

    def add_span(self, *args: Any, **kwargs: Any) -> None:
        return None

    def name_track(self, pid: int, name: str) -> None:
        pass

    def closed_spans(self) -> List[Span]:
        return []

    def by_category(self) -> Dict[str, List[Span]]:
        return {}


NULL_TRACER = NullTracer()
