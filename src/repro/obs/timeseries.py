"""Windowed, dimensionally-labeled time-series over the virtual clock.

A :class:`TimeSeries` is a named stream of integer observations carrying
a fixed set of labels — the dimensions run reports slice by: ``tenant``,
``node``, ``agent-pool``, ``mechanism``, ``partition``.  Observations
are bucketed into fixed-width *windows* of virtual time (window ``k``
covers ``[k * window_ns, (k + 1) * window_ns)``), so a series is a
timeline, not just a total: burn-rate alerting and the run-report
"p99 over time" sections read window aggregates directly.

Every window keeps a :class:`FixedGridSketch`, a quantile sketch over a
*fixed* geometric grid of integer bucket bounds.  Unlike adaptive
sketches (t-digest, DDSketch with collapsing), the grid never depends on
the data, so p50/p99/p999 are pure functions of the observation multiset
— streamable, mergeable, and byte-identical across re-runs and machines.
The grid ratio is 1.25 (integer arithmetic, no floats), so a reported
quantile is the smallest grid bound at or above the true ceil-rank
observation: at most 25% above it, never below.

Nothing in this module reads wall time or advances the virtual clock;
recording an observation is free in virtual time.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_WINDOW_NS",
    "QUANTILE_GRID",
    "FixedGridSketch",
    "TimeSeries",
    "TimeSeriesRegistry",
    "series_key",
]

#: Default window width: 1 ms of virtual time, matching the fast SLO
#: burn window so series windows and alert cells line up 1:1.
DEFAULT_WINDOW_NS = 1_000_000


def _build_grid(start: int = 1_000, limit: int = 10 ** 13) -> Tuple[int, ...]:
    """The fixed quantile grid: 1 µs upward at ratio 5/4, integers only.

    Integer arithmetic (``max(b + 1, b * 5 // 4)``) keeps the grid
    platform-independent; ~100 bounds reach past 2.7 virtual hours.
    """
    bounds: List[int] = []
    bound = start
    while bound <= limit:
        bounds.append(bound)
        bound = max(bound + 1, bound * 5 // 4)
    return tuple(bounds)


QUANTILE_GRID: Tuple[int, ...] = _build_grid()


class FixedGridSketch:
    """A streaming quantile sketch over the fixed geometric grid.

    ``counts[i]`` counts observations ``<= QUANTILE_GRID[i]`` (and above
    the previous bound); the final slot is the overflow bucket.  The
    exact ``min_value``/``max_value`` are tracked alongside, so p0/p100
    are exact and an overflow-bucket quantile degrades to the true
    maximum instead of an unbounded grid edge.
    """

    __slots__ = ("counts", "count", "total", "min_value", "max_value")

    grid: Tuple[int, ...] = QUANTILE_GRID

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min_value: Optional[int] = None
        self.max_value: Optional[int] = None

    def observe(self, value: int) -> None:
        value = int(value)
        slot = bisect.bisect_left(self.grid, value)
        self.counts[slot] = self.counts.get(slot, 0) + 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def merge(self, other: "FixedGridSketch") -> None:
        """Fold another sketch in (same grid by construction)."""
        for slot, count in other.counts.items():
            self.counts[slot] = self.counts.get(slot, 0) + count
        self.count += other.count
        self.total += other.total
        for bound in (other.min_value,):
            if bound is not None and (
                self.min_value is None or bound < self.min_value
            ):
                self.min_value = bound
        for bound in (other.max_value,):
            if bound is not None and (
                self.max_value is None or bound > self.max_value
            ):
                self.max_value = bound

    def quantile(self, fraction: float) -> int:
        """The grid upper bound covering the ceil-rank observation.

        ``rank = ceil(fraction * count)``; walking the grid in order,
        the first bucket whose cumulative count reaches ``rank`` yields
        the answer.  An overflow-bucket hit returns the exact tracked
        maximum; an empty sketch returns 0.
        """
        if self.count == 0:
            return 0
        rank = max(1, -(-int(fraction * self.count * 1_000_000) // 1_000_000))
        cumulative = 0
        for slot in sorted(self.counts):
            cumulative += self.counts[slot]
            if cumulative >= rank:
                if slot >= len(self.grid):
                    return int(self.max_value)
                bound = self.grid[slot]
                # Never report above the true maximum (a single small
                # sample would otherwise round up to its grid bound).
                if self.max_value is not None and bound > self.max_value:
                    return int(self.max_value)
                return bound
        return int(self.max_value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min_value if self.min_value is not None else 0,
            "max": self.max_value if self.max_value is not None else 0,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }


def series_key(name: str, labels: Mapping[str, str]) -> str:
    """The canonical flat key of one labeled series.

    ``name{k=v,k2=v2}`` with label keys sorted — the snapshot dict key,
    stable across runs regardless of label insertion order.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class TimeSeries:
    """One labeled series: per-window aggregates plus a run total."""

    __slots__ = ("name", "labels", "window_ns", "windows", "overall")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        window_ns: int = DEFAULT_WINDOW_NS,
    ) -> None:
        if window_ns < 1:
            raise ValueError(f"series {name!r} needs window_ns >= 1")
        self.name = name
        self.labels: Tuple[Tuple[str, str], ...] = tuple(
            (k, str(labels[k])) for k in sorted(labels)
        )
        self.window_ns = window_ns
        self.windows: Dict[int, FixedGridSketch] = {}
        self.overall = FixedGridSketch()

    @property
    def key(self) -> str:
        return series_key(self.name, dict(self.labels))

    def observe(self, t_ns: int, value: int) -> None:
        """Record one observation at virtual time ``t_ns``."""
        index = t_ns // self.window_ns
        window = self.windows.get(index)
        if window is None:
            window = self.windows[index] = FixedGridSketch()
        window.observe(value)
        self.overall.observe(value)

    def merge(self, other: "TimeSeries") -> None:
        """Fold another series with the same key and window width in."""
        if other.window_ns != self.window_ns:
            raise ValueError(
                f"cannot merge series {self.key!r}: window "
                f"{other.window_ns} != {self.window_ns}"
            )
        for index, sketch in other.windows.items():
            mine = self.windows.get(index)
            if mine is None:
                mine = self.windows[index] = FixedGridSketch()
            mine.merge(sketch)
        self.overall.merge(other.overall)

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON view: labels, totals, ordered windows."""
        return {
            "labels": dict(self.labels),
            "window_ns": self.window_ns,
            "overall": self.overall.snapshot(),
            "windows": [
                {
                    "start_ns": index * self.window_ns,
                    **self.windows[index].snapshot(),
                }
                for index in sorted(self.windows)
            ],
        }


class TimeSeriesRegistry:
    """Named, labeled series created on first use.

    Lives on each :class:`~repro.sim.kernel.SimKernel` (``kernel.series``)
    next to the metrics registry; instrumentation points pass explicit
    virtual timestamps or let the registry read the kernel clock.
    """

    def __init__(
        self, clock: Any = None, window_ns: int = DEFAULT_WINDOW_NS
    ) -> None:
        self.clock = clock
        self.window_ns = window_ns
        self._series: Dict[str, TimeSeries] = {}

    def series(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> TimeSeries:
        labels = labels or {}
        key = series_key(name, labels)
        found = self._series.get(key)
        if found is None:
            found = self._series[key] = TimeSeries(
                name, labels, window_ns=self.window_ns
            )
        return found

    def observe(
        self,
        name: str,
        labels: Optional[Mapping[str, str]],
        value: int,
        t_ns: Optional[int] = None,
    ) -> None:
        """Record one observation (defaults to the clock's current time)."""
        if t_ns is None:
            if self.clock is None:
                raise ValueError(
                    f"series {name!r}: no clock attached, pass t_ns"
                )
            t_ns = self.clock.now_ns
        self.series(name, labels).observe(t_ns, value)

    def all_series(self) -> List[TimeSeries]:
        return [self._series[key] for key in sorted(self._series)]

    @property
    def points(self) -> int:
        """Total observations across every series."""
        return sum(series.overall.count for series in self._series.values())

    def merge(self, other: "TimeSeriesRegistry") -> None:
        """Fold another registry in (cluster reports merge node views)."""
        for series in other.all_series():
            key = series.key
            mine = self._series.get(key)
            if mine is None:
                mine = self._series[key] = TimeSeries(
                    series.name, dict(series.labels),
                    window_ns=series.window_ns,
                )
            mine.merge(series)

    @classmethod
    def merged(
        cls, registries: Iterable["TimeSeriesRegistry"]
    ) -> "TimeSeriesRegistry":
        merged = cls(clock=None)
        for registry in registries:
            merged.merge(registry)
        return merged

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic (sorted-key) view of every series."""
        return {
            key: self._series[key].snapshot()
            for key in sorted(self._series)
        }
