"""The hook object the simulated substrate consults for faults.

Mirrors the tracing layer's NULL-object pattern: every kernel carries
:data:`NULL_INJECTOR` (one ``enabled`` flag check on hot paths, zero
draws, zero behavior change); ``kernel.inject_faults(FaultInjector(plan))``
walks the live topology and arms the hooks.

Every injected fault is recorded as an :class:`InjectedFault` *and*
emitted as an ``obs`` trace instant (category ``"fault"``, carrying the
same ``fault_id``), which is what the chaos campaign's fourth invariant
— "every injected fault appears as an obs span" — checks 1:1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.plan import FaultKind, NoFaultPlan


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector actually fired."""

    fault_id: int
    kind: FaultKind
    site: str
    at_ns: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault_id": self.fault_id,
            "kind": self.kind.value,
            "site": self.site,
            "at_ns": self.at_ns,
            "detail": dict(sorted(self.detail.items())),
        }


class NullInjector:
    """Zero-cost default: hot paths check ``enabled`` and move on."""

    enabled = False

    def attach(self, kernel: Any) -> None:
        pass

    def rpc_crash_point(self, agent: Any, request: Any) -> Optional[FaultKind]:
        return None

    def channel_action(
        self, channel: Any, kind: str, nbytes: int
    ) -> Optional[FaultKind]:
        return None

    def checkpoint_tear(self, agent: Any, items: int) -> Optional[int]:
        return None

    def restart_crash(self, agent: Any) -> bool:
        return False

    def node_failure(self, candidates: Any) -> Optional[int]:
        return None


NULL_INJECTOR = NullInjector()


class FaultInjector:
    """Arms a :class:`~repro.faults.plan.FaultPlan` against one machine."""

    enabled = True

    def __init__(
        self,
        plan: Optional[NoFaultPlan] = None,
        ids: Optional[Any] = None,
    ) -> None:
        self.plan = plan if plan is not None else NoFaultPlan()
        self.kernel: Any = None
        self.injected: List[InjectedFault] = []
        #: Fault-id source.  A cluster arms one injector per node but
        #: passes a shared counter, so fault ids stay unique
        #: cluster-wide and the "observed" invariant matches 1:1.
        self._ids = ids if ids is not None else itertools.count(1)

    def attach(self, kernel: Any) -> None:
        """Bind to a machine (called by ``kernel.inject_faults``)."""
        self.kernel = kernel

    # ------------------------------------------------------------------
    # Hook points
    # ------------------------------------------------------------------

    def rpc_crash_point(self, agent: Any, request: Any) -> Optional[FaultKind]:
        """Consulted once per RPC execution inside the agent."""
        point = self.plan.rpc_crash_point(request.api_qualname, request.seq)
        if point is not None:
            self._record(
                point,
                site=f"rpc:{request.api_qualname}",
                pid=agent.process.pid,
                agent=agent.partition.label,
                seq=request.seq,
            )
        return point

    def channel_action(
        self, channel: Any, kind: str, nbytes: int
    ) -> Optional[FaultKind]:
        """Consulted once per channel send."""
        verdict = self.plan.channel_verdict(channel.name, kind, nbytes)
        if verdict is not None:
            self._record(
                verdict,
                site=f"channel:{channel.name}",
                message_kind=kind,
                bytes=nbytes,
            )
        return verdict

    def checkpoint_tear(self, agent: Any, items: int) -> Optional[int]:
        """Consulted once per checkpoint write; returns the tear offset."""
        offset = self.plan.checkpoint_tear(agent.partition.label, items)
        if offset is not None:
            self._record(
                FaultKind.CHECKPOINT_TEAR,
                site=f"checkpoint:{agent.partition.label}",
                pid=agent.process.pid,
                items=items,
                offset=offset,
            )
        return offset

    def restart_crash(self, agent: Any) -> bool:
        """Consulted once per restart attempt (after the replacement
        spawned); True kills the replacement immediately."""
        hit = self.plan.restart_crash(agent.partition.label)
        if hit:
            self._record(
                FaultKind.RESTART_CRASH,
                site=f"restart:{agent.partition.label}",
                pid=agent.process.pid,
            )
        return hit

    def node_failure(self, candidates: Any) -> Optional[int]:
        """Consulted by the cluster between request dispatches; returns
        the index of the node that dies now, or None."""
        victim = self.plan.node_failure(list(candidates))
        if victim is not None:
            self._record(
                FaultKind.NODE_FAILURE,
                site=f"node:{victim}",
                node=victim,
                candidates=len(list(candidates)),
            )
        return victim

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _record(self, kind: FaultKind, site: str, **detail: Any) -> InjectedFault:
        at_ns = self.kernel.clock.now_ns if self.kernel is not None else 0
        fault = InjectedFault(
            fault_id=next(self._ids),
            kind=kind,
            site=site,
            at_ns=at_ns,
            detail=detail,
        )
        self.injected.append(fault)
        if self.kernel is not None:
            tracer = self.kernel.tracer
            if tracer.enabled:
                tracer.instant(
                    "fault", category="fault",
                    pid=int(detail.get("pid", 0)),
                    fault_id=fault.fault_id, kind=kind.value, site=site,
                )
        return fault

    def by_kind(self) -> Dict[str, int]:
        """Injected-fault counts keyed by kind value (sorted, for reports)."""
        counts: Dict[str, int] = {}
        for fault in self.injected:
            counts[fault.kind.value] = counts.get(fault.kind.value, 0) + 1
        return dict(sorted(counts.items()))
