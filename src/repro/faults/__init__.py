"""Seeded, deterministic fault injection for the simulated substrate.

The paper's availability mechanisms — agent restart, at-least-once RPC,
periodic checkpoints of stateful APIs (Section 4.4.2, Appendix A.2.4) —
are only ever exercised by happy-path crash tests unless something
adversarial schedules faults *inside* the RPC, IPC, and checkpoint
machinery.  This package provides that scheduler:

:class:`~repro.faults.plan.FaultPlan`
    A seeded RNG making one deterministic draw per decision point
    (every channel send, every RPC execution, every checkpoint write,
    every restart).  The simulation is single-threaded, so a seed fully
    determines the fault schedule.
:class:`~repro.faults.injector.FaultInjector`
    The hook object the sim kernel consults.  Installed with
    ``kernel.inject_faults(...)`` (mirroring ``kernel.enable_tracing``);
    the default on every kernel is the zero-cost :data:`NULL_INJECTOR`.
:mod:`~repro.faults.campaign`
    Seeded chaos campaigns over apps, CVE replays, and the serving
    bench, asserting the recovery invariants after every schedule.
"""

from repro.faults.injector import NULL_INJECTOR, FaultInjector, NullInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultRates, NoFaultPlan

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultRates",
    "NoFaultPlan",
    "FaultInjector",
    "NullInjector",
    "NULL_INJECTOR",
]
