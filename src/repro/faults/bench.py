"""Availability under injected faults: goodput and recovery latency.

Sweeps the multi-tenant serving workload over a set of fault rates.
At each rate the sweep runs N seeded schedules (same derivation as the
chaos campaign) and reports:

``goodput``
    Fraction of submitted requests answered OK across all schedules —
    the availability the hardened recovery path actually delivers.
``p50/p99 recovery latency``
    Extra virtual time a faulted schedule spent relative to the
    fault-free baseline (backoff sleeps, restarts, retransmissions) —
    the latency cost of recovering instead of failing.

Every number derives from the virtual clock and seeded RNG draws, so
the whole report — including its digest — is byte-identical across
reruns with the same arguments.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Sequence

from repro.faults.campaign import ChaosSettings, check_invariants, run_target
from repro.faults.plan import FaultPlan, FaultRates

#: Fault rates of the standard availability sweep (fault-free, 1%, 5%).
DEFAULT_FAULT_RATES = (0.0, 0.01, 0.05)

#: The serving workload submits this many requests per run per tenant
#: pair (2 tenants x items requests each).
TENANTS = 2


def _percentile(values: Sequence[int], pct: float) -> int:
    """Deterministic nearest-rank percentile (0 for an empty sequence)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def _point(rate: float, settings: ChaosSettings, baseline) -> Dict[str, Any]:
    """Run every schedule at one fault rate and aggregate the sweep row."""
    rates = FaultRates.scaled(rate)
    per_run = TENANTS * settings.items
    ok_requests = 0
    faults = 0
    restarts = 0
    retries = 0
    recovery_ns: List[int] = []
    invariants_held = True
    for index in range(settings.campaign):
        plan = FaultPlan(settings.schedule_seed(index), rates)
        outcome = run_target(settings.target, settings, plan)
        ok_requests += per_run - outcome.losses_accounted
        faults += len(outcome.fault_ids)
        restarts += outcome.restarts
        retries += outcome.retries
        recovery_ns.append(max(0, outcome.virtual_ns - baseline.virtual_ns))
        if not all(check_invariants(baseline, outcome).values()):
            invariants_held = False
    total = per_run * settings.campaign
    return {
        "fault_rate": rate,
        "schedules": settings.campaign,
        "total_requests": total,
        "ok_requests": ok_requests,
        "goodput": ok_requests / total,
        "faults_injected": faults,
        "restarts": restarts,
        "retries": retries,
        "p50_recovery_ns": _percentile(recovery_ns, 50),
        "p99_recovery_ns": _percentile(recovery_ns, 99),
        "invariants_held": invariants_held,
    }


def availability_report(
    seed: int = 0,
    schedules: int = 8,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    items: int = 2,
    image_size: int = 16,
) -> Dict[str, Any]:
    """Goodput + recovery-latency sweep over ``fault_rates``.

    Returns a JSON-ready dict with one point per rate and a sha256
    ``digest`` over everything else — byte-identical for a fixed
    argument tuple.
    """
    def settings_for(rate: float) -> ChaosSettings:
        return ChaosSettings(
            target="serve-bench", seed=seed, campaign=schedules,
            fault_rate=rate, items=items, image_size=image_size,
        )

    # One fault-free baseline serves every rate (the plan is the only
    # thing a rate changes).
    baseline = run_target("serve-bench", settings_for(0.0), plan=None)
    points = [
        _point(rate, settings_for(rate), baseline) for rate in fault_rates
    ]
    report: Dict[str, Any] = {
        "target": "serve-bench",
        "seed": seed,
        "schedules": schedules,
        "items": items,
        "image_size": image_size,
        "points": points,
    }
    payload = json.dumps(report, sort_keys=True, separators=(",", ":"))
    report["digest"] = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return report
