"""Seeded chaos campaigns: run a target many times under injected faults.

One campaign runs N *schedules* of one target (an evaluation app, a CVE
replay, or the multi-tenant serving workload).  Schedule ``i`` derives
its own seed from the campaign seed, builds a
:class:`~repro.faults.plan.FaultPlan`, arms it on a fresh machine, runs
the target, and checks four invariants against a fault-free baseline run
of the same target:

``output``
    Everything the faulted run wrote under ``/out`` is byte-identical to
    the baseline's file of the same path, and a run that *claims*
    success produced exactly the baseline's outputs.  Partial output is
    only acceptable on a clean failure — whole-run, or item-level losses
    the run itself accounted for (crashes survived, failed responses).
``frozen``
    No write onto a frozen (temporal read-only) page ever completed —
    fault injection must not weaken the paper's protection.
``refs``
    No tenant-namespaced ObjectRef survived the restart of the address
    space that minted it (serving target only; vacuous elsewhere).
``observed``
    Every injected fault appears as an ``obs`` trace instant (category
    ``"fault"``) carrying its fault id — chaos runs are fully auditable.

Everything — fault draws, virtual timing, outputs — is a pure function
of (target, seed, rates), so a campaign report's digest is byte-stable
across runs and machines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRates

#: Spreads schedule seeds far apart so adjacent campaigns don't overlap.
SCHEDULE_SEED_STRIDE = 1_000_003

#: Recovery knobs every chaos run enables (the hardened configuration
#: under test): crash-retries per dispatch and a per-agent restart
#: budget that restart storms can exhaust without wedging the run.
CHAOS_RPC_RETRIES = 2
CHAOS_MAX_RESTARTS = 8


@dataclass(frozen=True)
class ChaosSettings:
    """Everything that determines a campaign (and hence its digest)."""

    target: str
    seed: int = 0
    campaign: int = 20
    fault_rate: float = 0.02
    items: int = 2
    image_size: int = 16
    #: Cluster width for the ``cluster`` target (single-kernel targets
    #: ignore it; they have exactly one machine).
    nodes: int = 1
    #: Load profile for the ``loadgen`` target (diurnal | burst |
    #: flash); other targets ignore it.
    profile: str = "burst"

    def schedule_seed(self, index: int) -> int:
        """The derived seed of schedule ``index``."""
        return self.seed * SCHEDULE_SEED_STRIDE + index


@dataclass
class RunOutcome:
    """What one run of the target (baseline or faulted) produced."""

    ok: bool
    failed_clean: bool
    error: str
    outputs: Dict[str, str]
    frozen_writes: int
    stale_refs: int
    fault_ids: Tuple[int, ...]
    observed_fault_ids: Tuple[int, ...]
    injected_by_kind: Dict[str, int]
    decisions: int
    virtual_ns: int
    restarts: int
    retries: int
    #: Cleanly absorbed losses (items skipped after a survived crash,
    #: failed/degraded serve responses).  Missing outputs are only
    #: acceptable when the run accounted for the loss here or failed.
    losses_accounted: int = 0
    #: Per-request :class:`~repro.obs.slo.RequestEvent`s (serving
    #: targets only; empty elsewhere).  Sorted, so SLO evaluation over
    #: them is deterministic.  NOT part of the digest — ScheduleResult
    #: carries only aggregates.
    request_events: Tuple = ()
    #: Autoscaler decisions (``loadgen`` target only; 0 elsewhere).
    scale_ups: int = 0
    #: Brownout refusals (``loadgen`` target only; 0 elsewhere).
    shed_requests: int = 0


@dataclass
class ScheduleResult:
    """One faulted schedule's verdict."""

    index: int
    seed: int
    ok: bool
    failed_clean: bool
    error: str
    injected: Dict[str, int]
    decisions: int
    invariants: Dict[str, bool]
    virtual_ns: int
    restarts: int
    scale_ups: int = 0
    shed_requests: int = 0

    @property
    def passed(self) -> bool:
        """All four invariants held."""
        return all(self.invariants.values())

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON view (digest input)."""
        return {
            "index": self.index,
            "seed": self.seed,
            "ok": self.ok,
            "failed_clean": self.failed_clean,
            "error": self.error,
            "injected": dict(sorted(self.injected.items())),
            "decisions": self.decisions,
            "invariants": dict(sorted(self.invariants.items())),
            "passed": self.passed,
            "virtual_ns": self.virtual_ns,
            "restarts": self.restarts,
            "scale_ups": self.scale_ups,
            "shed_requests": self.shed_requests,
        }


@dataclass
class CampaignReport:
    """The full campaign: settings, baseline fingerprint, N schedules."""

    settings: ChaosSettings
    baseline_outputs: Dict[str, str]
    schedules: List[ScheduleResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Every schedule's every invariant held."""
        return all(schedule.passed for schedule in self.schedules)

    @property
    def faults_injected(self) -> int:
        return sum(
            sum(schedule.injected.values()) for schedule in self.schedules
        )

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON view; json.dumps(sort_keys=True) is the digest
        input, so every field here must be deterministic."""
        return {
            "target": self.settings.target,
            "seed": self.settings.seed,
            "campaign": self.settings.campaign,
            "fault_rate": self.settings.fault_rate,
            "items": self.settings.items,
            "image_size": self.settings.image_size,
            "nodes": self.settings.nodes,
            "profile": self.settings.profile,
            "baseline_outputs": dict(sorted(self.baseline_outputs.items())),
            "schedules": [s.to_dict() for s in self.schedules],
            "passed": self.passed,
            "faults_injected": self.faults_injected,
        }

    def digest(self) -> str:
        """Byte-stable fingerprint of the whole campaign."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Output fingerprinting
# ----------------------------------------------------------------------


def _payload_digest(payload: Any) -> str:
    """Content digest of one simulated file's payload."""
    import numpy as np

    hasher = hashlib.sha256()
    if isinstance(payload, np.ndarray):
        hasher.update(str(payload.shape).encode())
        hasher.update(str(payload.dtype).encode())
        hasher.update(payload.tobytes())
    elif isinstance(payload, bytes):
        hasher.update(payload)
    else:
        data = getattr(payload, "data", None)
        if isinstance(data, np.ndarray):
            return _payload_digest(data)
        hasher.update(repr(payload).encode())
    return hasher.hexdigest()


def fingerprint_outputs(kernel, prefix: str = "/out") -> Dict[str, str]:
    """path -> content digest for every file the run wrote under /out."""
    outputs: Dict[str, str] = {}
    for path in sorted(kernel.fs.listdir(prefix)):
        outputs[path] = _payload_digest(kernel.fs.read_file(path))
    return outputs


def _observed_fault_ids(tracer) -> Tuple[int, ...]:
    """fault_ids of every ``fault`` obs instant the run emitted."""
    ids = []
    for span in tracer.closed_spans():
        if span.category == "fault":
            fault_id = span.attrs.get("fault_id")
            if fault_id is not None:
                ids.append(int(fault_id))
    return tuple(sorted(ids))


def _frozen_writes(kernel) -> int:
    """Completed writes onto frozen pages, machine-wide (must be 0)."""
    return sum(
        process.memory.frozen_write_granted
        for process in kernel.processes()
    )


# ----------------------------------------------------------------------
# Target runners
# ----------------------------------------------------------------------


def _chaos_config(annotations: Tuple[Any, ...] = ()):
    from repro.core.runtime import FreePartConfig

    return FreePartConfig(
        trace=True,
        annotations=annotations,
        rpc_retries=CHAOS_RPC_RETRIES,
        max_restarts_per_agent=CHAOS_MAX_RESTARTS,
    )


def _make_kernel(plan: Optional[FaultPlan]):
    from repro.sim.kernel import SimKernel

    kernel = SimKernel()
    kernel.enable_tracing()
    injector = FaultInjector(plan) if plan is not None else None
    if injector is not None:
        kernel.inject_faults(injector)
    return kernel, injector


def _outcome(
    kernel,
    injector: Optional[FaultInjector],
    plan: Optional[FaultPlan],
    ok: bool,
    failed_clean: bool,
    error: str,
    outputs: Dict[str, str],
    stale_refs: int = 0,
    restarts: int = 0,
    retries: int = 0,
    losses_accounted: int = 0,
    request_events: Tuple = (),
) -> RunOutcome:
    injected = injector.injected if injector is not None else []
    return RunOutcome(
        ok=ok,
        failed_clean=failed_clean,
        error=error,
        outputs=outputs,
        frozen_writes=_frozen_writes(kernel),
        stale_refs=stale_refs,
        fault_ids=tuple(sorted(f.fault_id for f in injected)),
        observed_fault_ids=_observed_fault_ids(kernel.tracer),
        injected_by_kind=(
            injector.by_kind() if injector is not None else {}
        ),
        decisions=plan.decisions if plan is not None else 0,
        virtual_ns=kernel.clock.now_ns,
        restarts=kernel.restarted_processes,
        retries=retries,
        losses_accounted=losses_accounted,
        request_events=request_events,
    )


def _run_app(target: str, settings: ChaosSettings,
             plan: Optional[FaultPlan]) -> RunOutcome:
    """One run of an evaluation application (faulted when plan given)."""
    from repro.apps.base import Workload, execute_app
    from repro.attacks.scenarios import build_gateway

    if target in ("drone", "drone-tracker"):
        from repro.apps.drone import DroneApp

        app = DroneApp()
    else:
        from repro.apps.suite import make_app

        app = make_app(int(target))
    kernel, injector = _make_kernel(plan)
    config = _chaos_config(annotations=tuple(app.annotations))
    gateway = build_gateway("freepart", kernel, app=app, config=config)
    workload = Workload(items=settings.items, image_size=settings.image_size)
    report = execute_app(app, gateway, workload)
    return _outcome(
        kernel, injector, plan,
        ok=not report.failed,
        failed_clean=report.failed,
        error=report.error,
        outputs=fingerprint_outputs(kernel),
        restarts=report.restarts,
        retries=gateway.retransmits,
        losses_accounted=(
            report.result.crashes_survived if report.result else 0
        ),
    )


def _run_cve(target: str, settings: ChaosSettings,
             plan: Optional[FaultPlan]) -> RunOutcome:
    """One protected CVE replay (the attack must stay prevented)."""
    from repro.attacks.scenarios import run_attack

    kernel, injector = _make_kernel(plan)
    config = _chaos_config()
    try:
        result = run_attack(
            target, technique="freepart", kernel=kernel, config=config
        )
    except ReproError as exc:
        # Recovery machinery gave up (restart budget, retransmit cap):
        # the experiment aborted cleanly before the verdict.
        return _outcome(
            kernel, injector, plan,
            ok=False, failed_clean=True,
            error=f"{type(exc).__name__}: {exc}",
            outputs=fingerprint_outputs(kernel),
        )
    outputs = fingerprint_outputs(kernel)
    # The attacker-goal booleans are part of the "output": a fault must
    # never flip one of them to True.
    for goal in ("data_corrupted", "data_exfiltrated",
                 "host_crashed", "code_rewritten"):
        outputs[f"goal:{goal}"] = str(getattr(result, goal))
    return _outcome(
        kernel, injector, plan,
        ok=result.delivered,
        failed_clean=not result.delivered,
        error="" if result.delivered else "exploit aborted before arming",
        outputs=outputs,
        restarts=result.agent_crashes,
        # CVE apps absorb crashes per item (crashes_survived); a crash
        # observed during the replay accounts for missing output files.
        losses_accounted=result.agent_crashes,
    )


def _run_serve(settings: ChaosSettings,
               plan: Optional[FaultPlan]) -> RunOutcome:
    """One multi-tenant serving workload (2 tenants x items requests)."""
    import numpy as np

    from repro.serve.bench import standard_pipeline
    from repro.serve.server import PipelineServer

    kernel, injector = _make_kernel(plan)
    server = PipelineServer(
        kernel=kernel,
        config=_chaos_config(),
        pool_size=2,
        batching=True,
        max_retries=CHAOS_RPC_RETRIES,
    )
    rng = np.random.default_rng(0)
    for tenant in range(2):
        for index in range(settings.items):
            path = f"/data/tenant-{tenant}/in-{index}.png"
            kernel.fs.write_file(
                path,
                rng.normal(size=(settings.image_size, settings.image_size)),
            )
            server.submit(
                f"tenant-{tenant}",
                standard_pipeline(
                    path, f"/out/tenant-{tenant}/out-{index}.png"
                ),
            )
    responses = server.drain()
    stale = server.registry.stale_keys(kernel.processes())
    failed = [r for r in responses if not r.ok]
    outcome = _outcome(
        kernel, injector, plan,
        ok=not failed,
        failed_clean=bool(failed),
        error=failed[0].error if failed else "",
        outputs=fingerprint_outputs(kernel),
        stale_refs=len(stale),
        retries=sum(r.retries for r in responses),
        losses_accounted=len(failed),
        request_events=tuple(sorted(server.events)),
    )
    server.shutdown()
    return outcome


def _run_loadgen(settings: ChaosSettings,
                 plan: Optional[FaultPlan]) -> RunOutcome:
    """One open-loop load-profile replay with the elastic controllers.

    The canonical schedule of ``settings.profile`` (same for every
    schedule in the campaign — only the fault plan varies) drives a
    server with the autoscaler and brownout controller armed.  Brownout
    sheds and failed responses are accounted losses: the chaos output
    invariant tolerates their missing files, never different ones.
    """
    from repro.serve.loadbench import (
        CONTROL_BUDGET_NS, canonical_schedule, elastic_config,
    )
    from repro.serve.autoscale import control_slo
    from repro.serve.loadgen import run_open_loop
    from repro.serve.server import PipelineServer

    kernel, injector = _make_kernel(plan)
    server = PipelineServer(
        kernel=kernel,
        config=_chaos_config(),
        pool_size=2,
        batching=True,
        queue_capacity=512,
        max_retries=CHAOS_RPC_RETRIES,
    )
    server.enable_autoscale(
        elastic_config(), spec=control_slo(CONTROL_BUDGET_NS)
    )
    server.enable_brownout()
    schedule = canonical_schedule(settings.profile, seed=settings.seed)
    result = run_open_loop(server, schedule)
    stale = server.registry.stale_keys(kernel.processes())
    outcome = _outcome(
        kernel, injector, plan,
        ok=result.served_failed == 0,
        failed_clean=result.served_failed > 0,
        error=(
            f"{result.served_failed} of {result.offered} requests failed"
            if result.served_failed else ""
        ),
        outputs=fingerprint_outputs(kernel),
        stale_refs=len(stale),
        retries=sum(r.retries for r in server.responses),
        losses_accounted=(
            result.served_failed + result.shed + result.rejected
        ),
        request_events=tuple(sorted(server.events)),
    )
    outcome.scale_ups = server.autoscaler.scale_ups
    outcome.shed_requests = result.shed
    server.shutdown()
    return outcome


def _run_cluster(settings: ChaosSettings,
                 plan: Optional[FaultPlan]) -> RunOutcome:
    """One sharded multi-node serving workload under node failures.

    Arms the plan across every node (shared RNG, shared fault-id
    counter), so besides the single-machine faults the drain loop's
    node-failure hook can take whole nodes down; the server re-places
    the dead node's shards and requests on the survivors.  Outputs,
    frozen-write counts, stale refs, and observed fault ids aggregate
    over all nodes.
    """
    import numpy as np

    from repro.cluster.kernel import ClusterKernel
    from repro.cluster.sharding import DirectoryPartitioner
    from repro.cluster.serve import ClusterServer
    from repro.serve.bench import standard_pipeline

    nodes = max(settings.nodes, 2)
    cluster = ClusterKernel(nodes=nodes)
    cluster.enable_tracing()
    if plan is not None:
        cluster.inject_faults(plan)
    server = ClusterServer(
        cluster=cluster,
        config=_chaos_config(),
        pool_size=2,
        batching=True,
        max_retries=CHAOS_RPC_RETRIES,
    )
    tenants = 2 * nodes
    rng = np.random.default_rng(0)
    paths = []
    payloads = {}
    for tenant in range(tenants):
        for index in range(settings.items):
            path = f"/data/tenant-{tenant}/in-{index}.png"
            paths.append(path)
            payloads[path] = rng.normal(
                size=(settings.image_size, settings.image_size)
            )
    manifest = DirectoryPartitioner().split(paths)
    server.load_dataset(manifest, payloads)
    for tenant in range(tenants):
        server.pin_tenant_to_item(
            f"tenant-{tenant}", f"/data/tenant-{tenant}/in-0.png"
        )
    for tenant in range(tenants):
        for index in range(settings.items):
            server.submit(
                f"tenant-{tenant}",
                standard_pipeline(
                    f"/data/tenant-{tenant}/in-{index}.png",
                    f"/out/tenant-{tenant}/out-{index}.png",
                ),
            )
    responses = server.drain()
    failed = [r for r in responses if not r.ok]
    outputs: Dict[str, str] = {}
    frozen = 0
    stale = 0
    restarts = 0
    observed: List[int] = []
    for node in cluster.nodes:
        outputs.update(fingerprint_outputs(node.kernel))
        frozen += _frozen_writes(node.kernel)
        restarts += node.kernel.restarted_processes
        observed.extend(_observed_fault_ids(node.kernel.tracer))
        stale += len(server.servers[node.index].registry.stale_keys(
            node.kernel.processes()
        ))
    injected = [
        fault
        for injector in cluster.injectors.values()
        for fault in injector.injected
    ]
    by_kind: Dict[str, int] = {}
    for fault in injected:
        by_kind[fault.kind.value] = by_kind.get(fault.kind.value, 0) + 1
    outcome = RunOutcome(
        ok=not failed,
        failed_clean=bool(failed),
        error=failed[0].error if failed else "",
        outputs=outputs,
        frozen_writes=frozen,
        stale_refs=stale,
        fault_ids=tuple(sorted(f.fault_id for f in injected)),
        observed_fault_ids=tuple(sorted(observed)),
        injected_by_kind=dict(sorted(by_kind.items())),
        decisions=plan.decisions if plan is not None else 0,
        virtual_ns=cluster.makespan_ns,
        restarts=restarts,
        retries=sum(r.retries for r in responses),
        losses_accounted=len(failed),
        request_events=tuple(sorted(
            event
            for node_server in server.servers.values()
            for event in node_server.events
        )),
    )
    server.shutdown()
    return outcome


def run_target(target: str, settings: ChaosSettings,
               plan: Optional[FaultPlan]) -> RunOutcome:
    """Dispatch one run of the campaign's target."""
    if target == "serve-bench":
        return _run_serve(settings, plan)
    if target == "loadgen":
        return _run_loadgen(settings, plan)
    if target == "cluster":
        return _run_cluster(settings, plan)
    if target.upper().startswith("CVE-"):
        return _run_cve(target, settings, plan)
    if target.isdigit() or target in ("drone", "drone-tracker"):
        return _run_app(target, settings, plan)
    raise ValueError(
        f"unknown chaos target {target!r} (expected a sample id, 'drone', "
        "'serve-bench', 'loadgen', 'cluster', or a CVE id)"
    )


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------


def check_invariants(baseline: RunOutcome,
                     faulted: RunOutcome) -> Dict[str, bool]:
    """The four chaos invariants for one schedule."""
    subset_ok = all(
        baseline.outputs.get(path) == digest
        for path, digest in faulted.outputs.items()
    )
    return {
        # 1. Output equals the fault-free output, or the run failed
        #    cleanly having written nothing that disagrees with it.
        #    "Failed cleanly" includes item-level losses the run itself
        #    accounted for (crashes survived, failed responses): those
        #    may leave output files missing, never different.
        "output": subset_ok and (
            faulted.outputs == baseline.outputs
            or faulted.failed_clean
            or faulted.losses_accounted > 0
        ),
        # 2. No frozen-page write ever completed.
        "frozen": faulted.frozen_writes == 0,
        # 3. No tenant ref survived the restart of its minting process.
        "refs": faulted.stale_refs == 0,
        # 4. Every injected fault was emitted as an obs instant.
        "observed": faulted.observed_fault_ids == faulted.fault_ids,
    }


def run_campaign(settings: ChaosSettings) -> CampaignReport:
    """Run the baseline plus ``settings.campaign`` faulted schedules."""
    rates = FaultRates.scaled(settings.fault_rate)
    baseline = run_target(settings.target, settings, plan=None)
    if not baseline.ok:
        raise ReproError(
            f"chaos baseline for {settings.target!r} failed fault-free: "
            f"{baseline.error}"
        )
    report = CampaignReport(
        settings=settings, baseline_outputs=baseline.outputs
    )
    for index in range(settings.campaign):
        seed = settings.schedule_seed(index)
        plan = FaultPlan(seed, rates)
        faulted = run_target(settings.target, settings, plan)
        report.schedules.append(ScheduleResult(
            index=index,
            seed=seed,
            ok=faulted.ok,
            failed_clean=faulted.failed_clean,
            error=faulted.error,
            injected=faulted.injected_by_kind,
            decisions=faulted.decisions,
            invariants=check_invariants(baseline, faulted),
            virtual_ns=faulted.virtual_ns,
            restarts=faulted.restarts,
            scale_ups=faulted.scale_ups,
            shed_requests=faulted.shed_requests,
        ))
    return report
