"""Seeded fault schedules.

A :class:`FaultPlan` decides, at every hook point the injector exposes,
whether a fault fires and which kind.  Decisions are draws from one
``random.Random`` seeded at construction; because the simulation is
single-threaded and cooperative, the sequence of decision points for a
given workload is itself deterministic, so ``(seed, workload)`` fully
determines the fault schedule — the property the chaos campaigns rely on
for byte-identical reruns.

The plan deliberately knows nothing about the kernel: hook methods
receive plain context values (channel name, API qualname, item count) so
tests can substitute scripted plans (subclass :class:`NoFaultPlan`) that
target one specific send or checkpoint.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Optional


class FaultKind(enum.Enum):
    """Every fault the injector can schedule."""

    #: Agent dies before the API body runs (request lost, no state applied).
    CRASH_BEFORE_EXECUTE = "crash-before-execute"
    #: Agent dies after the API body ran but before any reply was built
    #: (state applied, caller sees nothing — the double-apply hazard).
    CRASH_AFTER_EXECUTE = "crash-after-execute"
    #: Agent dies with the reply built and cached but never sent.
    CRASH_MID_REPLY = "crash-mid-reply"
    #: An IPC message is silently lost in transit.
    IPC_DROP = "ipc-drop"
    #: An IPC message is delivered twice.
    IPC_DUPLICATE = "ipc-duplicate"
    #: The last two queued messages swap delivery order.
    IPC_REORDER = "ipc-reorder"
    #: The ring buffer reports transient fullness for this send.
    CHANNEL_STALL = "channel-stall"
    #: The checkpoint write tears partway through and the agent dies.
    CHECKPOINT_TEAR = "checkpoint-tear"
    #: The freshly restarted process dies immediately (restart storm).
    RESTART_CRASH = "restart-crash"
    #: An entire cluster node goes down: every process on it crashes and
    #: its shards must be re-placed on the survivors.
    NODE_FAILURE = "node-failure"


#: The three in-RPC crash points, in the order `_execute_raw` hits them.
RPC_CRASH_POINTS = (
    FaultKind.CRASH_BEFORE_EXECUTE,
    FaultKind.CRASH_AFTER_EXECUTE,
    FaultKind.CRASH_MID_REPLY,
)


@dataclass(frozen=True)
class FaultRates:
    """Per-decision-point probabilities of each fault class."""

    rpc_crash: float = 0.01
    ipc_drop: float = 0.01
    ipc_duplicate: float = 0.01
    ipc_reorder: float = 0.005
    channel_stall: float = 0.005
    checkpoint_tear: float = 0.2
    restart_crash: float = 0.15
    #: Per-decision-point probability of a whole-node failure (cluster
    #: targets consult this between request dispatches; single-kernel
    #: targets never reach the hook).
    node_failure: float = 0.0

    @classmethod
    def scaled(cls, fault_rate: float) -> "FaultRates":
        """One-knob rates: ``fault_rate`` is the per-decision probability
        of the common faults; rarer decision points (checkpoint writes,
        restarts) are scaled up so small campaigns still reach them."""
        if fault_rate < 0:
            raise ValueError(f"fault rate must be >= 0, got {fault_rate}")
        return cls(
            rpc_crash=fault_rate,
            ipc_drop=fault_rate,
            ipc_duplicate=fault_rate,
            ipc_reorder=fault_rate / 2,
            channel_stall=fault_rate / 2,
            checkpoint_tear=min(5 * fault_rate, 0.5),
            restart_crash=min(3 * fault_rate, 0.5),
            node_failure=min(2 * fault_rate, 0.2),
        )


class NoFaultPlan:
    """The do-nothing plan: every hook declines.  Tests subclass this to
    script one targeted fault (e.g. "drop the first response message")
    without touching the seeded RNG machinery."""

    def rpc_crash_point(self, qualname: str, seq: int) -> Optional[FaultKind]:
        """A crash point for this RPC execution, or None."""
        return None

    def channel_verdict(
        self, channel_name: str, kind: str, nbytes: int
    ) -> Optional[FaultKind]:
        """An IPC fault for this send (drop/duplicate/reorder/stall), or
        None."""
        return None

    def checkpoint_tear(self, agent_label: str, items: int) -> Optional[int]:
        """Tear offset (how many state entries reach storage before the
        write dies) in ``[0, items)``, or None for a clean write."""
        return None

    def restart_crash(self, agent_label: str) -> bool:
        """Whether the replacement process dies immediately."""
        return False

    def node_failure(self, candidates) -> Optional[int]:
        """Which living node dies now (an index from ``candidates``),
        or None.  Consulted by cluster targets between dispatches."""
        return None


class FaultPlan(NoFaultPlan):
    """A seeded random fault schedule (one RNG draw per decision)."""

    def __init__(self, seed: int, rates: Optional[FaultRates] = None) -> None:
        self.seed = seed
        self.rates = rates if rates is not None else FaultRates()
        self._rng = random.Random(seed)
        #: Total decision points consulted — part of the schedule digest,
        #: so a rerun that diverges in control flow is caught even when
        #: it injects the same faults.
        self.decisions = 0

    def _draw(self) -> float:
        self.decisions += 1
        return self._rng.random()

    def rpc_crash_point(self, qualname: str, seq: int) -> Optional[FaultKind]:
        if self._draw() >= self.rates.rpc_crash:
            return None
        self.decisions += 1
        return RPC_CRASH_POINTS[self._rng.randrange(len(RPC_CRASH_POINTS))]

    def channel_verdict(
        self, channel_name: str, kind: str, nbytes: int
    ) -> Optional[FaultKind]:
        rates = self.rates
        draw = self._draw()
        for probability, kind_ in (
            (rates.ipc_drop, FaultKind.IPC_DROP),
            (rates.ipc_duplicate, FaultKind.IPC_DUPLICATE),
            (rates.ipc_reorder, FaultKind.IPC_REORDER),
            (rates.channel_stall, FaultKind.CHANNEL_STALL),
        ):
            if draw < probability:
                return kind_
            draw -= probability
        return None

    def checkpoint_tear(self, agent_label: str, items: int) -> Optional[int]:
        if items <= 0 or self._draw() >= self.rates.checkpoint_tear:
            return None
        self.decisions += 1
        return self._rng.randrange(items)

    def restart_crash(self, agent_label: str) -> bool:
        return self._draw() < self.rates.restart_crash

    def node_failure(self, candidates) -> Optional[int]:
        if not candidates or self._draw() >= self.rates.node_failure:
            return None
        self.decisions += 1
        return candidates[self._rng.randrange(len(candidates))]
