"""FreePart reproduction: framework-based partitioning and isolation.

This package reproduces the system described in "FreePart: Hardening Data
Processing Software via Framework-based Partitioning and Isolation"
(ASPLOS 2023) on top of a simulated OS substrate (see ``repro.sim``).

The most commonly used entry points are re-exported at the top level
(lazily, so subsystems can be imported independently):

``FreePart``
    The runtime façade: offline hybrid analysis, API hooking, agent-process
    creation, and online policy enforcement.
``APIType`` / ``FrameworkState``
    The four API categories and the five framework states.
``SimKernel``
    The simulated operating-system kernel used as the isolation substrate.
"""

from typing import Any

__all__ = [
    "APIType",
    "FrameworkState",
    "FreePart",
    "FreePartConfig",
    "RunReport",
    "SimKernel",
    "__version__",
]

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "APIType": ("repro.core.apitypes", "APIType"),
    "FrameworkState": ("repro.core.apitypes", "FrameworkState"),
    "FreePart": ("repro.core.runtime", "FreePart"),
    "FreePartConfig": ("repro.core.runtime", "FreePartConfig"),
    "RunReport": ("repro.core.runtime", "RunReport"),
    "SimKernel": ("repro.sim.kernel", "SimKernel"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
