"""Interprocedural partition-provenance taint analysis (the flow pass).

The per-site rules in :mod:`~repro.staticcheck.rules` replay one state
machine over one function's call sequence; they cannot see a *value*
that is produced in one partition and consumed in another, nor a frozen
tag reached through a local alias.  This pass re-walks the module AST
(the tree cached on :class:`~repro.staticcheck.callgraph.ModuleSummary`)
with a taint environment and answers exactly those questions.

Every expression gets a :class:`Taint` drawn from a finite join
semilattice:

* ``agents`` — the partition labels whose agents produced the value
  (set union on join);
* ``tenant`` — the value derives from work done on behalf of a tenant
  (a gateway call or materialization inside a tenant-scoped flow);
* ``materialized`` — the value is a host-side copy of agent data
  (``gateway.materialize`` result or something derived from one);
* ``payload`` — the value may carry actual data bytes (as opposed to
  a pure ObjectRef, whose payload stays in its partition).

Three hit families come out of the walk, one per new rule:

* :class:`LeakHit` — a materialized value produced by partition A is
  passed into an API that executes in partition B (``cross-partition-leak``);
* :class:`EscapeHit` — tenant-derived payload data reaches shared
  state or a host buffer (``tenant-taint-escape``; pure ObjectRefs are
  the existing ``tenant-ref-leak`` rule's territory);
* :class:`AliasWriteHit` — a ``host_write`` whose tag argument is a
  *local* string alias resolves to a frozen tag the per-site
  ``frozen-write`` rule cannot see (``frozen-alias-write``).

Propagation is a may-analysis: branches join pointwise, loop bodies are
walked twice so back-edge flows reach the loop head, and module-local
calls that receive gateway values or tainted arguments are evaluated
inline (depth-bounded, recursion-guarded) sharing the caller's machine
state — mirroring the inferencer's trace splicing.  Call sites resolve
through the same :class:`~repro.staticcheck.inference.PartitionInferencer`
the per-site rules use, so both passes agree on what every API *is*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.apitypes import APIType, FrameworkState, api_type_of_state
from repro.core.statemachine import next_state
from repro.staticcheck.callgraph import (
    GATEWAY_FACTORIES,
    GATEWAY_PRODUCING_METHODS,
    CallEvent,
    FunctionTrace,
    ModuleSummary,
    _attr_key,
    _constant_str,
)
from repro.staticcheck.inference import ApiVerdict, PartitionInferencer

#: Neutral/unknown sites run in the current state's agent, defaulting to
#: processing — mirrors ``ResolvedCall.effective_type``.
_DEFAULT_AGENT = APIType.PROCESSING

#: Container-mutating methods whose argument taints join into the base.
_CONTAINER_METHODS = frozenset({"append", "add", "insert", "setdefault",
                                "update"})


# ----------------------------------------------------------------------
# The lattice
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Taint:
    """One provenance value of the finite join semilattice."""

    agents: FrozenSet[str] = frozenset()
    tenant: bool = False
    materialized: bool = False
    #: The value may carry actual data bytes.  False for pure ObjectRefs
    #: — monotone by construction: joining a ref into a data value can
    #: only *keep* it escape-eligible, never hide it.
    payload: bool = False

    def join(self, other: "Taint") -> "Taint":
        """Least upper bound (set union / boolean or)."""
        if self == other:
            return self
        return Taint(
            agents=self.agents | other.agents,
            tenant=self.tenant or other.tenant,
            materialized=self.materialized or other.materialized,
            payload=self.payload or other.payload,
        )

    def leq(self, other: "Taint") -> bool:
        """Lattice order: every component of self is below other's."""
        return (
            self.agents <= other.agents
            and self.tenant <= other.tenant
            and self.materialized <= other.materialized
            and self.payload <= other.payload
        )

    @property
    def is_bottom(self) -> bool:
        """True for the untainted value (lattice bottom)."""
        return not (
            self.agents or self.tenant or self.materialized or self.payload
        )


BOTTOM = Taint()


# ----------------------------------------------------------------------
# Hits
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LeakHit:
    """A materialized value crossing into a different partition's API."""

    line: int
    col: int
    value: str
    produced_in: Tuple[str, ...]
    consumed_in: str
    api: str
    function: str


@dataclass(frozen=True)
class EscapeHit:
    """Tenant-derived data reaching a shared or host sink."""

    line: int
    col: int
    target: str
    sink: str  # "shared" | "host"
    function: str


@dataclass(frozen=True)
class AliasWriteHit:
    """A host_write through a string alias of a frozen tag."""

    line: int
    col: int
    alias: str
    tag: str
    alloc_state: FrameworkState
    write_state: FrameworkState
    function: str


@dataclass
class DataflowStats:
    """Deterministic work counters (bench + report metadata)."""

    functions: int = 0
    events: int = 0
    joins: int = 0
    inlined_calls: int = 0
    depth_cutoffs: int = 0


@dataclass
class DataflowReport:
    """Everything the flow pass learned about one module."""

    leaks: List[LeakHit] = field(default_factory=list)
    escapes: List[EscapeHit] = field(default_factory=list)
    alias_writes: List[AliasWriteHit] = field(default_factory=list)
    #: Per-function join of returned taints (monotonicity test surface).
    returns: Dict[str, Taint] = field(default_factory=dict)
    stats: DataflowStats = field(default_factory=DataflowStats)


# ----------------------------------------------------------------------
# Machine state (mirror of the inferencer's replay context)
# ----------------------------------------------------------------------


class _Machine:
    """Framework state + frozen-tag tracking shared across inlining."""

    def __init__(self) -> None:
        self.state: FrameworkState = FrameworkState.INITIALIZATION
        self.tag_state: Dict[str, FrameworkState] = {}
        self.frozen: Set[str] = set()

    def snapshot(self) -> Tuple[FrameworkState, Dict[str, FrameworkState],
                                Set[str]]:
        return (self.state, dict(self.tag_state), set(self.frozen))

    def restore(
        self,
        snap: Tuple[FrameworkState, Dict[str, FrameworkState], Set[str]],
    ) -> None:
        self.state = snap[0]
        self.tag_state = dict(snap[1])
        self.frozen = set(snap[2])


# ----------------------------------------------------------------------
# Analysis driver
# ----------------------------------------------------------------------


class DataflowAnalysis:
    """Run the taint walk over every function of one module summary."""

    #: Inline-evaluation depth bound (matches the inferencer's splice).
    MAX_DEPTH = 4

    def __init__(
        self,
        summary: ModuleSummary,
        inferencer: Optional[PartitionInferencer] = None,
        param_taints: Optional[Dict[str, Dict[str, Taint]]] = None,
    ) -> None:
        self.summary = summary
        self.inferencer = inferencer or PartitionInferencer(summary)
        #: qualname → {param name → injected taint} (property-test hook).
        self.param_taints = param_taints or {}
        self.report = DataflowReport()
        self.function_nodes: Dict[str, ast.FunctionDef] = {}
        self._qualnames: Dict[str, str] = {}
        self._nodes_by_qualname: Dict[str, ast.AST] = {}
        self._hit_keys: Set[Tuple] = set()
        if summary.tree is not None:
            self._collect(summary.tree)

    def _collect(self, tree: ast.Module) -> None:
        """Mirror the builder's function-node collection (name clashes
        resolve the same way so both passes analyze the same bodies)."""
        for statement in tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.function_nodes[statement.name] = statement
                self._qualnames[statement.name] = statement.name
            elif isinstance(statement, ast.ClassDef):
                for member in statement.body:
                    if isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        self.function_nodes.setdefault(member.name, member)
                        self._qualnames.setdefault(
                            member.name,
                            f"{statement.name}.{member.name}",
                        )
        for name, node in self.function_nodes.items():
            self._nodes_by_qualname[self._qualnames[name]] = node

    def qualname_of(self, bare_name: str) -> Optional[str]:
        return self._qualnames.get(bare_name)

    def run(self) -> DataflowReport:
        """Walk every summarized function with a fresh machine."""
        if self.summary.tree is None:
            return self.report
        for qualname, trace in self.summary.functions.items():
            node: Optional[ast.AST]
            if qualname == "<module>":
                node = self.summary.tree
            else:
                node = self._nodes_by_qualname.get(qualname)
            if node is None:
                continue
            walker = _TaintWalker(
                analysis=self,
                trace=trace,
                node=node,
                machine=_Machine(),
                depth=0,
                active={qualname},
                param_taints=self.param_taints.get(qualname),
                tenant_ctx=trace.tenant_scoped,
            )
            if qualname == "<module>":
                walker.local_names.update(self.summary.module_level_names)
            walker.walk()
            self.report.returns[qualname] = walker.returns
            self.report.stats.functions += 1
        self.report.leaks.sort(key=lambda h: (h.line, h.col, h.value))
        self.report.escapes.sort(key=lambda h: (h.line, h.col, h.target))
        self.report.alias_writes.sort(key=lambda h: (h.line, h.col, h.tag))
        return self.report

    # -- hit recording (dedup across loop passes and inline frames) ----

    def add_leak(self, hit: LeakHit) -> None:
        key = ("leak", hit.line, hit.col, hit.value, hit.produced_in,
               hit.consumed_in, hit.api)
        if key not in self._hit_keys:
            self._hit_keys.add(key)
            self.report.leaks.append(hit)

    def add_escape(self, hit: EscapeHit) -> None:
        key = ("escape", hit.line, hit.col, hit.target, hit.sink)
        if key not in self._hit_keys:
            self._hit_keys.add(key)
            self.report.escapes.append(hit)

    def add_alias_write(self, hit: AliasWriteHit) -> None:
        key = ("alias", hit.line, hit.col, hit.alias, hit.tag)
        if key not in self._hit_keys:
            self._hit_keys.add(key)
            self.report.alias_writes.append(hit)


def analyze_module(
    summary: ModuleSummary,
    inferencer: Optional[PartitionInferencer] = None,
    param_taints: Optional[Dict[str, Dict[str, Taint]]] = None,
) -> DataflowReport:
    """Convenience: run the flow pass over one built module summary."""
    return DataflowAnalysis(summary, inferencer, param_taints).run()


# ----------------------------------------------------------------------
# The walker
# ----------------------------------------------------------------------

#: Environment snapshot: (taints, shapes, strings, local names).
_EnvSnap = Tuple[Dict[str, Taint], Dict[str, str], Dict[str, str], Set[str]]


class _TaintWalker:
    """Flow-ordered taint walk of one function (or module) body."""

    def __init__(
        self,
        analysis: DataflowAnalysis,
        trace: FunctionTrace,
        node: ast.AST,
        machine: _Machine,
        depth: int,
        active: Set[str],
        param_taints: Optional[Dict[str, Taint]] = None,
        param_shapes: Optional[Dict[str, str]] = None,
        param_strings: Optional[Dict[str, str]] = None,
        tenant_ctx: bool = False,
    ) -> None:
        self.analysis = analysis
        self.summary = analysis.summary
        self.trace = trace
        self.node = node
        self.machine = machine
        self.depth = depth
        self.active = active
        self.tenant_ctx = tenant_ctx
        self.env: Dict[str, Taint] = {}
        #: name/attr-key → "gateway" | "call_method" | "materialize_method".
        self.shapes: Dict[str, str] = {}
        #: name → string value (local literal bindings; the alias table).
        self.strings: Dict[str, str] = {}
        self.local_names: Set[str] = set(trace.params)
        self.global_names: Set[str] = set()
        self.returns: Taint = BOTTOM
        for param in trace.gateway_params:
            self.shapes[param] = "gateway"
        if param_shapes:
            self.shapes.update(param_shapes)
        if param_taints:
            for name, taint in param_taints.items():
                self.env[name] = self.env.get(name, BOTTOM).join(taint)
        if param_strings:
            self.strings.update(param_strings)

    # -- environment plumbing ------------------------------------------

    def _snapshot_env(self) -> _EnvSnap:
        return (dict(self.env), dict(self.shapes), dict(self.strings),
                set(self.local_names))

    def _restore_env(self, snap: _EnvSnap) -> None:
        self.env = dict(snap[0])
        self.shapes = dict(snap[1])
        self.strings = dict(snap[2])
        self.local_names = set(snap[3])

    def _join_env(self, other: _EnvSnap) -> None:
        """Pointwise join with a saved environment (branch merge)."""
        taints, shapes, strings, locals_ = other
        for name, taint in taints.items():
            self.env[name] = self.env.get(name, BOTTOM).join(taint)
        for name in list(self.env):
            if name not in taints:
                pass  # value defined on one path only: keep (may-analysis)
        # Shapes/strings survive a merge only when both paths agree.
        self.shapes = {
            key: value for key, value in self.shapes.items()
            if shapes.get(key) == value
        }
        self.strings = {
            key: value for key, value in self.strings.items()
            if strings.get(key) == value
        }
        self.local_names |= locals_
        self.analysis.report.stats.joins += 1

    def _bind(
        self,
        name: str,
        taint: Taint,
        shape: Optional[str] = None,
        string: Optional[str] = None,
    ) -> None:
        self.local_names.add(name)
        self.env[name] = taint
        if shape is not None:
            self.shapes[name] = shape
        else:
            self.shapes.pop(name, None)
        if string is not None:
            self.strings[name] = string
        else:
            self.strings.pop(name, None)

    def _lookup(self, node: ast.AST) -> Tuple[Taint, Optional[str]]:
        """Env lookup for names and pure attribute chains (no events)."""
        if isinstance(node, ast.Name):
            return (self.env.get(node.id, BOTTOM),
                    self.shapes.get(node.id))
        key = _attr_key(node)
        if key is not None:
            return (self.env.get(key, BOTTOM), self.shapes.get(key))
        return (BOTTOM, None)

    def _string_of(self, node: ast.AST) -> Optional[str]:
        """A string literal, local alias, or module constant."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in self.strings:
                return self.strings[node.id]
            return self.summary.constants.get(node.id)
        return None

    def _is_shared_base(self, base: str) -> bool:
        """Mirror of the builder's shared-state test."""
        if base.startswith("self."):
            return True
        root = base.split(".", 1)[0]
        if root in self.global_names:
            return True
        return (
            root not in self.local_names
            and root in self.summary.module_level_names
        )

    @staticmethod
    def _derive(taints: List[Taint]) -> Taint:
        """Provenance of a value computed *from* the given inputs.

        Derived values keep agent/tenant/materialized provenance and
        may carry data bytes (a deref, a repr, an aggregate) even when
        an input was a pure reference.
        """
        joined = BOTTOM
        for taint in taints:
            joined = joined.join(taint)
        if not joined.is_bottom and not joined.payload:
            joined = replace(joined, payload=True)
        return joined

    # -- statements ----------------------------------------------------

    def walk(self) -> None:
        for statement in self.node.body:
            self._statement(statement)

    def _statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Global):
            self.global_names.update(statement.names)
        elif isinstance(statement, (ast.Assign, ast.AnnAssign,
                                    ast.AugAssign)):
            self._assignment(statement)
        elif isinstance(statement, ast.Expr):
            self._eval(statement.value)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                taint, _ = self._eval(statement.value)
                self.returns = self.returns.join(taint)
        elif isinstance(statement, ast.If):
            self._eval(statement.test)
            before = self._snapshot_env()
            for child in statement.body:
                self._statement(child)
            after_body = self._snapshot_env()
            self._restore_env(before)
            for child in statement.orelse:
                self._statement(child)
            self._join_env(after_body)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            iter_taint, _ = self._eval(statement.iter)
            self._assign_target(
                statement.target, (iter_taint, None), None, statement
            )
            self._loop_body(statement.body)
            for child in statement.orelse:
                self._statement(child)
        elif isinstance(statement, ast.While):
            self._eval(statement.test)
            self._loop_body(statement.body)
            for child in statement.orelse:
                self._statement(child)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self._bind(item.optional_vars.id, value[0], value[1])
            for child in statement.body:
                self._statement(child)
        elif isinstance(statement, ast.Try):
            for child in statement.body:
                self._statement(child)
            for handler in statement.handlers:
                for child in handler.body:
                    self._statement(child)
            for child in statement.orelse:
                self._statement(child)
            for child in statement.finalbody:
                self._statement(child)
        # Nested defs/classes, imports, pass/break/continue: no flow.

    def _loop_body(self, body: List[ast.stmt]) -> None:
        """Walk a loop body twice so back-edge taints reach the head.

        The machine is restored to its pre-loop snapshot before the
        second pass: transitions replay identically, so per-event agents
        match pass one and duplicate hits collapse in the dedup set —
        only genuinely new back-edge flows surface.
        """
        pre_env = self._snapshot_env()
        machine_snap = self.machine.snapshot()
        for child in body:
            self._statement(child)
        self.machine.restore(machine_snap)
        for child in body:
            self._statement(child)
        self._join_env(pre_env)  # the loop may run zero times

    # -- assignments ---------------------------------------------------

    def _assignment(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            value = self._eval(statement.value)
            string = self._string_of(statement.value)
            for target in statement.targets:
                self._assign_target(target, value, string, statement)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is None:
                return
            value = self._eval(statement.value)
            string = self._string_of(statement.value)
            self._assign_target(statement.target, value, string, statement)
        elif isinstance(statement, ast.AugAssign):
            value = self._eval(statement.value)
            self._assign_target(statement.target, value, None, statement,
                                augmented=True)

    def _assign_target(
        self,
        target: ast.AST,
        value: Tuple[Taint, Optional[str]],
        string: Optional[str],
        statement: ast.stmt,
        augmented: bool = False,
    ) -> None:
        taint, shape = value
        if isinstance(target, ast.Name):
            name = target.id
            shared = (
                name in self.global_names
                or (
                    augmented
                    and name not in self.local_names
                    and name in self.summary.module_level_names
                )
            )
            if shared:
                self._escape_check(name, taint, statement.lineno,
                                   statement.col_offset)
            if augmented:
                taint = self.env.get(name, BOTTOM).join(taint)
                shape = None
                string = None
            self._bind(name, taint, shape, string)
        elif isinstance(target, ast.Attribute):
            key = _attr_key(target)
            if key is not None:
                self.env[key] = taint
                if shape is not None:
                    self.shapes[key] = shape
                else:
                    self.shapes.pop(key, None)
                if key.startswith("self."):
                    self._escape_check(key, taint, statement.lineno,
                                       statement.col_offset)
        elif isinstance(target, ast.Subscript):
            self._eval(target.slice)
            base = _attr_key(target.value) or (
                target.value.id
                if isinstance(target.value, ast.Name) else None
            )
            if base is not None:
                # Container write: element taint joins into the base.
                self.env[base] = self.env.get(base, BOTTOM).join(taint)
                if self._is_shared_base(base):
                    self._escape_check(f"{base}[...]", taint,
                                       statement.lineno,
                                       statement.col_offset)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, (taint, None), None, statement)

    def _escape_check(
        self, target: str, taint: Taint, line: int, col: int
    ) -> None:
        """Tenant-derived payload data parked in shared state."""
        if taint.tenant and taint.payload:
            self.analysis.add_escape(EscapeHit(
                line=line,
                col=col,
                target=target,
                sink="shared",
                function=self.trace.qualname,
            ))

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.AST) -> Tuple[Taint, Optional[str]]:
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            key = _attr_key(node)
            if key is not None:
                base_shape = self._lookup(node.value)[1]
                if base_shape == "gateway":
                    if node.attr == "call":
                        return (BOTTOM, "call_method")
                    if node.attr == "materialize":
                        return (BOTTOM, "materialize_method")
                if key in self.env or key in self.shapes:
                    return (self.env.get(key, BOTTOM), self.shapes.get(key))
                # x.attr of a tainted x keeps x's provenance.
                return (self._derive([self._lookup(node.value)[0]]), None)
            taint, _ = self._eval(node.value)
            return (self._derive([taint]), None)
        if isinstance(node, ast.Name):
            return self._lookup(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            joined = BOTTOM
            for element in node.elts:
                joined = joined.join(self._eval(element)[0])
            return (joined, None)
        if isinstance(node, ast.Dict):
            joined = BOTTOM
            for key in node.keys:
                if key is not None:
                    self._eval(key)
            for value in node.values:
                joined = joined.join(self._eval(value)[0])
            return (joined, None)
        if isinstance(node, ast.BinOp):
            left, _ = self._eval(node.left)
            right, _ = self._eval(node.right)
            return (self._derive([left, right]), None)
        if isinstance(node, ast.BoolOp):
            joined = BOTTOM
            for value in node.values:
                joined = joined.join(self._eval(value)[0])
            return (joined, None)
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return (BOTTOM, None)  # a boolean verdict, not the data
        if isinstance(node, ast.UnaryOp):
            return (self._eval(node.operand)[0], None)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            first = self._eval(node.body)
            second = self._eval(node.orelse)
            shape = first[1] if first[1] == second[1] else None
            return (first[0].join(second[0]), shape)
        if isinstance(node, ast.JoinedStr):
            joined = BOTTOM
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    joined = joined.join(self._eval(value.value)[0])
            return (self._derive([joined]), None)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            base, _ = self._eval(node.value)
            self._eval(node.slice)
            return (base, None)  # element of a container keeps its taint
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, value[0], value[1],
                           self._string_of(node.value))
            return value
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                iter_taint, _ = self._eval(generator.iter)
                self._assign_target(generator.target, (iter_taint, None),
                                    None, _fake_stmt(node))
                for condition in generator.ifs:
                    self._eval(condition)
            return (self._eval(node.elt)[0], None)
        if isinstance(node, ast.DictComp):
            for generator in node.generators:
                iter_taint, _ = self._eval(generator.iter)
                self._assign_target(generator.target, (iter_taint, None),
                                    None, _fake_stmt(node))
                for condition in generator.ifs:
                    self._eval(condition)
            self._eval(node.key)
            return (self._eval(node.value)[0], None)
        return (BOTTOM, None)

    # -- calls ---------------------------------------------------------

    def _eval_args(self, node: ast.Call) -> List[Tuple[Taint, Optional[str]]]:
        values = [self._eval(arg) for arg in node.args]
        values.extend(self._eval(keyword.value) for keyword in node.keywords)
        return values

    def _eval_call(self, node: ast.Call) -> Tuple[Taint, Optional[str]]:
        func = node.func

        if isinstance(func, ast.Attribute):
            receiver_shape = self._lookup(func.value)[1]
            method = func.attr

            if receiver_shape == "gateway":
                if method == "call":
                    return self._gateway_call(node)
                if method == "materialize":
                    return self._materialize_call(node)
                if method in ("host_alloc", "host_write", "host_read"):
                    return self._host_op(node, method)
            if method in GATEWAY_PRODUCING_METHODS:
                self._eval_args(node)
                return (BOTTOM, "gateway")
            if method in _CONTAINER_METHODS:
                base = _attr_key(func.value) or (
                    func.value.id
                    if isinstance(func.value, ast.Name) else None
                )
                joined = BOTTOM
                for taint, _ in self._eval_args(node):
                    joined = joined.join(taint)
                if base is not None:
                    self.env[base] = self.env.get(base, BOTTOM).join(joined)
                    if (
                        self._is_shared_base(base)
                        and joined.tenant
                        and joined.payload
                    ):
                        self.analysis.add_escape(EscapeHit(
                            line=node.lineno,
                            col=node.col_offset,
                            target=f"{base}.{method}()",
                            sink="shared",
                            function=self.trace.qualname,
                        ))
                return (BOTTOM, None)
            # Unknown method: the result derives from receiver + args.
            receiver_taint, _ = self._eval(func.value)
            taints = [receiver_taint]
            taints.extend(t for t, _ in self._eval_args(node))
            return (self._derive(taints), None)

        if isinstance(func, ast.Name):
            callee = func.id
            shape = self.shapes.get(callee)
            if shape == "call_method":
                return self._gateway_call(node)
            if shape == "materialize_method":
                return self._materialize_call(node)
            if callee in GATEWAY_FACTORIES:
                self._eval_args(node)
                return (BOTTOM, "gateway")
            if callee == "CallSite":
                self._eval_args(node)
                return (BOTTOM, None)  # declarative record, not a call
            if callee in self.analysis.function_nodes:
                return self._inline_call(node, callee)
            taints = [t for t, _ in self._eval_args(node)]
            return (self._derive(taints), None)

        # Computed callee (subscript, lambda result, ...): evaluate all.
        self._eval(func)
        taints = [t for t, _ in self._eval_args(node)]
        return (self._derive(taints), None)

    def _gateway_call(self, node: ast.Call) -> Tuple[Taint, Optional[str]]:
        self.analysis.report.stats.events += 1
        framework = (
            self._string_of(node.args[0]) if len(node.args) >= 1 else None
        )
        api = self._string_of(node.args[1]) if len(node.args) >= 2 else None
        payload: List[Tuple[str, Taint]] = []
        for arg in node.args[2:]:
            taint, _ = self._eval(arg)
            name = arg.id if isinstance(arg, ast.Name) else "<expression>"
            payload.append((name, taint))
        for keyword in node.keywords:
            taint, _ = self._eval(keyword.value)
            payload.append((keyword.arg or "<expression>", taint))

        unknown = Taint(tenant=self.tenant_ctx)
        if framework is None or api is None:
            return (unknown, None)
        event = CallEvent(
            framework=framework, api=api,
            line=node.lineno, col=node.col_offset,
        )
        verdict = self.analysis.inferencer.resolve_event(event)
        if not isinstance(verdict, ApiVerdict):
            return (unknown, None)

        # The agent this site executes in (ResolvedCall.effective_type).
        if verdict.neutral or not verdict.api_type.is_concrete:
            effective = (
                api_type_of_state(self.machine.state) or _DEFAULT_AGENT
            )
        else:
            effective = verdict.api_type
        agent = effective.value

        for name, taint in payload:
            foreign = taint.agents - {agent}
            if taint.materialized and foreign:
                self.analysis.add_leak(LeakHit(
                    line=node.lineno,
                    col=node.col_offset,
                    value=name,
                    produced_in=tuple(sorted(foreign)),
                    consumed_in=agent,
                    api=verdict.qualname,
                    function=self.trace.qualname,
                ))

        self._transition(verdict)
        # The result is an ObjectRef: provenance without payload bytes.
        return (
            Taint(agents=frozenset({agent}), tenant=self.tenant_ctx),
            None,
        )

    def _transition(self, verdict: ApiVerdict) -> None:
        """Advance the machine; leaving a state freezes its tags."""
        new = next_state(self.machine.state, verdict.api_type,
                         verdict.neutral)
        if new is None:
            return
        leaving = self.machine.state
        for tag, alloc_state in self.machine.tag_state.items():
            if (
                alloc_state is leaving
                and tag in self.summary.annotated_tags
            ):
                self.machine.frozen.add(tag)
        self.machine.state = new

    def _materialize_call(self, node: ast.Call) -> Tuple[Taint,
                                                         Optional[str]]:
        self.analysis.report.stats.events += 1
        source = BOTTOM
        for taint, _ in self._eval_args(node):
            source = source.join(taint)
        return (
            Taint(
                agents=source.agents,
                tenant=source.tenant or self.tenant_ctx,
                materialized=True,
                payload=True,
            ),
            None,
        )

    def _host_op(
        self, node: ast.Call, method: str
    ) -> Tuple[Taint, Optional[str]]:
        self.analysis.report.stats.events += 1
        op = method[len("host_"):]
        first = node.args[0] if node.args else None
        # What the per-site pass saw (literal / module constant) vs what
        # the alias table can additionally resolve.
        literal_tag = (
            _constant_str(first, self.summary.constants)
            if first is not None else None
        )
        tag = literal_tag
        if tag is None and first is not None:
            tag = self._string_of(first)

        payload: List[Taint] = []
        for arg in node.args[1:]:
            payload.append(self._eval(arg)[0])
        for keyword in node.keywords:
            payload.append(self._eval(keyword.value)[0])

        if op in ("alloc", "write"):
            # Host buffers outlive the request and are host-visible:
            # tenant-derived payloads escaping into one is a sink.
            for taint in payload:
                if taint.tenant and taint.payload:
                    self.analysis.add_escape(EscapeHit(
                        line=node.lineno,
                        col=node.col_offset,
                        target=f"host buffer '{tag or '<dynamic>'}'",
                        sink="host",
                        function=self.trace.qualname,
                    ))

        if tag is not None:
            if op == "alloc":
                self.machine.tag_state[tag] = self.machine.state
                self.machine.frozen.discard(tag)
            elif op == "write":
                if tag in self.machine.frozen and literal_tag is None:
                    alias = (
                        first.id if isinstance(first, ast.Name)
                        else "<expression>"
                    )
                    self.analysis.add_alias_write(AliasWriteHit(
                        line=node.lineno,
                        col=node.col_offset,
                        alias=alias,
                        tag=tag,
                        alloc_state=self.machine.tag_state.get(
                            tag, FrameworkState.INITIALIZATION
                        ),
                        write_state=self.machine.state,
                        function=self.trace.qualname,
                    ))
                self.machine.tag_state.setdefault(tag, self.machine.state)
        return (BOTTOM, None)

    def _inline_call(
        self, node: ast.Call, callee: str
    ) -> Tuple[Taint, Optional[str]]:
        qualname = self.analysis.qualname_of(callee)
        callee_node = self.analysis.function_nodes.get(callee)
        callee_trace = (
            self.summary.functions.get(qualname)
            if qualname is not None else None
        )
        arg_values = [self._eval(arg) for arg in node.args]
        keyword_values = [
            (keyword.arg, self._eval(keyword.value))
            for keyword in node.keywords
        ]
        joined = self._derive(
            [taint for taint, _ in arg_values]
            + [taint for _, (taint, _) in keyword_values]
        )
        carries_flow = any(
            shape == "gateway" for _, shape in arg_values
        ) or any(
            shape == "gateway" for _, (_, shape) in keyword_values
        ) or not joined.is_bottom
        if (
            callee_trace is None
            or callee_node is None
            or qualname in self.active
            or not carries_flow
        ):
            return (joined, None)
        if self.depth >= DataflowAnalysis.MAX_DEPTH:
            self.analysis.report.stats.depth_cutoffs += 1
            return (joined, None)

        parameters = [
            argument.arg
            for argument in (
                callee_node.args.posonlyargs
                + callee_node.args.args
                + callee_node.args.kwonlyargs
            )
        ]
        param_taints: Dict[str, Taint] = {}
        param_shapes: Dict[str, str] = {}
        param_strings: Dict[str, str] = {}
        for position, (taint, shape) in enumerate(arg_values):
            if position >= len(parameters):
                break
            name = parameters[position]
            param_taints[name] = taint
            if shape is not None:
                param_shapes[name] = shape
            string = self._string_of(node.args[position])
            if string is not None:
                param_strings[name] = string
        for (keyword_name, (taint, shape)), keyword in zip(
            keyword_values, node.keywords
        ):
            if keyword_name is None or keyword_name not in parameters:
                continue
            param_taints[keyword_name] = taint
            if shape is not None:
                param_shapes[keyword_name] = shape
            string = self._string_of(keyword.value)
            if string is not None:
                param_strings[keyword_name] = string

        self.active.add(qualname)
        walker = _TaintWalker(
            analysis=self.analysis,
            trace=callee_trace,
            node=callee_node,
            machine=self.machine,
            depth=self.depth + 1,
            active=self.active,
            param_taints=param_taints,
            param_shapes=param_shapes,
            param_strings=param_strings,
            tenant_ctx=self.tenant_ctx or callee_trace.tenant_scoped,
        )
        walker.walk()
        self.active.discard(qualname)
        self.analysis.report.stats.inlined_calls += 1
        return (joined.join(walker.returns), None)


def _fake_stmt(node: ast.AST) -> ast.stmt:
    """Wrap an expression node so _assign_target can read a location."""
    statement = ast.Pass()
    statement.lineno = getattr(node, "lineno", 1)
    statement.col_offset = getattr(node, "col_offset", 0)
    return statement
