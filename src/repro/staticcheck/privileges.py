"""Least-privilege syscall inference per agent partition.

The runtime widens every full-type agent's seccomp allowlist to the
Table 7 pool (`core/policy.filter_spec_for_partition`).  That is sound
but rarely *minimal*: a pipeline whose loading agent only ever calls
``imread`` does not need the other ~40 loading-pool syscalls.  This
module computes, from statically resolved call sites, the minimal
allowlist each agent actually requires — and everything downstream of
that one computation:

* :func:`pool_excess` — the single membership check shared by the
  ``syscall-pool`` rule and the minimal-set inference (one resolution
  path, so a site can never yield both a pool violation and a duplicate
  over-privilege finding);
* :func:`collect_privileges` — per-agent-label privilege accumulation
  over a module's :class:`~repro.staticcheck.inference.FunctionReport`
  plans (``over-privileged-pool`` findings, placement scoring);
* :func:`minimal_filter_spec` / :func:`render_minimal_pools` — the
  tightened :class:`~repro.sim.filters.FilterSpec` per agent behind
  ``repro check --emit-minimal-pools``;
* :func:`privileges_for_app` — the same inference over a declarative
  app schedule (catalog apps build their ``CallSite`` lists at runtime,
  so file-level analysis cannot see them), including the engine's
  implicit sites (``VideoCapture`` for camera sources,
  ``CascadeClassifier`` for detector stages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.apitypes import APIType, FrameworkState, api_type_of_state
from repro.core.hybrid import categorize_call_site
from repro.core.policy import DESIGNATED_FDS
from repro.core.statemachine import next_state
from repro.errors import ReproError
from repro.frameworks.syscall_pools import INIT_ONLY_SYSCALLS, pool_for
from repro.sim.filters import FilterSpec
from repro.staticcheck.inference import ApiVerdict, FunctionReport

#: Neutral sites run in the current state's agent (processing default).
_DEFAULT_AGENT = APIType.PROCESSING


@dataclass
class AgentPrivilege:
    """The minimal privilege set one agent partition actually needs."""

    label: str
    api_type: APIType
    apis: Set[str] = field(default_factory=set)
    syscalls: Set[str] = field(default_factory=set)
    init_syscalls: Set[str] = field(default_factory=set)
    sites: int = 0
    #: First (line, col) that placed work in this agent — the anchor
    #: over-privilege findings attach to (0, 0 for schedule-derived).
    anchor: Tuple[int, int] = (0, 0)

    def minimal_allowed(self) -> FrozenSet[str]:
        """The steady-state allowlist: union of declared syscalls."""
        return frozenset(self.syscalls)

    def minimal_init_only(self) -> FrozenSet[str]:
        """Init-phase grace set (always includes mprotect/connect)."""
        return frozenset(
            (self.init_syscalls | INIT_ONLY_SYSCALLS) - self.syscalls
        )

    def pool_surplus(self) -> List[str]:
        """Pool syscalls no resolved API of this agent ever declares."""
        pool = pool_for(self.api_type)
        if pool is None:
            return []
        return sorted(
            pool - self.syscalls - self.init_syscalls - INIT_ONLY_SYSCALLS
        )

    def weight(self) -> int:
        """Privilege mass for placement scoring (allowed + init)."""
        return len(self.minimal_allowed() | self.minimal_init_only())


def pool_excess(
    verdict: ApiVerdict, effective_type: APIType
) -> Tuple[List[str], List[str]]:
    """Declared syscalls of one site outside its agent's Table 7 pool.

    Returns ``(extra, extra_init)`` — the shared membership check behind
    both the ``syscall-pool`` rule and the minimal-set inference.
    """
    pool = pool_for(effective_type)
    if pool is None:
        return [], []
    extra = sorted(set(verdict.syscalls) - pool)
    extra_init = sorted(
        set(verdict.init_syscalls) - pool - INIT_ONLY_SYSCALLS
    )
    return extra, extra_init


def collect_privileges(
    reports: Dict[str, FunctionReport],
) -> Dict[str, AgentPrivilege]:
    """Accumulate per-agent privileges over a module's inferred plans."""
    privileges: Dict[str, AgentPrivilege] = {}
    for report in reports.values():
        for step in report.steps:
            label = step.agent
            privilege = privileges.get(label)
            if privilege is None:
                privilege = AgentPrivilege(
                    label=label,
                    api_type=step.effective_type,
                    anchor=(step.event.line, step.event.col),
                )
                privileges[label] = privilege
            privilege.apis.add(step.verdict.qualname)
            privilege.syscalls.update(step.verdict.syscalls)
            privilege.init_syscalls.update(step.verdict.init_syscalls)
            privilege.sites += 1
            anchor = (step.event.line, step.event.col)
            if anchor < privilege.anchor:
                privilege.anchor = anchor
    return privileges


def merge_privileges(
    maps: Iterable[Dict[str, AgentPrivilege]],
) -> Dict[str, AgentPrivilege]:
    """Union privilege maps from several files/apps into one."""
    merged: Dict[str, AgentPrivilege] = {}
    for mapping in maps:
        for label, privilege in mapping.items():
            existing = merged.get(label)
            if existing is None:
                merged[label] = AgentPrivilege(
                    label=privilege.label,
                    api_type=privilege.api_type,
                    apis=set(privilege.apis),
                    syscalls=set(privilege.syscalls),
                    init_syscalls=set(privilege.init_syscalls),
                    sites=privilege.sites,
                    anchor=privilege.anchor,
                )
            else:
                existing.apis |= privilege.apis
                existing.syscalls |= privilege.syscalls
                existing.init_syscalls |= privilege.init_syscalls
                existing.sites += privilege.sites
    return merged


def minimal_filter_spec(
    privilege: AgentPrivilege,
    path_prefixes: Optional[Tuple[str, ...]] = None,
) -> FilterSpec:
    """The tightened filter ``--emit-minimal-pools`` prints/installs."""
    pool = pool_for(privilege.api_type) or frozenset()
    fds = DESIGNATED_FDS.get(privilege.api_type, frozenset())
    return FilterSpec(
        allowed=privilege.minimal_allowed(),
        init_only=privilege.minimal_init_only(),
        allowed_fds=fds if fds else None,
        allowed_path_prefixes=path_prefixes,
        description=(
            f"minimal filter for {privilege.label} "
            f"({len(privilege.minimal_allowed())} of {len(pool)} "
            "pool syscalls)"
        ),
    )


def minimal_filter_specs(
    privileges: Dict[str, AgentPrivilege],
) -> Dict[str, FilterSpec]:
    """One tightened spec per agent label."""
    return {
        label: minimal_filter_spec(privilege)
        for label, privilege in sorted(privileges.items())
    }


def render_minimal_pools(privileges: Dict[str, AgentPrivilege]) -> str:
    """Canonical JSON for ``--emit-minimal-pools`` (stable key order)."""
    import json

    payload = {
        "version": 1,
        "pools": {
            label: minimal_filter_spec(privilege).to_dict()
            for label, privilege in sorted(privileges.items())
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


# ----------------------------------------------------------------------
# Schedule-level inference (catalog apps are invisible to file analysis)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedSite:
    """One schedule call site resolved to an API and an agent label."""

    framework: str
    api: str
    qualname: str
    api_type: APIType
    agent: str
    syscalls: Tuple[str, ...]
    init_syscalls: Tuple[str, ...]


def _resolve_api(
    framework: str, api: str, declared: Optional[APIType]
) -> Optional[Tuple[str, APIType, bool, Tuple[str, ...], Tuple[str, ...]]]:
    """(qualname, type, neutral, syscalls, init) via the hybrid registry."""
    try:
        entry = categorize_call_site(framework, api)
        return (entry.qualname, entry.api_type, entry.neutral,
                entry.syscalls, entry.init_syscalls)
    except ReproError:
        if declared is not None:
            return (f"{framework}.{api}", declared,
                    not declared.is_concrete, (), ())
        return None


def resolved_schedule(app) -> List[ResolvedSite]:
    """Replay the state machine over an app schedule, implicit sites
    included, producing the agent each site executes in.

    The engine lazily issues ``VideoCapture`` before the first camera
    read and ``CascadeClassifier`` before a detector stage with no
    loaded model — both appear in runtime traces, so the static universe
    must contain them.
    """
    from repro.apps.base import ArgSpec

    state = FrameworkState.INITIALIZATION
    resolved: List[ResolvedSite] = []
    seen_capture = False
    seen_classifier = False

    def visit(framework: str, api: str,
              declared: Optional[APIType]) -> None:
        nonlocal state
        identity = _resolve_api(framework, api, declared)
        if identity is None:
            return
        qualname, api_type, neutral, syscalls, init = identity
        if neutral or not api_type.is_concrete:
            effective = api_type_of_state(state) or _DEFAULT_AGENT
        else:
            effective = api_type
        resolved.append(ResolvedSite(
            framework=framework,
            api=api,
            qualname=qualname,
            api_type=api_type,
            agent=effective.value,
            syscalls=tuple(syscalls),
            init_syscalls=tuple(init),
        ))
        new = next_state(state, api_type, neutral)
        if new is not None:
            state = new

    for site in app.schedule:
        if site.argspec is ArgSpec.SOURCE_CAMERA and not seen_capture:
            seen_capture = True
            visit(site.framework, "VideoCapture", APIType.LOADING)
        if site.argspec is ArgSpec.DETECT and not seen_classifier:
            # A model may have been produced by an earlier loading site;
            # the engine's fallback constructor is still reachable on
            # the first item, so include it (sound over-approximation).
            seen_classifier = True
            visit("opencv", "CascadeClassifier", APIType.LOADING)
        visit(site.framework, site.api, site.api_type)
    return resolved


def privileges_for_app(
    app, extra_apis: Iterable[Tuple[str, str]] = ()
) -> Dict[str, AgentPrivilege]:
    """Per-agent minimal privileges from a declarative app schedule.

    ``extra_apis`` names additional ``(framework, api)`` pairs deployed
    alongside the schedule (e.g. a CVE-carrying API in the attack
    harness) so their declared syscalls stay inside the minimal pool.
    """
    privileges: Dict[str, AgentPrivilege] = {}

    def absorb(site: ResolvedSite) -> None:
        privilege = privileges.get(site.agent)
        if privilege is None:
            concrete = next(
                (t for t in APIType if t.value == site.agent),
                _DEFAULT_AGENT,
            )
            privilege = AgentPrivilege(label=site.agent, api_type=concrete)
            privileges[site.agent] = privilege
        privilege.apis.add(site.qualname)
        privilege.syscalls.update(site.syscalls)
        privilege.init_syscalls.update(site.init_syscalls)
        privilege.sites += 1

    for site in resolved_schedule(app):
        absorb(site)
    for framework, api in extra_apis:
        identity = _resolve_api(framework, api, None)
        if identity is None:
            continue
        qualname, api_type, neutral, syscalls, init = identity
        effective = api_type if api_type.is_concrete else _DEFAULT_AGENT
        absorb(ResolvedSite(
            framework=framework,
            api=api,
            qualname=qualname,
            api_type=api_type,
            agent=effective.value,
            syscalls=tuple(syscalls),
            init_syscalls=tuple(init),
        ))
    return privileges


def minimal_pools_for_app(
    app, extra_apis: Iterable[Tuple[str, str]] = ()
) -> Dict[str, FilterSpec]:
    """Tightened per-agent filter specs for one app (+ extra APIs)."""
    return minimal_filter_specs(privileges_for_app(app, extra_apis))
