"""Static↔trace parity: the soundness witness behind ``--against-trace``.

The static analysis claims to over-approximate runtime behavior: every
API the runtime dispatches, every syscall an agent executes, and every
partition hop must be *predicted reachable*.  This module replays a
recorded Chrome trace (``repro trace --out``) against a
:class:`StaticUniverse` — the set of APIs, per-agent syscall budgets,
and partition pairs static analysis deems reachable — and reports a
``trace-parity`` finding for anything the runtime touched outside it.

A universe comes from two sources, merged freely:

* :func:`universe_from_reports` — file-level analysis (hand-written
  pipelines whose call sites are literal);
* :func:`universe_from_app` — a declarative app schedule (catalog apps
  construct their sites at runtime, invisible to file analysis),
  including the engine's implicit ``VideoCapture``/``CascadeClassifier``
  sites.

Partition-pair semantics are deliberately coarse: static analysis
proves which partitions are *reachable together*; any ordered hop
between two co-reachable partitions is within prediction (loops revisit
earlier phases), while a hop touching a partition the analysis never
placed work in is a parity violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.frameworks.syscall_pools import INIT_ONLY_SYSCALLS
from repro.obs.export import trace_runtime_touches
from repro.staticcheck.inference import FunctionReport
from repro.staticcheck.privileges import (
    AgentPrivilege,
    collect_privileges,
    privileges_for_app,
    resolved_schedule,
)
from repro.staticcheck.report import Finding, Severity

#: Rule id parity violations are reported under.
PARITY_RULE = "trace-parity"


@dataclass
class StaticUniverse:
    """Everything static analysis predicts a run may touch."""

    #: ``framework.api`` names (matches the rpc span's ``api`` attr).
    apis: Set[str] = field(default_factory=set)
    #: Agent label → syscalls its filter may ever need (minimal ∪ init).
    agent_syscalls: Dict[str, Set[str]] = field(default_factory=dict)
    #: Agent labels with statically placed work (pair co-reachability).
    agents: Set[str] = field(default_factory=set)

    def absorb_privileges(
        self, privileges: Dict[str, AgentPrivilege]
    ) -> None:
        for label, privilege in privileges.items():
            budget = self.agent_syscalls.setdefault(label, set())
            budget.update(privilege.minimal_allowed())
            budget.update(privilege.minimal_init_only())
            budget.update(INIT_ONLY_SYSCALLS)
            self.agents.add(label)

    def merge(self, other: "StaticUniverse") -> "StaticUniverse":
        self.apis |= other.apis
        for label, budget in other.agent_syscalls.items():
            self.agent_syscalls.setdefault(label, set()).update(budget)
        self.agents |= other.agents
        return self


def universe_from_reports(
    reports: Dict[str, FunctionReport],
) -> StaticUniverse:
    """The universe one analyzed file's partition plans reach."""
    universe = StaticUniverse()
    for report in reports.values():
        for step in report.steps:
            universe.apis.add(f"{step.event.framework}.{step.event.api}")
    universe.absorb_privileges(collect_privileges(reports))
    return universe


def universe_from_app(app) -> StaticUniverse:
    """The universe a declarative app schedule reaches."""
    universe = StaticUniverse()
    for site in resolved_schedule(app):
        universe.apis.add(f"{site.framework}.{site.api}")
    universe.absorb_privileges(privileges_for_app(app))
    return universe


def universe_from_paths(paths: Iterable[str]) -> StaticUniverse:
    """The merged universe of every ``.py`` file under ``paths``."""
    from repro.staticcheck.callgraph import build_module
    from repro.staticcheck.checker import iter_python_files
    from repro.staticcheck.inference import PartitionInferencer

    merged = StaticUniverse()
    for path in iter_python_files(list(paths)):
        summary = build_module(path)
        if summary.parse_error is not None:
            continue
        reports = PartitionInferencer(summary).infer()
        merged.merge(universe_from_reports(reports))
    return merged


def merge_universes(universes: Iterable[StaticUniverse]) -> StaticUniverse:
    """Union several universes (e.g. every file of a project)."""
    merged = StaticUniverse()
    for universe in universes:
        merged.merge(universe)
    return merged


def check_trace_parity(
    universe: StaticUniverse, payload: Any, trace_path: str
) -> List[Finding]:
    """Findings for everything the trace touched outside the universe."""
    touches = trace_runtime_touches(payload)
    findings: List[Finding] = []

    def violation(message: str) -> None:
        findings.append(Finding(
            rule=PARITY_RULE,
            severity=Severity.ERROR,
            path=trace_path,
            line=0,
            col=0,
            message=message,
        ))

    for api in sorted(touches.apis):
        if api not in universe.apis:
            violation(
                f"runtime dispatched API '{api}' that static analysis "
                "deemed unreachable"
            )
    for agent in sorted(touches.syscalls_by_agent):
        budget = universe.agent_syscalls.get(agent)
        if budget is None:
            violation(
                f"runtime ran work in the '{agent}' agent, where static "
                "analysis placed none"
            )
            continue
        for name in sorted(touches.syscalls_by_agent[agent] - budget):
            violation(
                f"'{agent}' agent executed syscall '{name}' outside its "
                "statically inferred minimal budget"
            )
    for source, target in sorted(touches.edges):
        if source not in universe.agents or target not in universe.agents:
            missing = source if source not in universe.agents else target
            violation(
                f"runtime crossed partition edge {source} -> {target}, "
                f"but static analysis never placed work in '{missing}'"
            )
    return findings
